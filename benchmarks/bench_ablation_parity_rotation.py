"""Ablation: parity rotation in the full block design table.

Section 4.2 derives the layout twice: the raw block design table puts
parity on the same tuple element everywhere, which can concentrate
parity on few disks; duplicating it G times with a rotating parity
position (Figure 4-2) guarantees balance for *every* design.

The demonstration uses the paper's own Figure 4-1 complete design on
(5, 4): unrotated, disk 4 takes the parity of four stripes out of five
and disks 0-2 take none, so under a pure-write workload the parity-hot
disk saturates long before its peers. (Cyclic designs such as the
paper's BD3 happen to balance even unrotated — each disk is the last
tuple element exactly once per orbit — which is why the guarantee has
to come from rotation, not luck.)
"""

from repro.array import ArrayAddressing, ArrayController
from repro.designs import complete_design
from repro.experiments.reporting import format_table
from repro.experiments.scales import get_scale
from repro.layout import DeclusteredLayout
from repro.layout.criteria import parity_units_per_disk
from repro.sim import Environment
from repro.workload import SyntheticWorkload, WorkloadConfig

from benchmarks.conftest import bench_scale, run_once

WRITE_RATE_PER_S = 20.0  # 5-disk array: keeps the balanced case unsaturated


def run_variant(rotate_parity):
    env = Environment()
    layout = DeclusteredLayout(complete_design(5, 4), rotate_parity=rotate_parity)
    addressing = ArrayAddressing(layout, get_scale(bench_scale()).spec())
    controller = ArrayController(env, addressing)
    workload = SyntheticWorkload(
        controller, WorkloadConfig(access_rate_per_s=WRITE_RATE_PER_S, read_fraction=0.0)
    )
    workload.run(duration_ms=20_000.0)
    env.run(until=20_000.0)
    utilizations = [disk.stats.busy_ms / env.now for disk in controller.disks]
    parity_counts = parity_units_per_disk(layout)
    return {
        "rotated": rotate_parity,
        "parity_min": min(parity_counts),
        "parity_max": max(parity_counts),
        "util_min": round(min(utilizations), 3),
        "util_max": round(max(utilizations), 3),
        "response_ms": round(workload.recorder.summary().mean_ms, 2),
    }


def run_ablation():
    return [run_variant(True), run_variant(False)]


def test_bench_ablation_parity_rotation(benchmark, save_result):
    rows = run_once(benchmark, run_ablation)
    save_result(
        "ablation_parity_rotation",
        format_table(
            headers=["rotated", "parity/disk min", "max", "util min", "util max",
                     "resp (ms)"],
            rows=[
                [r["rotated"], r["parity_min"], r["parity_max"], r["util_min"],
                 r["util_max"], r["response_ms"]]
                for r in rows
            ],
            title=(
                "Ablation: parity rotation (complete (5,4) design, "
                f"100% writes at {WRITE_RATE_PER_S:.0f}/s)"
            ),
        ),
    )
    rotated, unrotated = rows
    # Rotation balances parity exactly; the raw table concentrates it.
    assert rotated["parity_min"] == rotated["parity_max"]
    assert unrotated["parity_max"] >= 4 * max(unrotated["parity_min"], 1)
    # The parity hot spot shows up as utilization imbalance and worse
    # response time under a write workload.
    assert (unrotated["util_max"] - unrotated["util_min"]) > (
        rotated["util_max"] - rotated["util_min"]
    )
    assert unrotated["response_ms"] > rotated["response_ms"]
