"""Ablation: head-scheduler choice during recovery.

The paper runs CVSCAN (Table 5-1). This ablation reruns the alpha=0.15
eight-way reconstruction point under FIFO, SSTF, LOOK, and CVSCAN to
show how much queue discipline matters when reconstruction traffic and
user traffic share the disks.
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.reporting import format_table

from benchmarks.conftest import bench_scale, run_once

POLICIES = ("fifo", "sstf", "look", "cvscan")


def run_ablation():
    rows = []
    for policy in POLICIES:
        result = run_scenario(
            ScenarioConfig(
                stripe_size=4,
                user_rate_per_s=210.0,
                read_fraction=0.5,
                mode="recon",
                recon_workers=8,
                scale=bench_scale(),
                policy=policy,
            )
        )
        rows.append(
            {
                "policy": policy,
                "recon_time_s": round(result.reconstruction_time_s, 2),
                "mean_response_ms": round(result.response.mean_ms, 2),
                "p90_ms": round(result.response.p90_ms, 2),
            }
        )
    return rows


def test_bench_ablation_scheduler(benchmark, save_result):
    rows = run_once(benchmark, run_ablation)
    save_result(
        "ablation_scheduler",
        format_table(
            headers=["policy", "recon time (s)", "mean resp (ms)", "p90 (ms)"],
            rows=[
                [r["policy"], r["recon_time_s"], r["mean_response_ms"], r["p90_ms"]]
                for r in rows
            ],
            title="Ablation: head scheduling during 8-way reconstruction (alpha=0.15, rate 210)",
        ),
    )
    by_policy = {r["policy"]: r for r in rows}
    # Position-aware scheduling must beat FIFO on response time.
    assert by_policy["cvscan"]["mean_response_ms"] < by_policy["fifo"]["mean_response_ms"]
