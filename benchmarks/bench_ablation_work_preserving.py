"""Ablation: disks are not work-preserving, and that drives Section 8.

The M&L analytic model treats a disk as a fixed-rate server: an access
costs ``1/mu`` no matter what came before it. The paper's explanation
for why the "optimized" algorithms disappoint is precisely that real
reconstruction writes are *sequential* — nearly free — until user work
lands on the replacement and forces seeks and rotation slips.

This ablation runs the same eight-way reconstruction on (a) the
sector-accurate drive and (b) a constant-rate drive, and compares the
reconstruction **write phase** of baseline (no user work on the
replacement) against redirect (user reads and writes on the
replacement):

- on real disks, redirect's write phase is much larger than baseline's
  (the disturbance penalty the paper measures in Table 8-1);
- on work-preserving disks, the two write phases' *service* components
  are identical by construction, so the disturbance ratio collapses
  toward queueing-only effects.
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.reporting import format_table
from repro.recon import BASELINE, REDIRECT, USER_WRITES

from benchmarks.conftest import bench_scale, run_once

ALGORITHMS = (BASELINE, USER_WRITES, REDIRECT)


def run_ablation():
    rows = []
    for constant in (False, True):
        for algorithm in ALGORITHMS:
            result = run_scenario(
                ScenarioConfig(
                    stripe_size=4,
                    user_rate_per_s=210.0,
                    read_fraction=0.5,
                    mode="recon",
                    algorithm=algorithm,
                    recon_workers=8,
                    scale=bench_scale(),
                    constant_rate_disks=constant,
                )
            )
            read_phase, write_phase = result.reconstruction.phase_summary(last_n=300)
            rows.append(
                {
                    "disk_model": "constant-rate" if constant else "sector-accurate",
                    "algorithm": algorithm.name,
                    "recon_time_s": round(result.reconstruction_time_s, 2),
                    "read_phase_ms": round(read_phase.mean_ms, 1),
                    "write_phase_ms": round(write_phase.mean_ms, 1),
                    "mean_response_ms": round(result.response.mean_ms, 2),
                }
            )
    return rows


def test_bench_ablation_work_preserving(benchmark, save_result):
    rows = run_once(benchmark, run_ablation)
    save_result(
        "ablation_work_preserving",
        format_table(
            headers=[
                "disk model", "algorithm", "recon time (s)",
                "read phase (ms)", "write phase (ms)", "mean resp (ms)",
            ],
            rows=[
                [r["disk_model"], r["algorithm"], r["recon_time_s"],
                 r["read_phase_ms"], r["write_phase_ms"], r["mean_response_ms"]]
                for r in rows
            ],
            title=(
                "Ablation: sector-accurate vs work-preserving disks "
                "(alpha=0.15, rate 210, 8-way)"
            ),
        ),
    )
    by_key = {(r["disk_model"], r["algorithm"]): r for r in rows}
    # On real disks the replacement's write phase suffers visibly when
    # redirect sends user work there...
    real_ratio = (
        by_key[("sector-accurate", "redirect")]["write_phase_ms"]
        / by_key[("sector-accurate", "baseline")]["write_phase_ms"]
    )
    assert real_ratio > 1.05
    # ...and a baseline write phase on an undisturbed replacement is far
    # cheaper than the constant-rate world's uniform access price —
    # the sequential-write advantage the M&L model cannot express.
    assert (
        by_key[("sector-accurate", "baseline")]["write_phase_ms"]
        < by_key[("constant-rate", "baseline")]["write_phase_ms"]
    )
