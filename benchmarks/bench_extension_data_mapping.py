"""Extension bench: the data-mapping trade-off (Section 4.2 future work).

The paper's stripe-index data mapping satisfies the large-write
optimization but not maximal parallelism; a row-major mapping flips the
trade. This bench measures both ends on a 21-disk alpha=0.15 array:

- array-wide sequential reads (21 units): row-major spreads them over
  nearly every disk, stripe-index stacks them onto ~G disks;
- full-stripe aligned writes (G-1 units): stripe-index uses the
  pre-read-free large write, row-major must fall back to per-unit
  read-modify-writes.
"""

from repro.array import ArrayAddressing, ArrayController
from repro.designs import paper_design
from repro.experiments.reporting import format_table
from repro.experiments.scales import get_scale
from repro.layout import DeclusteredLayout
from repro.sim import Environment
from repro.workload import SyntheticWorkload, WorkloadConfig

from benchmarks.conftest import bench_scale, run_once

WIDE_READ_UNITS = 21
STRIPE_WRITE_UNITS = 3  # G - 1 for the alpha = 0.15 design


def run_variant(data_mapping, access_units, read_fraction):
    env = Environment()
    layout = DeclusteredLayout(paper_design(4), data_mapping=data_mapping)
    addressing = ArrayAddressing(layout, get_scale(bench_scale()).spec())
    controller = ArrayController(env, addressing)
    workload = SyntheticWorkload(
        controller,
        WorkloadConfig(
            access_rate_per_s=20.0,
            read_fraction=read_fraction,
            access_units=access_units,
        ),
    )
    workload.run(duration_ms=15_000.0)
    env.run(until=15_000.0)
    env.run(until=workload.drained())
    return workload.recorder.summary().mean_ms


def run_extension():
    rows = []
    for mapping in ("stripe", "row-major"):
        rows.append(
            {
                "mapping": mapping,
                "wide_read_ms": round(run_variant(mapping, WIDE_READ_UNITS, 1.0), 2),
                "stripe_write_ms": round(
                    run_variant(mapping, STRIPE_WRITE_UNITS, 0.0), 2
                ),
            }
        )
    return rows


def test_bench_extension_data_mapping(benchmark, save_result):
    rows = run_once(benchmark, run_extension)
    save_result(
        "extension_data_mapping",
        format_table(
            headers=["data mapping", "21-unit read (ms)", "3-unit aligned write (ms)"],
            rows=[[r["mapping"], r["wide_read_ms"], r["stripe_write_ms"]] for r in rows],
            title=(
                "Extension: stripe-index vs row-major data mapping "
                "(alpha=0.15, 20 accesses/s)"
            ),
        ),
    )
    by_mapping = {r["mapping"]: r for r in rows}
    # Row-major wins wide reads (parallelism); stripe wins aligned
    # writes (the pre-read-free large write).
    assert by_mapping["row-major"]["wide_read_ms"] < by_mapping["stripe"]["wide_read_ms"]
    assert (
        by_mapping["stripe"]["stripe_write_ms"]
        < by_mapping["row-major"]["stripe_write_ms"]
    )
