"""Extension bench: mirrored (interleaved) declustering vs parity.

The paper's introduction frames the choice: mirrored systems can
deliver higher throughput for some workloads "but increase cost by
consuming much more disk capacity". With G=2 stripes the library *is* a
mirrored interleaved-declustering array (Copeland & Keller), so the
comparison runs natively: same disks, same workload, mirroring
(50 % capacity overhead) vs parity declustering at alpha=0.15
(25 % overhead) vs RAID 5 (~5 %).

Expected shape: mirroring wins writes (2 accesses vs 4) and degraded
reads (1 access vs G-1); parity wins capacity.
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.reporting import format_table

from benchmarks.conftest import bench_scale, run_once

VARIANTS = (2, 4, 21)  # mirroring, alpha=0.15 parity, RAID 5
RATE = 210.0


def run_extension():
    rows = []
    for g in VARIANTS:
        fault_free = run_scenario(
            ScenarioConfig(
                stripe_size=g, user_rate_per_s=RATE, read_fraction=0.5,
                mode="fault-free", scale=bench_scale(),
            )
        )
        degraded = run_scenario(
            ScenarioConfig(
                stripe_size=g, user_rate_per_s=RATE, read_fraction=0.5,
                mode="degraded", scale=bench_scale(),
            )
        )
        label = {2: "mirrored (G=2)", 4: "parity alpha=0.15", 21: "RAID 5"}[g]
        rows.append(
            {
                "organization": label,
                "capacity_overhead_pct": round(100.0 / g, 1),
                "fault_free_ms": round(fault_free.response.mean_ms, 2),
                "degraded_ms": round(degraded.response.mean_ms, 2),
            }
        )
    return rows


def test_bench_extension_mirroring(benchmark, save_result):
    rows = run_once(benchmark, run_extension)
    save_result(
        "extension_mirroring",
        format_table(
            headers=["organization", "capacity overhead %",
                     "fault-free resp (ms)", "degraded resp (ms)"],
            rows=[
                [r["organization"], r["capacity_overhead_pct"],
                 r["fault_free_ms"], r["degraded_ms"]]
                for r in rows
            ],
            title=f"Extension: mirroring vs parity (rate {RATE:.0f}, 50/50)",
        ),
    )
    by_org = {r["organization"]: r for r in rows}
    mirrored = by_org["mirrored (G=2)"]
    parity = by_org["parity alpha=0.15"]
    raid5 = by_org["RAID 5"]
    # Mirroring's 2-access writes beat parity's 4-access RMW...
    assert mirrored["fault_free_ms"] < parity["fault_free_ms"]
    # ...and its 1-access degraded reads degrade least of all.
    assert mirrored["degraded_ms"] < raid5["degraded_ms"]
    # The price is capacity: double the redundancy of alpha=0.15.
    assert mirrored["capacity_overhead_pct"] == 50.0
