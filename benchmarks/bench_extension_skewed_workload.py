"""Extension bench: load balance under a skewed (Zipf) workload.

The distributed-parity and distributed-reconstruction criteria
guarantee balance only for a *uniform* workload; a hot working set maps
to specific stripes and piles onto their disks. The comparison is
between layouts: with small parity stripes (G=4), a 200-unit working
set spans ~67 different parity stripes whose units the block design
scatters across all 21 disks; RAID 5's 20-data-unit stripes pack the
same working set into ~10 stripes, concentrating its parity traffic
onto few disks. The bench replays the same Zipf trace (skew 1.0,
50/50) against both layouts and reports utilization-balance metrics —
declustering tolerates skew dramatically better.
"""

from repro.analysis.balance import balance_report
from repro.array import ArrayAddressing, ArrayController
from repro.experiments.builders import build_layout
from repro.experiments.reporting import format_table
from repro.experiments.scales import get_scale
from repro.sim import Environment
from repro.workload import TraceWorkload, zipf_hot_spot

from benchmarks.conftest import bench_scale, run_once

TRACE_ACCESSES = 4_000
RATE_PER_S = 210.0


def run_variant(stripe_size):
    env = Environment()
    layout = build_layout(21, stripe_size)
    addressing = ArrayAddressing(layout, get_scale(bench_scale()).spec())
    controller = ArrayController(env, addressing)
    trace = zipf_hot_spot(
        num_units=addressing.num_data_units,
        count=TRACE_ACCESSES,
        rate_per_s=RATE_PER_S,
        read_fraction=0.5,
        skew=1.0,
        working_set=200,
    )
    workload = TraceWorkload(controller, trace)
    workload.run()
    env.run(until=workload.drained())
    report = balance_report([disk.stats.busy_ms / env.now for disk in controller.disks])
    return {
        "layout": f"G={stripe_size}",
        "mean_util": round(report["mean"], 3),
        "max_util": round(report["max"], 3),
        "imbalance": round(report["imbalance_ratio"], 3),
        "gini": round(report["gini"], 3),
        "mean_response_ms": round(workload.recorder.summary().mean_ms, 2),
    }


def run_extension():
    return [run_variant(4), run_variant(21)]


def test_bench_extension_skewed_workload(benchmark, save_result):
    rows = run_once(benchmark, run_extension)
    save_result(
        "extension_skewed_workload",
        format_table(
            headers=["layout", "mean util", "max util", "imbalance", "gini",
                     "mean resp (ms)"],
            rows=[
                [r["layout"], r["mean_util"], r["max_util"], r["imbalance"],
                 r["gini"], r["mean_response_ms"]]
                for r in rows
            ],
            title=(
                "Extension: load balance under a Zipf hot spot "
                "(skew 1.0, 200-unit working set, rate 210, 50/50)"
            ),
        ),
    )
    declustered, raid5 = rows
    # Smaller parity stripes spread the hot working set over more
    # stripes and hence more disks: better balance, far better response.
    assert declustered["imbalance"] < raid5["imbalance"]
    assert declustered["mean_response_ms"] < raid5["mean_response_ms"] / 2
