"""Extension bench: reconstruction throttling and user-priority queues.

Section 9 names throttling and prioritization as future work "for
greater control of the reconstruction process ... that reduces user
response time degradation without starving reconstruction". This bench
sweeps the throttle and toggles the two-class priority scheduler at the
paper's alpha = 0.15, rate 210 point, producing the
recovery-time-vs-response-time trade-off curve an operator would tune.
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.recon import USER_WRITES
from repro.experiments.reporting import format_table

from benchmarks.conftest import bench_scale, run_once

THROTTLES_MS = (0.0, 25.0, 100.0)
POLICIES = ("cvscan", "cvscan+priority")


def run_extension():
    rows = []
    for policy in POLICIES:
        for delay in THROTTLES_MS:
            result = run_scenario(
                ScenarioConfig(
                    stripe_size=4,
                    user_rate_per_s=210.0,
                    read_fraction=0.5,
                    mode="recon",
                    algorithm=USER_WRITES,
                    recon_workers=8,
                    scale=bench_scale(),
                    policy=policy,
                    recon_cycle_delay_ms=delay,
                )
            )
            rows.append(
                {
                    "policy": policy,
                    "throttle_ms": delay,
                    "recon_time_s": round(result.reconstruction_time_s, 2),
                    "mean_response_ms": round(result.response.mean_ms, 2),
                    "p90_ms": round(result.response.p90_ms, 2),
                }
            )
    return rows


def test_bench_extension_throttle(benchmark, save_result):
    rows = run_once(benchmark, run_extension)
    save_result(
        "extension_throttle_priority",
        format_table(
            headers=["policy", "throttle (ms)", "recon time (s)",
                     "mean resp (ms)", "p90 (ms)"],
            rows=[
                [r["policy"], r["throttle_ms"], r["recon_time_s"],
                 r["mean_response_ms"], r["p90_ms"]]
                for r in rows
            ],
            title=(
                "Extension: throttling & priority during 8-way reconstruction "
                "(alpha=0.15, rate 210, 50/50)"
            ),
        ),
    )
    by_key = {(r["policy"], r["throttle_ms"]): r for r in rows}
    # Throttling must trade recovery time for response time.
    assert (
        by_key[("cvscan", 100.0)]["recon_time_s"]
        > by_key[("cvscan", 0.0)]["recon_time_s"]
    )
    assert (
        by_key[("cvscan", 100.0)]["mean_response_ms"]
        < by_key[("cvscan", 0.0)]["mean_response_ms"]
    )
    # Priority must improve response time at zero throttle.
    assert (
        by_key[("cvscan+priority", 0.0)]["mean_response_ms"]
        < by_key[("cvscan", 0.0)]["mean_response_ms"]
    )
