"""Figure 4-3: the catalog of known block designs.

Benchmarks the full catalog construction (every design built and
validated) and emits the scatter rows.
"""

from repro.designs.catalog import DesignCatalog
from repro.designs.catalog import (
    _register_extensions,
    _register_families,
    _register_paper_designs,
)
from repro.experiments import fig4_3

from benchmarks.conftest import run_once


def build_and_validate_catalog():
    catalog = DesignCatalog()
    _register_paper_designs(catalog)
    _register_families(catalog)
    _register_extensions(catalog)
    for entry in catalog.entries():
        catalog.exact(entry.v, entry.k).validate()
    return catalog


def test_bench_fig4_3(benchmark, save_result):
    catalog = run_once(benchmark, build_and_validate_catalog)
    assert len(catalog.entries()) > 50
    save_result("fig4_3_designs", fig4_3.format_rows(fig4_3.run()))
