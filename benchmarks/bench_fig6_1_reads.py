"""Figure 6-1: fault-free and degraded response time, 100 % reads.

Grid: alpha in {0.15, 0.25, 0.45, 1.0} x rates {105, 210, 378} x
{fault-free, degraded}. Expected shapes: fault-free flat in alpha;
degraded response falls as alpha falls.
"""

from repro.experiments import fig6

from benchmarks.conftest import bench_scale, run_once

STRIPE_SIZES = (4, 6, 10, 21)


def test_bench_fig6_1(benchmark, save_result, sweep_options):
    rows = run_once(
        benchmark,
        fig6.run_figure,
        read_fraction=1.0,
        rates=fig6.READ_RATES,
        scale=bench_scale(),
        stripe_sizes=STRIPE_SIZES,
        options=sweep_options,
    )
    save_result(
        "fig6_1_reads",
        fig6.format_rows(rows, "Figure 6-1: response time, 100% reads"),
    )
    by_key = {(r["g"], r["rate"], r["mode"]): r["mean_response_ms"] for r in rows}
    # Degraded RAID 5 must be the worst read case at every rate.
    for rate in fig6.READ_RATES:
        assert by_key[(21, rate, "degraded")] >= by_key[(4, rate, "degraded")]
