"""Figure 6-2: fault-free and degraded response time, 100 % writes.

Writes cost four accesses, so only rates 105 and 210 are sustainable
(the paper could not run 378 writes/s either). Expected shapes:
fault-free flat in alpha except the G=3 small-stripe optimization;
degraded writes at low alpha can beat fault-free (write folding).
"""

from repro.experiments import fig6

from benchmarks.conftest import bench_scale, run_once

STRIPE_SIZES = (3, 4, 10, 21)


def test_bench_fig6_2(benchmark, save_result, sweep_options):
    rows = run_once(
        benchmark,
        fig6.run_figure,
        read_fraction=0.0,
        rates=fig6.WRITE_RATES,
        scale=bench_scale(),
        stripe_sizes=STRIPE_SIZES,
        options=sweep_options,
    )
    save_result(
        "fig6_2_writes",
        fig6.format_rows(rows, "Figure 6-2: response time, 100% writes"),
    )
    by_key = {(r["g"], r["rate"], r["mode"]): r["mean_response_ms"] for r in rows}
    # The G=3 small-stripe write optimization: fault-free G=3 beats G=21.
    assert by_key[(3, 105.0, "fault-free")] < by_key[(21, 105.0, "fault-free")]
    # Write folding: degraded G=4 is not much worse than fault-free G=4.
    assert by_key[(4, 105.0, "degraded")] < by_key[(4, 105.0, "fault-free")] * 1.10
