"""Figures 8-1 and 8-2: single-thread reconstruction.

One simulation per (alpha, rate, algorithm) point supplies both the
reconstruction-time series (Figure 8-1) and the during-reconstruction
user response-time series (Figure 8-2). Expected shapes: both fall
with alpha; at low alpha the simpler algorithms reconstruct fastest.
"""

from repro.experiments import fig8

from benchmarks.conftest import bench_scale, run_once

STRIPE_SIZES = (4, 6, 10, 21)


def test_bench_fig8_1_and_8_2(benchmark, save_result, sweep_options):
    rows = run_once(
        benchmark,
        fig8.run_grid,
        workers=1,
        scale=bench_scale(),
        stripe_sizes=STRIPE_SIZES,
        options=sweep_options,
    )
    save_result(
        "fig8_1_2_single_thread",
        fig8.format_rows(
            rows, "Figures 8-1/8-2: single-thread reconstruction (50/50)"
        ),
    )
    by_key = {
        (r["g"], r["rate"], r["algorithm"]): r for r in rows
    }
    # Figure 8-1 headline: declustering reconstructs much faster than
    # RAID 5 under the same load.
    fast = by_key[(4, 105.0, "baseline")]["recon_time_s"]
    slow = by_key[(21, 105.0, "baseline")]["recon_time_s"]
    assert fast < slow
    # Figure 8-2 headline: declustering lowers user response time too.
    assert (
        by_key[(4, 105.0, "baseline")]["mean_response_ms"]
        < by_key[(21, 105.0, "baseline")]["mean_response_ms"]
    )
