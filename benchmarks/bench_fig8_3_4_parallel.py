"""Figures 8-3 and 8-4: eight-way parallel reconstruction.

Expected shapes: reconstruction time drops by roughly 4-6x relative to
single-thread while user response time rises; at low alpha the simple
algorithms (baseline / user-writes) reconstruct fastest because they
keep the replacement disk's write stream sequential.
"""

from repro.experiments import fig8

from benchmarks.conftest import bench_scale, run_once

STRIPE_SIZES = (4, 6, 10, 21)


def test_bench_fig8_3_and_8_4(benchmark, save_result, sweep_options):
    rows = run_once(
        benchmark,
        fig8.run_grid,
        workers=8,
        scale=bench_scale(),
        stripe_sizes=STRIPE_SIZES,
        options=sweep_options,
    )
    save_result(
        "fig8_3_4_parallel",
        fig8.format_rows(
            rows, "Figures 8-3/8-4: eight-way parallel reconstruction (50/50)"
        ),
    )
    by_key = {(r["g"], r["rate"], r["algorithm"]): r for r in rows}
    # Low-alpha ordering: the redirecting algorithms must not beat the
    # simple ones on reconstruction time (the paper's surprising result).
    simple = min(
        by_key[(4, 210.0, "baseline")]["recon_time_s"],
        by_key[(4, 210.0, "user-writes")]["recon_time_s"],
    )
    redirecting = by_key[(4, 210.0, "redirect")]["recon_time_s"]
    assert simple <= redirecting * 1.05
