"""Figure 8-6: Muntz & Lui analytic model vs simulation.

Expected shape: the model, pricing all accesses at the 46/s random
rate, is significantly pessimistic about reconstruction time at every
alpha.
"""

from repro.experiments import fig8_6

from benchmarks.conftest import bench_scale, run_once


def test_bench_fig8_6(benchmark, save_result, sweep_options):
    rows = run_once(benchmark, fig8_6.run, scale=bench_scale(),
                    options=sweep_options)
    save_result("fig8_6_model_vs_sim", fig8_6.format_rows(rows))
    # The model must be pessimistic everywhere (the paper's finding).
    assert all(row["model_over_sim"] > 1.0 for row in rows)
