"""Derived reliability table: measured repair time → MTTDL.

Expected shape: MTTDL falls as alpha rises, because repair time is the
denominator of the MTTDL approximation and reconstruction slows as
parity stripes widen — the quantitative version of the paper's
window-of-vulnerability argument.
"""

from repro.experiments import reliability

from benchmarks.conftest import bench_scale, run_once


def test_bench_reliability(benchmark, save_result, sweep_options):
    rows = run_once(benchmark, reliability.run, scale=bench_scale(),
                    options=sweep_options)
    save_result("reliability_mttdl", reliability.format_rows(rows))
    mttdl_by_alpha = [(r["alpha"], r["mttdl_years"]) for r in rows]
    ordered = sorted(mttdl_by_alpha)
    # MTTDL must not improve as alpha grows.
    values = [m for _a, m in ordered]
    assert all(b <= a * 1.02 for a, b in zip(values, values[1:]))
