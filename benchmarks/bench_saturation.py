"""Saturation sweep bench: response time vs offered load.

Expected shape: response time rises slowly until the hottest disk's
utilization approaches 1, then sharply — the standard queueing knee,
located where the analytic (4-3R)-expansion arithmetic predicts.
"""

from repro.experiments import saturation

from benchmarks.conftest import bench_scale, run_once


def test_bench_saturation(benchmark, save_result, sweep_options):
    rows = run_once(benchmark, saturation.run, scale=bench_scale(),
                    options=sweep_options)
    save_result("saturation_sweep", saturation.format_rows(rows))
    ordered = sorted(rows, key=lambda r: r["rate"])
    responses = [r["mean_response_ms"] for r in ordered]
    # Monotone non-decreasing response with offered load...
    assert all(b >= a * 0.95 for a, b in zip(responses, responses[1:]))
    # ...with a real knee: the top point clearly above the bottom one.
    assert responses[-1] > responses[0] * 1.5
    # Utilization tracks the offered fraction of the analytic ceiling.
    for row in ordered:
        assert row["max_disk_utilization"] <= 1.0
        assert row["max_disk_utilization"] >= row["offered_fraction_of_ceiling"] * 0.5
