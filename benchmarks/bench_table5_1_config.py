"""Table 5-1: the simulation configuration, read back from live objects."""

from repro.experiments import table5_1

from benchmarks.conftest import run_once


def test_bench_table5_1(benchmark, save_result):
    rows = run_once(benchmark, table5_1.run, "paper")
    values = {r["parameter"]: r["value"] for r in rows}
    assert values["cylinders"] == 949
    save_result("table5_1_config", table5_1.format_rows(rows))
