"""Table 8-1: reconstruction cycle read/write phase times at rate 210.

Expected shapes: read phase grows with alpha; the more complex
algorithms lower the read phase and raise the write phase; baseline
keeps the smallest write phase because nothing else touches the
replacement disk.
"""

from repro.experiments import table8_1

from benchmarks.conftest import bench_scale, run_once


def test_bench_table8_1(benchmark, save_result, sweep_options):
    rows = run_once(benchmark, table8_1.run, scale=bench_scale(),
                    options=sweep_options)
    save_result("table8_1_cycles", table8_1.format_rows(rows))
    by_key = {(r["workers"], r["alpha"], r["algorithm"]): r for r in rows}
    # Read phase grows with alpha (more disks in the max of G-1 reads).
    for workers in (1, 8):
        assert (
            by_key[(workers, 0.15, "baseline")]["read_ms"]
            < by_key[(workers, 1.0, "baseline")]["read_ms"]
        )
    # Redirection raises the replacement's write phase over baseline.
    assert (
        by_key[(8, 0.15, "redirect")]["write_ms"]
        > by_key[(8, 0.15, "baseline")]["write_ms"]
    )
