"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure at the ``tiny`` scale
(override with ``REPRO_BENCH_SCALE=small`` or ``paper``) and writes the
formatted rows to ``results/<name>.txt`` so EXPERIMENTS.md can quote
them. The pytest-benchmark timing wraps the whole experiment run:
rounds=1, because one run *is* the experiment.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> str:
    """The scale preset benchmarks run at (env: REPRO_BENCH_SCALE)."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture
def save_result():
    """Writer fixture: ``save_result(name, text)`` → results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
