"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure at the ``tiny`` scale
(override with ``REPRO_BENCH_SCALE=small`` or ``paper``) and writes the
formatted rows to ``results/<name>.txt`` so EXPERIMENTS.md can quote
them. The pytest-benchmark timing wraps the whole experiment run:
rounds=1, because one run *is* the experiment.

Scenario-grid benchmarks route through :mod:`repro.sweep` via the
``sweep_options`` fixture: ``pytest benchmarks/ --jobs 8`` fans each
grid out over worker processes, and results are cached
content-addressed on disk, so regenerating an unchanged figure is
near-instant. Pass ``--no-cache`` (or set ``REPRO_BENCH_NO_CACHE=1``)
to force fresh simulations — do that whenever the pytest-benchmark
*timing*, rather than the regenerated figure, is the point.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        help="simulate N sweep points in parallel worker processes (default: 1)",
    )
    parser.addoption(
        "--no-cache",
        action="store_true",
        default=bool(os.environ.get("REPRO_BENCH_NO_CACHE", "")),
        help="always simulate; do not read or write the sweep result cache",
    )


def bench_scale() -> str:
    """The scale preset benchmarks run at (env: REPRO_BENCH_SCALE)."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture
def sweep_options(request):
    """Sweep execution policy from ``--jobs`` / ``--no-cache``."""
    from repro.sweep import SweepOptions, default_cache_dir

    no_cache = request.config.getoption("--no-cache")
    return SweepOptions(
        jobs=request.config.getoption("--jobs"),
        cache=None if no_cache else default_cache_dir(),
    )


@pytest.fixture
def save_result():
    """Writer fixture: ``save_result(name, text)`` → results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
