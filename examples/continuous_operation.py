#!/usr/bin/env python
"""Continuous operation, end to end: scrubbing, hot spares, auto-repair.

Runs an operations-flavored scenario on a declustered array:

1. serve a steady workload while a background parity scrub sweeps the
   array (catching a latent parity error we inject);
2. fail a disk; the hot-spare pool installs a replacement and
   reconstructs automatically;
3. fail a second (different) disk later; the pool repairs again;
4. report per-repair times and the MTTDL the measured repair time
   implies at full disk size.

Run:  python examples/continuous_operation.py
"""

from repro import (
    ArrayAddressing,
    ArrayController,
    Environment,
    ParityScrubber,
    SparePool,
    SyntheticWorkload,
    WorkloadConfig,
    paper_design,
    scaled_spec,
)
from repro.analysis.reliability import ReliabilityInputs, mttdl_years
from repro.experiments.scales import get_scale
from repro.layout import DeclusteredLayout
from repro.recon import USER_WRITES


def main():
    env = Environment()
    layout = DeclusteredLayout(paper_design(4))
    addressing = ArrayAddressing(layout, scaled_spec(13))
    controller = ArrayController(env, addressing, with_datastore=True)
    workload = SyntheticWorkload(
        controller, WorkloadConfig(access_rate_per_s=105.0, read_fraction=0.5)
    )
    workload.run(duration_ms=float("inf"))

    # --- 1. background scrub catches a latent parity error --------------
    parity = layout.parity_unit(17)
    store = controller.datastore
    store.write_unit(parity.disk, parity.offset, 0xBAD0BAD0)
    scrubber = ParityScrubber(controller, cycle_delay_ms=2.0)
    report = env.run(until=scrubber.start())
    print(f"scrub: {report.stripes_checked} stripes in "
          f"{report.duration_ms / 1000.0:.1f} s, "
          f"{report.mismatches_found} latent error(s) found and "
          f"{report.repairs_written} repaired")

    # --- 2 & 3. failures handled by the spare pool ------------------------
    pool = SparePool(
        controller, spares=2, replacement_delay_ms=1_000.0,
        recon_workers=8, algorithm=USER_WRITES,
    )
    for failed_disk in (5, 11):
        workload.pause_verification()
        record = env.run(until=pool.handle_failure(failed_disk))
        print(
            f"repair of disk {record.failed_disk}: spare installed after "
            f"{record.replacement_delay_ms / 1000.0:.1f} s, reconstructed in "
            f"{record.reconstruction_ms / 1000.0:.1f} s"
        )
        env.run(until=env.now + 5_000.0)  # settle between failures

    workload.stop()
    env.run(until=workload.drained())
    assert workload.integrity_errors == [], workload.integrity_errors
    print(f"\nworkload: {workload.completed} requests, zero integrity errors")

    # --- 4. what the measured repair buys in reliability -------------------
    mean_repair_ms = sum(r.total_repair_ms for r in pool.repairs) / len(pool.repairs)
    scale_factor = get_scale("paper").units_per_disk / addressing.mapped_units_per_disk
    repair_hours = mean_repair_ms * scale_factor / 3_600_000.0
    inputs = ReliabilityInputs(
        num_disks=21, disk_mttf_hours=150_000.0, repair_hours=repair_hours
    )
    print(
        f"mean repair (scaled to full 0661): {repair_hours:.2f} h "
        f"-> MTTDL ≈ {mttdl_years(inputs):,.0f} years"
    )


if __name__ == "__main__":
    main()
