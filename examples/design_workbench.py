#!/usr/bin/env python
"""Design workbench: constructing block designs for array planning.

A system administrator chooses C (disks) and G (parity stripe size) for
cost, capacity, performance, and reliability (Section 2). This example
shows every construction technique the library offers for turning that
choice into a balanced layout:

- cyclic development of difference families (Hall's notation),
- quadratic-residue symmetric designs,
- projective and affine planes,
- derived designs (the paper's alpha = 0.45 trick),
- complement designs (filling the paper's open 0.5 < alpha < 0.8 gap),
- the catalog's closest-feasible-alpha fallback.

Run:  python examples/design_workbench.py
"""

from repro.designs import (
    affine_plane,
    complement_design,
    cyclic_design,
    default_catalog,
    derived_design,
    paper_design,
    projective_plane,
    quadratic_residue_design,
)


def show(label, design):
    print(f"{label:46s} {design.summary()}")


def main():
    print("— Difference families (the paper's appendix notation) —")
    show("Fano plane, [1,2,4] mod 7:", cyclic_design([[1, 2, 4]], 7))
    show("Paper BD3, [3,6,7,12,14] mod 21:", paper_design(5))
    show("Paper BD1 with short orbit [0,7,14] p.7:", paper_design(3))

    print("\n— Symmetric designs from quadratic residues —")
    for p in (11, 19, 43):
        show(f"QR({p}):", quadratic_residue_design(p))

    print("\n— Finite planes —")
    show("PG(2,5) projective plane:", projective_plane(5))
    show("AG(2,5) affine plane:", affine_plane(5))

    print("\n— Derived designs (paper Appendix, BD5) —")
    sym43 = quadratic_residue_design(43)
    show("derived(QR(43)) -> (21,10) as BD5:", derived_design(sym43))

    print("\n— Complements: the 0.5 < alpha < 0.8 gap —")
    for g in (5, 6, 10):
        comp = complement_design(paper_design(g))
        show(f"complement(paper G={g}):", comp)

    print("\n— Catalog selection for a 21-disk array —")
    catalog = default_catalog()
    for g in range(3, 21):
        design = catalog.select(21, g)
        note = "" if design.k == g else f"   <- closest feasible to G={g}"
        print(f"G={g:2d} (alpha={ (g-1)/20:.2f}) -> {design.summary()}{note}")

    print("\nEvery design above passed full BIBD validation at construction.")


if __name__ == "__main__":
    main()
