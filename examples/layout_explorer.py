#!/usr/bin/env python
"""Layout explorer: block designs, layouts, and the six criteria.

Recreates the paper's layout figures in ASCII and scores layouts
against the Section 4.1 criteria:

- Figure 2-1: the left-symmetric RAID 5 layout;
- Figure 4-1: the complete block design on (5, 4);
- Figure 2-3 / 4-2: the declustered layout built from it;
- criteria evaluation for RAID 5 vs declustered, including the two
  criteria the paper's data mapping cannot satisfy simultaneously.

Run:  python examples/layout_explorer.py [G] [C]
      (defaults: G=4, C=5; try 4 21 for a paper-sized array)
"""

import sys

from repro import default_catalog, evaluate_layout
from repro.layout import DeclusteredLayout, LeftSymmetricRaid5Layout


def show(title, text):
    print(f"\n=== {title} ===")
    print(text)


def main():
    g = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    c = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    # --- the block design ------------------------------------------------
    design = default_catalog().select(c, g)
    show(f"Block design for C={c}, G={g}", design.summary())
    print("first tuples:")
    for i, tup in enumerate(design.tuples[:8]):
        print(f"  tuple {i}: {tup}")
    if design.b > 8:
        print(f"  ... and {design.b - 8} more")

    # --- the declustered layout ------------------------------------------
    layout = DeclusteredLayout(design)
    depth = min(layout.table_depth, 16)
    show(
        f"Declustered layout (first {depth} offsets of a "
        f"{layout.table_depth}-deep full table)",
        layout.render_table(depth=depth),
    )

    # --- RAID 5 for comparison --------------------------------------------
    raid5 = LeftSymmetricRaid5Layout(c)
    show(f"Left-symmetric RAID 5 on {c} disks", raid5.render_table())

    # --- criteria ----------------------------------------------------------
    show("Layout criteria (Section 4.1)", "")
    print(f"{'criterion':32s}  {'RAID 5':8s}  declustered")
    raid5_reports = {r.name: r for r in evaluate_layout(raid5)}
    declustered_reports = {r.name: r for r in evaluate_layout(layout)}
    for name in raid5_reports:
        r5 = "PASS" if raid5_reports[name].passed else "FAIL"
        de = "PASS" if declustered_reports[name].passed else "FAIL"
        print(f"{name:32s}  {r5:8s}  {de}")
    print(
        "\n(The declustered data mapping satisfies the large-write "
        "optimization\nbut not maximal parallelism — the trade-off "
        "Section 4.2 leaves open.)"
    )

    # --- the cost/benefit summary -------------------------------------------
    show("Cost/benefit", "")
    print(f"parity overhead:    RAID 5 {raid5.parity_overhead():.1%}   "
          f"declustered {layout.parity_overhead():.1%}")
    print(f"declustering ratio: RAID 5 {raid5.declustering_ratio():.2f}   "
          f"declustered {layout.declustering_ratio():.2f}")
    print(
        f"-> during reconstruction each surviving disk reads "
        f"{layout.declustering_ratio():.0%} of itself instead of 100%."
    )


if __name__ == "__main__":
    main()
