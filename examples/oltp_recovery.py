#!/usr/bin/env python
"""OLTP recovery study: does the array stay inside its SLA during repair?

The paper motivates declustering with the OLTP rule of thumb that 90 %
of transactions must complete in under two seconds, *including* during
the minutes-to-hours of on-line reconstruction. A simple transaction
needs up to three disk accesses, so the storage budget is roughly
2000/3 ≈ 666 ms at the 90th percentile.

This example compares a RAID 5 array against declustered arrays at the
same user load during an 8-way reconstruction, reporting reconstruction
time and the response-time percentiles that decide the SLA.

Run:  python examples/oltp_recovery.py [rate]  (default 210 accesses/s)
"""

import sys

from repro import ScenarioConfig, run_scenario
from repro.recon import USER_WRITES

SLA_P90_BUDGET_MS = 2000.0 / 3.0  # per-access share of a 3-access transaction


def main():
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 210.0
    print(f"OLTP recovery study at {rate:.0f} user accesses/s "
          f"(50% reads, 8-way reconstruction)\n")
    print(f"{'G':>3s} {'alpha':>6s} {'recon (s)':>10s} {'mean (ms)':>10s} "
          f"{'p90 (ms)':>9s} {'p99 (ms)':>9s}  SLA(p90<{SLA_P90_BUDGET_MS:.0f}ms)")

    for g in (4, 6, 10, 21):
        result = run_scenario(
            ScenarioConfig(
                stripe_size=g,
                user_rate_per_s=rate,
                read_fraction=0.5,
                mode="recon",
                algorithm=USER_WRITES,
                recon_workers=8,
                scale="tiny",
            )
        )
        response = result.response
        verdict = "meets" if response.p90_ms < SLA_P90_BUDGET_MS else "MISSES"
        print(
            f"{g:3d} {result.config.alpha:6.2f} "
            f"{result.reconstruction_time_s:10.1f} {response.mean_ms:10.1f} "
            f"{response.p90_ms:9.1f} {response.p99_ms:9.1f}  {verdict}"
        )

    print(
        "\nLower alpha buys both a shorter window of vulnerability "
        "(reconstruction time)\nand smaller response-time degradation — "
        "at the price of 1/G parity overhead."
    )


if __name__ == "__main__":
    main()
