#!/usr/bin/env python
"""Quickstart: build a declustered array, fail a disk, rebuild it.

This walks the paper's whole story on a small simulated array in a few
seconds:

1. assemble a 21-disk array with G=4 parity stripes (alpha = 0.15);
2. serve an OLTP-like workload fault-free;
3. fail a disk and watch degraded-mode response times;
4. install a replacement and reconstruct under load;
5. report reconstruction time and response times per phase.

Run:  python examples/quickstart.py
"""

from repro import (
    ArrayAddressing,
    ArrayController,
    Environment,
    REDIRECT,
    Reconstructor,
    SyntheticWorkload,
    WorkloadConfig,
    paper_design,
    scaled_spec,
)
from repro.layout import DeclusteredLayout


def main():
    env = Environment()

    # --- 1. the array: 21 disks, parity stripes of 4 units -------------
    layout = DeclusteredLayout(paper_design(4))
    print(f"layout: {layout}")
    print(f"  declustering ratio alpha = {layout.declustering_ratio():.2f}")
    print(f"  parity overhead          = {layout.parity_overhead():.0%}")

    # Scaled-down IBM 0661 disks keep the demo quick; pass IBM_0661
    # for the paper's full-size drives.
    addressing = ArrayAddressing(layout, scaled_spec(13))
    controller = ArrayController(env, addressing, algorithm=REDIRECT)
    print(f"  data capacity            = {addressing.data_capacity_bytes / 1e6:.0f} MB")

    # --- 2. fault-free service ------------------------------------------
    workload = SyntheticWorkload(
        controller,
        WorkloadConfig(access_rate_per_s=210.0, read_fraction=0.5),
    )
    workload.run(duration_ms=float("inf"))
    env.run(until=10_000.0)
    fault_free = workload.recorder.summary(until_ms=env.now)
    print(f"\nfault-free:  mean response {fault_free.mean_ms:6.1f} ms "
          f"({fault_free.count} requests)")

    # --- 3. failure: degraded operation ---------------------------------
    failure_time = env.now
    controller.fail_disk(0)
    env.run(until=env.now + 10_000.0)
    degraded = workload.recorder.summary(since_ms=failure_time, until_ms=env.now)
    print(f"degraded:    mean response {degraded.mean_ms:6.1f} ms "
          f"({degraded.count} requests)")

    # --- 4. reconstruction under load ------------------------------------
    recon_start = env.now
    controller.install_replacement()
    reconstructor = Reconstructor(controller, workers=8)
    env.run(until=reconstructor.start())
    result = reconstructor.result()
    during = workload.recorder.summary(since_ms=recon_start, until_ms=env.now)
    print(f"recovering:  mean response {during.mean_ms:6.1f} ms "
          f"({during.count} requests)")

    # --- 5. the recovery report ------------------------------------------
    print(f"\nreconstruction completed in {result.reconstruction_time_ms / 1000.0:.1f} s "
          f"of simulated time")
    print(f"  units rebuilt by the sweep : {result.swept_units}")
    print(f"  units rebuilt by user I/O  : {result.user_built_units}")
    read_phase, write_phase = result.phase_summary(last_n=300)
    print(f"  cycle phases (last 300)    : read {read_phase.mean_ms:.0f} ms + "
          f"write {write_phase.mean_ms:.0f} ms")
    assert controller.faults.fault_free
    print("\narray is fault-free again — continuous operation maintained.")


if __name__ == "__main__":
    main()
