#!/usr/bin/env python
"""Reconstruction race: the four algorithms head to head.

Reproduces the paper's most surprising result interactively: with
parallel reconstruction at low declustering ratio, the *simplest*
algorithms win, because sending user work to the replacement disk
destroys the sequentiality of its reconstruction-write stream.

The race runs every algorithm through the identical scenario (same
seed, same failure) and prints reconstruction time, response time, and
the cycle-phase breakdown that explains the ranking.

Run:  python examples/reconstruction_race.py [alpha]
      alpha in {0.15, 0.25, 0.45, 1.0}; default 0.15
"""

import sys

from repro import ScenarioConfig, run_scenario
from repro.recon import ALGORITHMS

ALPHA_TO_G = {0.15: 4, 0.25: 6, 0.45: 10, 1.0: 21}


def main():
    alpha = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    if alpha not in ALPHA_TO_G:
        raise SystemExit(f"pick alpha from {sorted(ALPHA_TO_G)}")
    g = ALPHA_TO_G[alpha]
    print(f"Reconstruction race: alpha={alpha} (G={g}), rate 210/s, "
          f"50% reads, 8-way parallel sweep\n")

    rows = []
    for algorithm in ALGORITHMS:
        result = run_scenario(
            ScenarioConfig(
                stripe_size=g,
                user_rate_per_s=210.0,
                read_fraction=0.5,
                mode="recon",
                algorithm=algorithm,
                recon_workers=8,
                scale="tiny",
            )
        )
        read_phase, write_phase = result.reconstruction.phase_summary(last_n=300)
        rows.append(
            (
                algorithm.name,
                result.reconstruction_time_s,
                result.response.mean_ms,
                read_phase.mean_ms,
                write_phase.mean_ms,
                result.reconstruction.user_built_units,
            )
        )

    print(f"{'algorithm':20s} {'recon (s)':>10s} {'resp (ms)':>10s} "
          f"{'read-ph':>8s} {'write-ph':>9s} {'free units':>11s}")
    for name, recon_s, resp_ms, read_ms, write_ms, free in rows:
        print(f"{name:20s} {recon_s:10.1f} {resp_ms:10.1f} "
              f"{read_ms:8.1f} {write_ms:9.1f} {free:11d}")

    winner = min(rows, key=lambda r: r[1])
    print(f"\nfastest reconstruction: {winner[0]}")
    print(
        "\nNote the write-phase column: the redirecting algorithms off-load\n"
        "the survivors (lower read phase) but disturb the replacement's\n"
        "sequential writes (higher write phase) — at low alpha that trade\n"
        "goes against them, exactly as Section 8.2 reports."
    )


if __name__ == "__main__":
    main()
