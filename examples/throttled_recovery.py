#!/usr/bin/env python
"""Throttled recovery: tuning the repair-speed vs service-quality dial.

The paper's future-work section asks for "throttling of reconstruction
and/or user workload as well as a flexible prioritization scheme". Both
are implemented here as extensions; this example sweeps them so an
operator can pick a point on the trade-off curve:

- the sweep throttle (idle time per reconstruction cycle) stretches the
  window of vulnerability but relieves the disks;
- the user-priority scheduler serves user requests before
  reconstruction requests at every disk.

Run:  python examples/throttled_recovery.py
"""

from repro import ScenarioConfig, run_scenario
from repro.recon import USER_WRITES


def run_point(policy, throttle_ms):
    # user-writes is the recommended pairing for priority scheduling:
    # its user writes advance reconstruction instead of dirtying it.
    return run_scenario(
        ScenarioConfig(
            stripe_size=4,
            user_rate_per_s=210.0,
            read_fraction=0.5,
            mode="recon",
            algorithm=USER_WRITES,
            recon_workers=8,
            scale="tiny",
            policy=policy,
            recon_cycle_delay_ms=throttle_ms,
        )
    )


def main():
    print("Recovery tuning at alpha=0.15, 210 accesses/s, 8-way sweep\n")
    print(f"{'policy':18s} {'throttle':>9s} {'recon (s)':>10s} "
          f"{'mean (ms)':>10s} {'p90 (ms)':>9s}")
    for policy in ("cvscan", "cvscan+priority"):
        for throttle in (0.0, 25.0, 100.0, 400.0):
            result = run_point(policy, throttle)
            print(
                f"{policy:18s} {throttle:8.0f}ms {result.reconstruction_time_s:10.1f} "
                f"{result.response.mean_ms:10.1f} {result.response.p90_ms:9.1f}"
            )
    print(
        "\nReading the dial: move down the throttle column to favor user\n"
        "service; move up to shrink the window of vulnerability. The\n"
        "priority scheduler improves response time at every throttle\n"
        "without the unbounded slowdown heavy throttling causes."
    )


if __name__ == "__main__":
    main()
