"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so environments
without PEP 660 editable-install support (e.g. offline boxes missing
the ``wheel`` package) can still run ``python setup.py develop`` or
legacy ``pip install -e .``.
"""

from setuptools import setup

setup()
