"""repro — Parity declustering for continuous operation in redundant disk arrays.

A full reproduction of Holland & Gibson (ASPLOS 1992): block-design
based declustered parity layouts, a sector-accurate disk array
simulator in the raidSim architecture, the four reconstruction
algorithms of Section 8, and an experiment harness regenerating every
table and figure of the paper's evaluation.

Quick start
-----------
>>> from repro import ScenarioConfig, run_scenario
>>> result = run_scenario(ScenarioConfig(
...     stripe_size=4,          # G: parity stripe size (alpha = 0.15 on 21 disks)
...     user_rate_per_s=105,    # user accesses per second
...     read_fraction=0.5,
...     mode="recon",           # rebuild a failed disk under load
...     scale="tiny",
... ))
>>> result.reconstruction_time_s > 0
True

Package map
-----------
- :mod:`repro.designs` — balanced incomplete / complete block designs
- :mod:`repro.layout` — RAID 5 and declustered parity layouts + criteria
- :mod:`repro.sim` — the discrete-event kernel
- :mod:`repro.disk` — the IBM 0661 disk model and head schedulers
- :mod:`repro.array` — the striping driver (controller, locks, data store)
- :mod:`repro.recon` — reconstruction algorithms and the sweep
- :mod:`repro.workload` — the synthetic OLTP-like workload
- :mod:`repro.analysis` — the Muntz & Lui analytic model
- :mod:`repro.experiments` — per-figure/table runners and scales
"""

from repro._version import __version__
from repro.array import (
    ArrayAddressing,
    ArrayController,
    DataStore,
    ParityScrubber,
    SparePool,
    UserRequest,
)
from repro.designs import (
    BlockDesign,
    complete_design,
    cyclic_design,
    default_catalog,
    paper_design,
)
from repro.disk import IBM_0661, Disk, DiskSpec, scaled_spec
from repro.experiments import ScenarioConfig, ScenarioResult, get_scale, run_scenario
from repro.layout import (
    CyclicArithmeticLayout,
    DeclusteredLayout,
    LeftSymmetricRaid5Layout,
    ParityLayout,
    PermutationStripingLayout,
    TableParityLayout,
    evaluate_layout,
)
from repro.recon import (
    ALGORITHMS,
    BASELINE,
    REDIRECT,
    REDIRECT_PIGGYBACK,
    USER_WRITES,
    Reconstructor,
)
from repro.sim import Environment
from repro.workload import SyntheticWorkload, TraceRecord, TraceWorkload, WorkloadConfig

__all__ = [
    "ALGORITHMS",
    "ArrayAddressing",
    "ArrayController",
    "BASELINE",
    "BlockDesign",
    "CyclicArithmeticLayout",
    "DataStore",
    "DeclusteredLayout",
    "Disk",
    "DiskSpec",
    "Environment",
    "IBM_0661",
    "LeftSymmetricRaid5Layout",
    "ParityLayout",
    "ParityScrubber",
    "PermutationStripingLayout",
    "REDIRECT",
    "REDIRECT_PIGGYBACK",
    "Reconstructor",
    "ScenarioConfig",
    "SparePool",
    "ScenarioResult",
    "TableParityLayout",
    "SyntheticWorkload",
    "TraceRecord",
    "TraceWorkload",
    "USER_WRITES",
    "UserRequest",
    "WorkloadConfig",
    "__version__",
    "complete_design",
    "cyclic_design",
    "default_catalog",
    "evaluate_layout",
    "get_scale",
    "paper_design",
    "run_scenario",
    "scaled_spec",
]
