"""Package version, kept in one place for the CLI and docs."""

__version__ = "1.0.0"
