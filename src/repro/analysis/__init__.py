"""Analysis: queueing helpers and the Muntz & Lui analytic model."""

from repro.analysis.muntz_lui import MuntzLuiModel, MuntzLuiInputs
from repro.analysis.queueing import mm1_response_time_ms, offered_load

__all__ = [
    "MuntzLuiInputs",
    "MuntzLuiModel",
    "mm1_response_time_ms",
    "offered_load",
]
