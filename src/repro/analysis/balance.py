"""Load-balance metrics over per-disk utilizations.

The layout criteria (distributed parity, distributed reconstruction)
exist to keep disk load balanced; these metrics quantify how well a
*measured* run achieved that. Used by the parity-rotation ablation and
available for any scenario result.
"""

from __future__ import annotations

import typing


def spread(utilizations: typing.Sequence[float]) -> float:
    """Max minus min utilization — 0 for perfect balance."""
    if not utilizations:
        raise ValueError("no utilizations given")
    return max(utilizations) - min(utilizations)


def imbalance_ratio(utilizations: typing.Sequence[float]) -> float:
    """Hottest disk relative to the mean — 1.0 for perfect balance.

    This is the quantity that matters for saturation: the array's
    sustainable throughput is set by its hottest disk, so an imbalance
    ratio of 1.3 wastes ~23 % of aggregate capacity.
    """
    if not utilizations:
        raise ValueError("no utilizations given")
    mean = sum(utilizations) / len(utilizations)
    if mean == 0:
        return 1.0
    return max(utilizations) / mean


def gini_coefficient(utilizations: typing.Sequence[float]) -> float:
    """Gini coefficient of the load distribution — 0 for perfect balance.

    A scale-free inequality measure: robust to the absolute load level,
    so runs at different rates are comparable.
    """
    values = sorted(utilizations)
    n = len(values)
    if n == 0:
        raise ValueError("no utilizations given")
    total = sum(values)
    if total == 0:
        return 0.0
    cumulative = 0.0
    for index, value in enumerate(values, start=1):
        cumulative += index * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def balance_report(utilizations: typing.Sequence[float]) -> dict:
    """All balance metrics in one dict."""
    return {
        "mean": sum(utilizations) / len(utilizations),
        "min": min(utilizations),
        "max": max(utilizations),
        "spread": spread(utilizations),
        "imbalance_ratio": imbalance_ratio(utilizations),
        "gini": gini_coefficient(utilizations),
    }
