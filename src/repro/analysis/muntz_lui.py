"""Our reconstruction of the Muntz & Lui analytic model (Figure 8-6).

Muntz & Lui (VLDB '90) model reconstruction time in a declustered array
with a fluid argument: every disk is a server with one fixed maximum
access rate ``mu`` (the paper uses the disk's *random* 4 KB rate,
46/s); reconstruction proceeds at whatever rate the busiest disk's
spare capacity allows; and work done for the sweep by user activity
("free" rebuilds from writes and piggybacked reads) reduces the
remaining work proportionally — i.e. disks are treated as
work-preserving servers.

Section 8.3 of Holland & Gibson explains why both assumptions fail on
real disks: reconstruction writes are sequential (far cheaper than
``1/mu``), and skipping already-rebuilt units does not speed a sweep
that must rotate past them anyway. We reproduce the model *with these
flaws intact* so the Figure 8-6 comparison shows the same qualitative
disagreement: the model is pessimistic on reconstruction time, and it
wrongly favors the redirecting algorithms.

Input conversion (Section 8.3): with user read fraction ``R`` and user
access rate ``lambda_u``, each user write is four disk accesses (two
reads, two writes), so the disk-access arrival rate is
``(4 - 3R) * lambda_u`` and the disk-access read fraction is
``(2 - R)/(4 - 3R)``.

Model state: ``f`` is the fraction of the failed disk rebuilt. With
per-disk fault-free access rate ``a = lambda_d / C`` split into reads
``a_r`` and writes ``a_w``:

- each surviving disk carries its own traffic ``a`` plus the
  ``alpha``-amplified share of on-the-fly reconstructions of lost
  reads (``alpha * a_r * (1 - f_redirect)``) and of lost-unit write
  handling (``alpha * a_w``);
- the replacement disk nominally carries redirected reads, direct user
  writes, and piggybacked writes (``replacement_load`` reports them) —
  but, as M&L assume and Holland & Gibson disprove, this extra work
  does *not* slow the replacement, so it never enters the sweep-rate
  constraint;
- sweep progress per unit costs ``alpha`` reads on each survivor and
  one write on the replacement, so the sweep rate is
  ``min((mu - L_surv)/alpha, mu)``;
- free rebuilds accrue at the rate user activity touches unbuilt lost
  units: writes always (user-writes family), reads too when
  piggybacking.

Reconstruction time is the integral of ``df / (df/dt)`` over
``f = 0..1``, evaluated numerically.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.recon.algorithms import ReconAlgorithm


@dataclass(frozen=True)
class MuntzLuiInputs:
    """Workload and array parameters for the analytic model."""

    num_disks: int                 # C
    stripe_size: int               # G
    user_rate_per_s: float         # lambda_u
    user_read_fraction: float      # R
    units_per_disk: int            # U (reconstruction work)
    max_disk_rate_per_s: float = 46.0  # mu: random 4 KB accesses/s

    @property
    def alpha(self) -> float:
        return (self.stripe_size - 1) / (self.num_disks - 1)

    @property
    def disk_access_rate_per_s(self) -> float:
        """The paper's (4-3R) conversion: user accesses → disk accesses."""
        return (4.0 - 3.0 * self.user_read_fraction) * self.user_rate_per_s

    @property
    def disk_read_fraction(self) -> float:
        """The paper's (2-R)/(4-3R) conversion."""
        return (2.0 - self.user_read_fraction) / (4.0 - 3.0 * self.user_read_fraction)


class MuntzLuiModel:
    """Numerically integrated fluid model of reconstruction time."""

    def __init__(self, inputs: MuntzLuiInputs, steps: int = 2000):
        if steps < 10:
            raise ValueError("use at least 10 integration steps")
        self.inputs = inputs
        self.steps = steps

    # ------------------------------------------------------------------
    # Load equations
    # ------------------------------------------------------------------
    def per_disk_rates(self) -> typing.Tuple[float, float, float]:
        """(total, read, write) fault-free disk accesses/sec per disk."""
        inputs = self.inputs
        a = inputs.disk_access_rate_per_s / inputs.num_disks
        a_r = a * inputs.disk_read_fraction
        return a, a_r, a - a_r

    def survivor_load(self, algorithm: ReconAlgorithm, f: float) -> float:
        """User-induced accesses/sec on each surviving disk at state ``f``."""
        inputs = self.inputs
        a, a_r, a_w = self.per_disk_rates()
        redirected = f if algorithm.redirect_reads else 0.0
        on_the_fly_reads = inputs.alpha * a_r * (1.0 - redirected)
        lost_write_reads = inputs.alpha * a_w
        return a + on_the_fly_reads + lost_write_reads

    def replacement_load(self, algorithm: ReconAlgorithm, f: float) -> float:
        """User-induced accesses/sec on the replacement disk at state ``f``."""
        _a, a_r, a_w = self.per_disk_rates()
        load = 0.0
        if algorithm.writes_to_replacement:
            load += a_w
        if algorithm.redirect_reads:
            load += f * a_r
        if algorithm.piggyback:
            load += (1.0 - f) * a_r
        return load

    def free_rebuild_rate(self, algorithm: ReconAlgorithm, f: float) -> float:
        """Units/sec rebuilt by user activity rather than the sweep."""
        _a, a_r, a_w = self.per_disk_rates()
        rate = 0.0
        if algorithm.writes_to_replacement:
            rate += a_w * (1.0 - f)
        if algorithm.piggyback:
            rate += a_r * (1.0 - f)
        # Rescale write accesses back to unit-touching events: each lost
        # write access corresponds to one unit of the failed disk.
        return rate

    def sweep_rate(self, algorithm: ReconAlgorithm, f: float) -> float:
        """Units/sec the sweep itself can rebuild at state ``f``.

        Two constraints: the busiest survivor's spare capacity divided
        by the per-unit read amplification ``alpha``, and the
        replacement's flat ``mu`` write ceiling. Faithfully to M&L — and
        this is exactly what Section 8.3 criticizes — user work sent to
        the replacement "does not increase this disk's average access
        time", so redirected reads and user writes do **not** reduce the
        replacement-side ceiling. This is why their model always favors
        the redirecting algorithms and is pessimistic about user-writes.
        """
        inputs = self.inputs
        mu = inputs.max_disk_rate_per_s
        survivor_spare = mu - self.survivor_load(algorithm, f)
        if survivor_spare <= 0.0:
            return 0.0
        return min(survivor_spare / max(inputs.alpha, 1e-12), mu)

    # ------------------------------------------------------------------
    # Reconstruction time
    # ------------------------------------------------------------------
    def reconstruction_time_s(self, algorithm: ReconAlgorithm) -> float:
        """Predicted reconstruction time in seconds (inf if saturated)."""
        inputs = self.inputs
        u = float(inputs.units_per_disk)
        total = 0.0
        df = 1.0 / self.steps
        for i in range(self.steps):
            f = (i + 0.5) * df
            sweep = self.sweep_rate(algorithm, f)
            if sweep <= 0.0:
                # A survivor or the replacement is saturated: the model's
                # 100%-utilization boundary. Free rebuilds cannot happen
                # either — saturated disks are not serving user writes.
                return float("inf")
            rate = sweep + self.free_rebuild_rate(algorithm, f)
            total += (u * df) / rate
        return total

    def minimum_possible_time_s(self) -> float:
        """The model's floor: an idle array writing at ``mu`` accesses/s.

        Holland & Gibson point out this is over 1700 s for the 0661 at
        mu = 46/s — more than three times their fastest *simulated*
        reconstruction, because real sequential writes are much faster
        than random ones.
        """
        return self.inputs.units_per_disk / self.inputs.max_disk_rate_per_s
