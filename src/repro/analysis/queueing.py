"""Small queueing-theory helpers used for sanity checks.

These are not part of the paper's methodology (its whole point is that
simple service-time models mislead), but they give tests an independent
yardstick: a disk fed Poisson arrivals below saturation should show
mean response times in the M/M/1 ballpark, and utilization must equal
offered load.
"""

from __future__ import annotations


def offered_load(arrival_rate_per_s: float, mean_service_ms: float) -> float:
    """Utilization ``rho`` of a single server."""
    if arrival_rate_per_s < 0 or mean_service_ms < 0:
        raise ValueError("rates and service times must be non-negative")
    return arrival_rate_per_s * mean_service_ms / 1000.0


def mm1_response_time_ms(arrival_rate_per_s: float, mean_service_ms: float) -> float:
    """Mean response time of an M/M/1 queue, in ms.

    Raises
    ------
    ValueError
        If the queue is saturated (``rho >= 1``).
    """
    rho = offered_load(arrival_rate_per_s, mean_service_ms)
    if rho >= 1.0:
        raise ValueError(f"queue saturated: rho = {rho:.3f}")
    return mean_service_ms / (1.0 - rho)
