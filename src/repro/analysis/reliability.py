"""Data reliability: mean time to data loss (MTTDL) vs declustering.

Section 2 of the paper frames the C/G trade-off partly in reliability
terms: larger C means more disks that can fail during a repair, and
Section 8 notes that "the mean time until data loss is inversely
proportional to mean repair time" [Patterson88]. This module implements
the standard single-failure-correcting Markov approximation:

    MTTDL ≈ MTTF^2 / (C * (C - 1) * MTTR)

where MTTF is one disk's mean time to failure and MTTR is the mean
repair time — which in a continuously-operating array is dominated by
reconstruction time, the quantity this repository simulates. Combining
a simulated reconstruction time with this formula turns the paper's
Figure 8 results into the reliability statement operators actually care
about: how much MTTDL does a given parity overhead buy?

Dual-syndrome (P+Q) arrays extend the Markov chain by one state: data
is lost only when a *third* failure lands while two repairs are in
flight. With failure rate ``λ = 1/MTTF`` per disk and repair rate
``μ = 1/MTTR``, and in the fast-repair regime ``μ >> C·λ`` the chain

    all-good --Cλ--> one-failed --(C-1)λ--> two-failed --(C-2)λ--> loss

has the standard approximation

    MTTDL ≈ MTTF^(t+1) / (C · (C-1) · ... · (C-t) · MTTR^t)

for a ``t``-failure-tolerant array; ``t = 1`` recovers the Patterson
formula above and ``t = 2`` is the two-fault chain the dual-syndrome
campaign cross-checks against.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

HOURS_PER_YEAR = 24.0 * 365.0


@dataclass(frozen=True)
class ReliabilityInputs:
    """Inputs to the MTTDL approximation."""

    num_disks: int          # C
    disk_mttf_hours: float  # per-disk mean time to failure
    repair_hours: float     # mean repair (≈ reconstruction) time
    fault_tolerance: int = 1  # concurrent failures survived (syndromes)

    def __post_init__(self):
        if self.num_disks < 2:
            raise ValueError("an array needs at least two disks")
        if self.disk_mttf_hours <= 0 or self.repair_hours <= 0:
            raise ValueError("MTTF and repair time must be positive")
        if not 1 <= self.fault_tolerance < self.num_disks:
            raise ValueError(
                f"fault tolerance {self.fault_tolerance} outside "
                f"[1, {self.num_disks})"
            )


def mttdl_hours(inputs: ReliabilityInputs) -> float:
    """Mean time to data loss of a ``t``-failure-tolerant array.

    The ``t + 1``-state Markov chain approximation (fast repairs):
    ``MTTF^(t+1) / (C (C-1) ... (C-t) MTTR^t)``. ``t = 1`` is the
    classic single-failure formula; ``t = 2`` the P+Q two-fault chain.
    """
    c = inputs.num_disks
    t = inputs.fault_tolerance
    slots = 1.0
    for i in range(t + 1):
        slots *= c - i
    return inputs.disk_mttf_hours ** (t + 1) / (
        slots * inputs.repair_hours ** t
    )


def mttdl_years(inputs: ReliabilityInputs) -> float:
    """MTTDL in years."""
    return mttdl_hours(inputs) / HOURS_PER_YEAR


def data_loss_probability(inputs: ReliabilityInputs, mission_hours: float) -> float:
    """Probability of data loss within a mission time.

    Uses the exponential approximation ``1 - exp(-t / MTTDL)``, valid
    when repairs are fast relative to failures (the regime the paper's
    short reconstruction times are designed to maintain).
    """
    import math

    if mission_hours < 0:
        raise ValueError("mission time must be non-negative")
    return 1.0 - math.exp(-mission_hours / mttdl_hours(inputs))


def mttdl_improvement(
    baseline_repair_hours: float,
    improved_repair_hours: float,
) -> float:
    """MTTDL ratio achieved by shortening repairs (same C and MTTF).

    MTTDL is inversely proportional to repair time, so the ratio is
    simply ``baseline / improved`` — e.g. the paper's "alpha = 0.15
    reconstructs about twice as fast as RAID 5" doubles MTTDL.
    """
    if baseline_repair_hours <= 0 or improved_repair_hours <= 0:
        raise ValueError("repair times must be positive")
    return baseline_repair_hours / improved_repair_hours


def reliability_table(
    repair_times_by_label: typing.Mapping[str, float],
    num_disks: int = 21,
    disk_mttf_hours: float = 150_000.0,
    mission_years: float = 10.0,
) -> typing.List[dict]:
    """MTTDL rows for a set of measured repair times (in hours).

    The default MTTF (150k hours) matches drives of the 0661's class.
    """
    rows = []
    for label, repair_hours in repair_times_by_label.items():
        inputs = ReliabilityInputs(
            num_disks=num_disks,
            disk_mttf_hours=disk_mttf_hours,
            repair_hours=repair_hours,
        )
        rows.append(
            {
                "label": label,
                "repair_hours": repair_hours,
                "mttdl_years": mttdl_years(inputs),
                "loss_probability_mission": data_loss_probability(
                    inputs, mission_years * HOURS_PER_YEAR
                ),
            }
        )
    return rows
