"""The RAID striping driver: user requests → physical disk accesses.

This package is the reproduction of raidSim's Sprite striping driver.
:class:`ArrayController` owns the disks, the parity layout, the fault
state, and the per-stripe locks, and translates each user read/write
into the paper's access sequences:

================================  =====================================
Situation                         Disk accesses
================================  =====================================
fault-free read                   1 read
fault-free write (G > 3)          2 reads + 2 writes (read-modify-write)
fault-free write (G = 3)          1 read + 2 writes (small-stripe opt)
full-stripe aligned write         G writes (large-write optimization)
degraded read of failed unit      G-1 reads (on-the-fly reconstruction)
degraded write, data lost         G-2 reads + 1 parity write (folding)
degraded write, parity lost       1 write
reconstruct-write (user-writes+)  G-2 reads + data & parity writes
redirected read                   1 read of the replacement
================================  =====================================

An optional :class:`DataStore` carries real 64-bit contents for every
unit plus parity, so integration tests can fail a disk, reconstruct it,
and verify bit-exact recovery end to end.
"""

from repro.array.addressing import ArrayAddressing
from repro.array.controller import ArrayController, ControllerStats
from repro.array.datastore import DataStore
from repro.array.faults import (
    ArrayFaults,
    DataLossError,
    DataLossEvent,
    DiskMode,
)
from repro.array.locks import StripeLockTable
from repro.array.requests import UserRequest
from repro.array.scrubber import ParityScrubber, ScrubReport
from repro.array.sparing import RepairRecord, SparePool

__all__ = [
    "ArrayAddressing",
    "ArrayController",
    "ArrayFaults",
    "ControllerStats",
    "DataLossError",
    "DataLossEvent",
    "DataStore",
    "DiskMode",
    "ParityScrubber",
    "RepairRecord",
    "ScrubReport",
    "SparePool",
    "StripeLockTable",
    "UserRequest",
]
