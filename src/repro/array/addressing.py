"""Array addressing: stripe units ⇄ disk sectors, and mapped capacity.

Combines a parity layout with a disk spec and a stripe-unit size. The
layout's full table tiles down the disks; only whole tables are mapped
(the remainder at the end of each disk, always under one table depth,
is left unallocated, as a real driver would reserve it).
"""

from __future__ import annotations


from dataclasses import dataclass
from functools import cached_property

from repro.disk.specs import DiskSpec
from repro.layout.base import ParityLayout, UnitAddress


@dataclass(frozen=True)
class ArrayAddressing:
    """Address arithmetic for one array configuration.

    The capacity figures are ``cached_property`` rather than
    ``property``: the controller bounds-checks every submitted request
    against ``num_data_units``, whose plain-property spelling walked a
    five-deep recompute chain per call. ``cached_property`` writes the
    instance ``__dict__`` directly, which sidesteps the frozen
    dataclass's ``__setattr__`` — and is correct here because every
    input field is itself immutable.
    """

    layout: ParityLayout
    spec: DiskSpec
    stripe_unit_bytes: int = 4096

    def __post_init__(self):
        if self.stripe_unit_bytes % self.spec.bytes_per_sector != 0:
            raise ValueError(
                f"stripe unit of {self.stripe_unit_bytes} B is not a whole "
                f"number of {self.spec.bytes_per_sector} B sectors"
            )
        if self.units_per_disk < 1:
            raise ValueError(
                f"disk {self.spec.name} holds no complete stripe units"
            )
        if self.tables_per_disk < 1:
            raise ValueError(
                f"disk {self.spec.name} ({self.units_per_disk} units) cannot "
                f"hold one full layout table (depth {self.layout.table_depth})"
            )

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @cached_property
    def sectors_per_unit(self) -> int:
        return self.stripe_unit_bytes // self.spec.bytes_per_sector

    @cached_property
    def units_per_disk(self) -> int:
        """Raw stripe-unit slots per disk."""
        return self.spec.total_sectors // self.sectors_per_unit

    @cached_property
    def tables_per_disk(self) -> int:
        return self.units_per_disk // self.layout.table_depth

    @cached_property
    def mapped_units_per_disk(self) -> int:
        """Unit slots actually mapped to parity stripes (whole tables)."""
        return self.tables_per_disk * self.layout.table_depth

    @cached_property
    def num_stripes(self) -> int:
        """Complete parity stripes in the array."""
        return self.tables_per_disk * self.layout.stripes_per_table

    @cached_property
    def num_data_units(self) -> int:
        """Addressable logical data units."""
        return self.num_stripes * self.layout.data_units_per_stripe

    @cached_property
    def data_capacity_bytes(self) -> int:
        return self.num_data_units * self.stripe_unit_bytes

    # ------------------------------------------------------------------
    # Address conversion
    # ------------------------------------------------------------------
    def unit_to_sector(self, address: UnitAddress) -> int:
        """Start sector of a stripe-unit slot on its disk."""
        if address.offset >= self.mapped_units_per_disk:
            raise ValueError(
                f"offset {address.offset} beyond mapped capacity "
                f"{self.mapped_units_per_disk}"
            )
        return address.offset * self.sectors_per_unit

    def logical_unit_address(self, logical_unit: int) -> UnitAddress:
        """Physical slot of a logical data unit, bounds-checked."""
        if not 0 <= logical_unit < self.num_data_units:
            raise ValueError(
                f"logical unit {logical_unit} outside 0..{self.num_data_units - 1}"
            )
        return self.layout.logical_to_physical(logical_unit)
