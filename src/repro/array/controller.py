"""The array controller: the striping driver of the reproduction.

Translates user requests into physical disk accesses under the current
fault state and reconstruction algorithm, maintaining parity
consistency through per-stripe locks. See the package docstring for the
full access-sequence table.

Access paths are labeled so tests and experiments can account for every
disk access the paper's driver would issue:

- ``read`` / ``redirected-read`` / ``on-the-fly-read``
- ``rmw-write`` / ``small-stripe-write`` / ``large-write``
- ``fold-write`` (data lost, parity absorbs the new value)
- ``reconstruct-write`` (user-writes algorithms: data sent to the
  replacement, parity rebuilt from surviving peers)
- ``data-only-write`` (parity lost and not yet rebuilt)
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.array.addressing import ArrayAddressing
from repro.array.datastore import DataStore
from repro.array.faults import ArrayFaults
from repro.array.locks import StripeLockTable
from repro.array.requests import UserRequest
from repro.disk.drive import KIND_USER, Disk
from repro.layout.base import UnitAddress
from repro.recon.algorithms import BASELINE, ReconAlgorithm
from repro.recon.status import ReconStatus

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Environment


@dataclass
class ControllerStats:
    """Counts of user operations by access path."""

    user_reads: int = 0
    user_writes: int = 0
    by_path: typing.Dict[str, int] = field(default_factory=dict)
    piggyback_writes: int = 0
    straddled_accesses: int = 0

    def record_path(self, path: str) -> None:
        self.by_path[path] = self.by_path.get(path, 0) + 1


class ArrayController:
    """Owns the disks, layout, fault state, and request translation."""

    def __init__(
        self,
        env: "Environment",
        addressing: ArrayAddressing,
        policy: str = "cvscan",
        algorithm: ReconAlgorithm = BASELINE,
        with_datastore: bool = False,
        disk_factory: typing.Optional[typing.Callable[..., Disk]] = None,
    ):
        self.env = env
        self.addressing = addressing
        self.layout = addressing.layout
        self.spec = addressing.spec
        self.policy = policy
        self.algorithm = algorithm
        self._disk_factory = disk_factory if disk_factory is not None else Disk
        self.disks: typing.List[Disk] = [
            self._disk_factory(env, addressing.spec, disk_id=d, policy=policy)
            for d in range(self.layout.num_disks)
        ]
        self.faults = ArrayFaults(self.layout.num_disks)
        self.locks = StripeLockTable(env)
        self.datastore: typing.Optional[DataStore] = (
            DataStore(addressing) if with_datastore else None
        )
        self.recon_status: typing.Optional[ReconStatus] = None
        self.stats = ControllerStats()

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Mark a disk failed; its contents become unreadable."""
        self.faults.fail(disk)
        if self.datastore is not None:
            self.datastore.poison_disk(disk)
        self.recon_status = None

    def install_replacement(self) -> ReconStatus:
        """Install a blank replacement in the failed slot.

        Returns the :class:`ReconStatus` a reconstructor will drive.
        """
        self.faults.install_replacement()
        failed = self.faults.failed_disk
        self.disks[failed] = self._disk_factory(
            self.env, self.spec, disk_id=failed, policy=self.policy
        )
        if self.datastore is not None:
            self.datastore.clear_disk(failed)
        self.recon_status = ReconStatus(
            self.env, total_units=self.addressing.mapped_units_per_disk
        )
        return self.recon_status

    def finish_repair(self) -> None:
        """Return to fault-free operation once every unit is rebuilt."""
        if self.recon_status is None or not self.recon_status.all_built:
            raise RuntimeError("finish_repair before reconstruction completed")
        self.faults.repair_complete()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: UserRequest):
        """Begin servicing a user request; returns its completion event."""
        if request.logical_unit + request.num_units > self.addressing.num_data_units:
            raise ValueError(
                f"request [{request.logical_unit}, +{request.num_units}) exceeds "
                f"data space of {self.addressing.num_data_units} units"
            )
        request.done = self.env.event()
        request.submit_ms = self.env.now
        self.env.process(self._handle(request), name="user-request")
        return request.done

    def read(self, logical_unit: int, num_units: int = 1):
        """Convenience: submit a read, returning its completion event."""
        request = UserRequest(logical_unit=logical_unit, is_write=False, num_units=num_units)
        return self.submit(request)

    def write(self, logical_unit: int, values: typing.Optional[typing.List[int]] = None,
              num_units: int = 1):
        """Convenience: submit a write, returning its completion event."""
        if values is not None:
            num_units = len(values)
        request = UserRequest(
            logical_unit=logical_unit, is_write=True, num_units=num_units, values=values
        )
        return self.submit(request)

    # ------------------------------------------------------------------
    # Request decomposition
    # ------------------------------------------------------------------
    def _handle(self, request: UserRequest):
        if request.is_write:
            self.stats.user_writes += 1
            subops = self._plan_write(request)
        else:
            self.stats.user_reads += 1
            request.read_values = [0] * request.num_units
            subops = [
                self.env.process(self._read_unit(request, i), name="read-unit")
                for i in range(request.num_units)
            ]
        if len(subops) == 1:
            yield subops[0]
        else:
            yield self.env.all_of(subops)
        request.complete_ms = self.env.now
        request.done.succeed(request)

    def _plan_write(self, request: UserRequest):
        """Split a write into large-write groups and per-unit updates."""
        g_data = self.layout.data_units_per_stripe
        subops = []
        index = 0
        while index < request.num_units:
            logical = request.logical_unit + index
            at_boundary = logical % g_data == 0
            remaining = request.num_units - index
            stripe = self.layout.stripe_of_logical(logical)
            if (
                self.layout.supports_large_write
                and at_boundary
                and remaining >= g_data
                and self._stripe_is_healthy(stripe)
            ):
                values = self._write_values(request, index, g_data)
                subops.append(
                    self.env.process(
                        self._large_write(request, stripe, values), name="large-write"
                    )
                )
                index += g_data
            else:
                value = self._write_values(request, index, 1)[0]
                subops.append(
                    self.env.process(
                        self._write_unit(request, logical, value), name="write-unit"
                    )
                )
                index += 1
        return subops

    def _write_values(self, request: UserRequest, index: int, count: int) -> typing.List[int]:
        if request.values is not None:
            return list(request.values[index : index + count])
        return [0] * count

    def _stripe_is_healthy(self, stripe: int) -> bool:
        """True if no unit of the stripe lives on a failed, unbuilt slot."""
        if self.faults.fault_free:
            return True
        failed = self.faults.failed_disk
        for address in self.layout.stripe_units(stripe):
            if address.disk == failed and not self._unit_built(address.offset):
                return False
        return True

    def _unit_built(self, offset: int) -> bool:
        return self.recon_status is not None and self.recon_status.is_built(offset)

    def _unit_live(self, offset: int) -> bool:
        """A failed-slot unit counts as live once rebuilt.

        Under strict replacement isolation, rebuilt units stay off-limits
        to user work until the whole repair is done.
        """
        if not self._unit_built(offset):
            return False
        if not self.algorithm.isolate_replacement:
            return True
        return self.recon_status.all_built


    # ------------------------------------------------------------------
    # Disk access helpers
    # ------------------------------------------------------------------
    def _disk_access(self, address: UnitAddress, is_write: bool, kind: str = KIND_USER):
        """Issue one stripe-unit-sized access; returns the disk event.

        An access can legitimately land on a failed, unreplaced disk
        when the operation was planned just before the failure (the
        paper's driver would see an I/O error there). The transfer is
        still timed on the dead spindle and counted in
        ``stats.straddled_accesses``; its data is lost, which is safe
        because parity arithmetic uses values sampled before the
        failure.
        """
        failed = self.faults.failed_disk
        if address.disk == failed and not self.faults.replacement_installed:
            self.stats.straddled_accesses += 1
        sector = self.addressing.unit_to_sector(address)
        return self.disks[address.disk].access(
            sector, self.addressing.sectors_per_unit, is_write=is_write, kind=kind
        )

    def _surviving_peers(self, stripe: int, exclude: UnitAddress) -> typing.List[UnitAddress]:
        """All stripe units except ``exclude`` (data peers and parity)."""
        return [u for u in self.layout.stripe_units(stripe) if u != exclude]

    def _data_peers(self, stripe: int, exclude: UnitAddress) -> typing.List[UnitAddress]:
        """Data units of the stripe other than ``exclude``."""
        return [
            self.layout.data_unit(stripe, j)
            for j in range(self.layout.data_units_per_stripe)
            if self.layout.data_unit(stripe, j) != exclude
        ]

    def _ds_read(self, address: UnitAddress) -> int:
        if self.datastore is None:
            return 0
        return self.datastore.read_unit(address.disk, address.offset)

    def _ds_write(self, address: UnitAddress, value: int) -> None:
        if self.datastore is not None:
            self.datastore.write_unit(address.disk, address.offset, value)

    @staticmethod
    def _xor(values: typing.Iterable[int]) -> int:
        result = 0
        for value in values:
            result ^= value
        return result

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    def _read_unit(self, request: UserRequest, unit_index: int):
        logical = request.logical_unit + unit_index
        address = self.addressing.logical_unit_address(logical)
        failed = self.faults.failed_disk
        if address.disk != failed:
            target = address
            if self.layout.stripe_size == 2:
                # Mirrored reads balance across the two copies: take the
                # replica whose disk has the shorter queue (never the
                # failed slot — its copy may not be rebuilt yet).
                mirror = self.layout.parity_unit(self.layout.stripe_of_logical(logical))
                if (
                    mirror.disk != failed
                    and self.disks[mirror.disk].queue_length
                    < self.disks[target.disk].queue_length
                ):
                    target = mirror
            yield self._disk_access(target, is_write=False)
            request.read_values[unit_index] = self._ds_read(target)
            request.paths.append("read")
            self.stats.record_path("read")
            return
        if self.algorithm.redirect_reads and self._unit_built(address.offset):
            # Redirection of reads: the rebuilt unit lives on the replacement.
            yield self._disk_access(address, is_write=False)
            request.read_values[unit_index] = self._ds_read(address)
            request.paths.append("redirected-read")
            self.stats.record_path("redirected-read")
            return
        # On-the-fly reconstruction: XOR of all surviving stripe units.
        stripe = self.layout.stripe_of_logical(logical)
        yield self.locks.acquire(stripe)
        peers = self._surviving_peers(stripe, address)
        value = self._xor(self._ds_read(peer) for peer in peers)
        yield self.env.all_of([self._disk_access(peer, is_write=False) for peer in peers])
        request.read_values[unit_index] = value
        request.paths.append("on-the-fly-read")
        self.stats.record_path("on-the-fly-read")
        if (
            self.algorithm.piggyback
            and self.faults.replacement_installed
            and not self.recon_status.is_built(address.offset)
            and not self.recon_status.is_claimed(address.offset)
        ):
            # Piggybacking of writes: store the recovered unit on the
            # replacement while still holding the stripe lock. The user
            # response is not delayed — it completed above; only the
            # stripe stays locked for the piggyback write's duration.
            self.stats.piggyback_writes += 1
            self.env.process(
                self._piggyback_write(stripe, address, value), name="piggyback"
            )
        else:
            self.locks.release(stripe)

    def _piggyback_write(self, stripe: int, address: UnitAddress, value: int):
        yield self._disk_access(address, is_write=True)
        self._ds_write(address, value)
        self.recon_status.mark_built(address.offset)
        self.locks.release(stripe)

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _write_unit(self, request: UserRequest, logical: int, value: int):
        address = self.addressing.logical_unit_address(logical)
        stripe = self.layout.stripe_of_logical(logical)
        parity = self.layout.parity_unit(stripe)
        yield self.locks.acquire(stripe)
        try:
            failed = self.faults.failed_disk
            on_failed_data = address.disk == failed
            on_failed_parity = parity.disk == failed
            data_ok = not on_failed_data or self._unit_live(address.offset)
            parity_ok = not on_failed_parity or self._unit_live(parity.offset)
            if data_ok and parity_ok:
                peers_readable = all(
                    peer.disk != failed or self._unit_live(peer.offset)
                    for peer in self._data_peers(stripe, address)
                )
                if self.layout.stripe_size == 3 and peers_readable:
                    path = yield from self._small_stripe_write(stripe, address, parity, value)
                else:
                    path = yield from self._read_modify_write(address, parity, value)
            elif on_failed_data:
                if self.faults.replacement_installed and self.algorithm.writes_to_replacement:
                    path = yield from self._reconstruct_write(stripe, address, parity, value)
                else:
                    # Under strict isolation the unit may be rebuilt but
                    # about to go stale: dirty it *before* the fold so
                    # reconstruction cannot declare completion meanwhile.
                    if self.recon_status is not None:
                        self.recon_status.mark_dirty(address.offset)
                    path = yield from self._fold_write(stripe, address, parity, value)
            else:
                if self.recon_status is not None:
                    self.recon_status.mark_dirty(parity.offset)
                path = yield from self._data_only_write(address, value)
        finally:
            self.locks.release(stripe)
        request.paths.append(path)
        self.stats.record_path(path)

    def _read_modify_write(self, address: UnitAddress, parity: UnitAddress, value: int):
        """The 4-access parity update: 2 pre-reads then 2 writes."""
        old_data = self._ds_read(address)
        old_parity = self._ds_read(parity)
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=False),
                self._disk_access(parity, is_write=False),
            ]
        )
        new_parity = old_parity ^ old_data ^ value
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(parity, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(parity, new_parity)
        return "rmw-write"

    # Note on mirroring: G=2 stripes have one data unit, so the parity
    # unit is a byte-identical copy and *every* aligned write is a
    # full-stripe write — the large-write path below gives mirrored
    # writes their two-access, no-pre-read behaviour for free, and G=2
    # declustered layouts realize Copeland & Keller's interleaved
    # declustering (see tests/array/test_mirroring.py).

    def _small_stripe_write(self, stripe: int, address: UnitAddress,
                            parity: UnitAddress, value: int):
        """G=3 optimization: read the *other* data unit, then 2 writes.

        With only two data units per stripe the new parity depends on
        the other unit and the new value alone, saving one access
        (Section 6's alpha = 0.1 exception).
        """
        other = self._data_peers(stripe, address)[0]
        other_value = self._ds_read(other)
        yield self._disk_access(other, is_write=False)
        new_parity = other_value ^ value
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(parity, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(parity, new_parity)
        return "small-stripe-write"

    def _reconstruct_write(self, stripe: int, address: UnitAddress,
                           parity: UnitAddress, value: int):
        """Send a lost unit's new data straight to the replacement.

        Parity must be rebuilt from the surviving data peers, after
        which the unit is up to date on the replacement and needs no
        sweep cycle (the user-writes family's "free reconstruction").
        """
        peers = self._data_peers(stripe, address)
        peer_values = [self._ds_read(peer) for peer in peers]
        if peers:
            yield self.env.all_of(
                [self._disk_access(peer, is_write=False) for peer in peers]
            )
        new_parity = self._xor(peer_values) ^ value
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(parity, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(parity, new_parity)
        self.recon_status.mark_built(address.offset)
        return "reconstruct-write"

    def _fold_write(self, stripe: int, address: UnitAddress,
                    parity: UnitAddress, value: int):
        """Fold a write to a lost unit into its parity unit (baseline).

        After the fold, on-the-fly reconstruction of the lost unit
        yields the *new* data, so no information is lost — but the
        replacement gains nothing.
        """
        peers = self._data_peers(stripe, address)
        peer_values = [self._ds_read(peer) for peer in peers]
        if peers:
            yield self.env.all_of(
                [self._disk_access(peer, is_write=False) for peer in peers]
            )
        new_parity = self._xor(peer_values) ^ value
        yield self._disk_access(parity, is_write=True)
        self._ds_write(parity, new_parity)
        return "fold-write"

    def _data_only_write(self, address: UnitAddress, value: int):
        """Parity is lost and unrebuilt: just write the data (1 access).

        The sweep recomputes the parity unit from current data when it
        reaches it, so skipping the parity update is safe.
        """
        yield self._disk_access(address, is_write=True)
        self._ds_write(address, value)
        return "data-only-write"

    def _large_write(self, request: UserRequest, stripe: int, values: typing.List[int]):
        """Full-stripe aligned write: G writes, no pre-reads (criterion 5)."""
        yield self.locks.acquire(stripe)
        try:
            accesses = []
            for j in range(self.layout.data_units_per_stripe):
                address = self.layout.data_unit(stripe, j)
                accesses.append(self._disk_access(address, is_write=True))
                self._ds_write(address, values[j])
            parity = self.layout.parity_unit(stripe)
            accesses.append(self._disk_access(parity, is_write=True))
            self._ds_write(parity, self._xor(values))
            yield self.env.all_of(accesses)
        finally:
            self.locks.release(stripe)
        request.paths.append("large-write")
        self.stats.record_path("large-write")
