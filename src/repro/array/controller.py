"""The array controller: the striping driver of the reproduction.

Translates user requests into physical disk accesses under the current
fault state and reconstruction algorithm, maintaining parity
consistency through per-stripe locks. See the package docstring for the
full access-sequence table.

Access paths are labeled so tests and experiments can account for every
disk access the paper's driver would issue:

- ``read`` / ``redirected-read`` / ``on-the-fly-read``
- ``rmw-write`` / ``small-stripe-write`` / ``large-write``
- ``fold-write`` (data lost, parity absorbs the new value)
- ``reconstruct-write`` (user-writes algorithms: data sent to the
  replacement, parity rebuilt from surviving peers)
- ``data-only-write`` (parity lost and not yet rebuilt)

Dual-syndrome (P+Q) layouts add their own labels:

- ``double-degraded-read`` (two stripe units dead; GF(2^64) decode)
- ``pq-rmw-write`` (6-access healthy update: pre-read and rewrite
  data, P, and Q)
- ``pq-degraded-write`` / ``pq-fold-write`` / ``pq-reconstruct-write``
  (a check or the target is dead: decode survivors, rewrite what
  lives)

Single-syndrome arrays run the exact historical code paths — the dual
dispatch is a single branch on ``layout.num_syndromes``.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.array import syndromes as gf
from repro.array.addressing import ArrayAddressing
from repro.array.datastore import DataStore
from repro.array.faults import ArrayFaults
from repro.array.locks import StripeLockTable
from repro.array.requests import UserRequest
from repro.disk.drive import KIND_USER, Disk
from repro.faults.log import (
    DATA_LOSS,
    DATA_LOSS_ACCESS,
    DISK_FAILURE,
    ESCALATION,
    FOREGROUND_REPAIR,
    MEDIA_ERROR,
    RETRY,
    RETRY_EXHAUSTED,
    TRANSIENT_FAULT,
    FaultLog,
)
from repro.faults.profile import FaultProfile
from repro.faults.retry import RetryPolicy
from repro.faults.state import ERROR_TIMEOUT, DiskFaultState
from repro.layout.base import PARITY_ROLE, UnitAddress
from repro.metrics.registry import MetricsRegistry
from repro.recon.algorithms import BASELINE, ReconAlgorithm
from repro.recon.status import ReconStatus
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Environment


@dataclass
class ControllerStats:
    """Counts of user operations by access path."""

    user_reads: int = 0
    user_writes: int = 0
    by_path: typing.Dict[str, int] = field(default_factory=dict)
    piggyback_writes: int = 0
    straddled_accesses: int = 0

    def record_path(self, path: str) -> None:
        self.by_path[path] = self.by_path.get(path, 0) + 1


class ArrayController:
    """Owns the disks, layout, fault state, and request translation."""

    def __init__(
        self,
        env: "Environment",
        addressing: ArrayAddressing,
        policy: str = "cvscan",
        algorithm: ReconAlgorithm = BASELINE,
        with_datastore: bool = False,
        disk_factory: typing.Optional[typing.Callable[..., Disk]] = None,
        fault_profile: typing.Optional[FaultProfile] = None,
        retry_policy: typing.Optional[RetryPolicy] = None,
        fault_log: typing.Optional[FaultLog] = None,
        on_disk_failure: typing.Optional[typing.Callable[[int], None]] = None,
        metrics: typing.Optional[MetricsRegistry] = None,
        measure_since_ms: float = 0.0,
        lock_monitor=None,
    ):
        self.env = env
        self.addressing = addressing
        self.layout = addressing.layout
        self.spec = addressing.spec
        self.policy = policy
        self.algorithm = algorithm
        # Observability is strictly passive: the registry only records
        # what already happened (latencies, queue depths), and the
        # measurement boundary only affects what the windowed stats
        # count — neither changes a single simulation event. The
        # boundary applies to replacements too, which is why the
        # controller owns it rather than the runner.
        self.metrics = metrics
        self.measure_since_ms = measure_since_ms
        # Per-request latency recording is the hottest metrics path, so
        # the two user-class histograms are resolved once up front
        # (empty ones are omitted from serialization).
        self._read_latency = self._write_latency = None
        if metrics is not None:
            self._read_latency = metrics.latency_histogram("user-read")
            self._write_latency = metrics.latency_histogram("user-write")
        self._disk_factory = disk_factory if disk_factory is not None else Disk
        self.disks: typing.List[Disk] = [
            self._disk_factory(env, addressing.spec, disk_id=d, policy=policy)
            for d in range(self.layout.num_disks)
        ]
        for disk in self.disks:
            self._instrument_disk(disk)
        self.faults = ArrayFaults(
            self.layout.num_disks, tolerance=self.layout.num_syndromes
        )
        # Like metrics, the lock monitor (simsan) is purely
        # observational; None outside sanitizer runs.
        self.locks = StripeLockTable(env, monitor=lock_monitor)
        self.datastore: typing.Optional[DataStore] = (
            DataStore(addressing) if with_datastore else None
        )
        #: The earliest active failure's rebuild state (historical
        #: single-failure API); per-disk states live in
        #: :attr:`recon_statuses` so dual-syndrome arrays can run two
        #: rebuilds at once.
        self.recon_status: typing.Optional[ReconStatus] = None
        self.recon_statuses: typing.Dict[int, ReconStatus] = {}
        self.stats = ControllerStats()
        # Fault injection is strictly opt-in: with no profile, every
        # access takes the exact legacy path (no extra RNG draws, no
        # wrapper processes, no timing or event-ordering changes).
        self.fault_profile = fault_profile
        self.retry_policy = retry_policy if retry_policy is not None else (
            RetryPolicy() if fault_profile is not None else None
        )
        self.fault_log = fault_log if fault_log is not None else (
            FaultLog() if fault_profile is not None else None
        )
        #: Callback ``(disk_id) -> None`` for escalated failures; a
        #: FaultInjector installs itself here so threshold-crossing
        #: disks take the same spare-pool path as crashed ones.
        self.on_disk_failure = on_disk_failure
        self._fault_streams = (
            RandomStreams(fault_profile.seed).spawn("disk-fault-states")
            if fault_profile is not None
            else None
        )
        if fault_profile is not None:
            for disk in self.disks:
                self._attach_fault_state(disk)

    @property
    def _fault_enabled(self) -> bool:
        return self.fault_profile is not None

    def _instrument_disk(self, disk: Disk) -> None:
        """Apply the measurement boundary (and any gauges) to a disk.

        Runs for every disk the controller creates — including
        replacements — so windowed utilization and queue-depth series
        stay consistent across a repair.
        """
        disk.stats.busy_window.since_ms = self.measure_since_ms
        if self.metrics is not None:
            disk.queue_gauge = self.metrics.queue_gauge(disk.disk_id)

    def _attach_fault_state(self, disk: Disk) -> None:
        """Give ``disk`` a fresh fault model on its slot's RNG stream."""
        disk.fault_state = DiskFaultState(
            self.fault_profile,
            self._fault_streams.stream(f"disk-{disk.disk_id}"),
            disk_id=disk.disk_id,
        )

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Mark a disk failed; its contents become unreadable.

        The first concurrent failure is the repairable one. A failure
        beyond the array's redundancy raises
        :class:`~repro.array.faults.DataLossError` — unless fault
        injection is enabled, in which case it is recorded as a graceful
        :class:`~repro.array.faults.DataLossEvent`: the array enters a
        degraded terminal state and user requests touching
        doubly-exposed stripes take the accounted ``data-loss`` path
        instead of crashing the simulation.
        """
        if not self.faults.can_absorb and self._fault_enabled:
            event = self.faults.fail(disk, allow_data_loss=True)
            event.at_ms = self.env.now
            if self.datastore is not None:
                self.datastore.poison_disk(disk)
            event.exposed_stripes = tuple(
                stripe
                for stripe in range(self.addressing.num_stripes)
                if self._stripe_data_lost(stripe)
            )
            self.fault_log.record(
                DATA_LOSS,
                self.env.now,
                disk=disk,
                detail=(
                    f"{len(event.exposed_stripes)} stripes doubly exposed; "
                    f"concurrent failures {event.all_failed_disks}"
                ),
            )
            return
        self.faults.fail(disk)
        if self.fault_log is not None:
            self.fault_log.record(DISK_FAILURE, self.env.now, disk=disk)
        if self.datastore is not None:
            self.datastore.poison_disk(disk)
        self.recon_statuses.pop(disk, None)
        self._sync_recon_status()

    def _sync_recon_status(self) -> None:
        """Point the historical ``recon_status`` at the earliest failure."""
        primary = self.faults.failed_disk
        self.recon_status = (
            self.recon_statuses.get(primary) if primary is not None else None
        )

    def install_replacement(self, disk: typing.Optional[int] = None) -> ReconStatus:
        """Install a blank replacement in a failed slot.

        ``disk`` defaults to the earliest active failure (the historical
        single-failure contract). Returns the :class:`ReconStatus` a
        reconstructor will drive; dual-syndrome arrays may have one per
        concurrently-failed disk in :attr:`recon_statuses`.
        """
        if disk is None:
            disk = self.faults.failed_disk
        self.faults.install_replacement(disk)
        self.disks[disk] = self._disk_factory(
            self.env, self.spec, disk_id=disk, policy=self.policy
        )
        if self._fault_enabled:
            # A replacement is a new spindle: fresh latent/error state,
            # drawing from the same per-slot RNG stream.
            self._attach_fault_state(self.disks[disk])
        if self.datastore is not None:
            self.datastore.clear_disk(disk)
        self._instrument_disk(self.disks[disk])
        status = ReconStatus(
            self.env, total_units=self.addressing.mapped_units_per_disk
        )
        if self.metrics is not None:
            status.progress = self.metrics.start_recon_progress(status.total_units)
        self.recon_statuses[disk] = status
        self._sync_recon_status()
        return status

    def finish_repair(self, disk: typing.Optional[int] = None) -> None:
        """Return a rebuilt slot to fault-free operation."""
        if disk is None:
            disk = self.faults.failed_disk
        status = self.recon_statuses.get(disk) if disk is not None else None
        if status is None or not status.all_built:
            raise RuntimeError("finish_repair before reconstruction completed")
        self.faults.repair_complete(disk)
        self.recon_statuses.pop(disk)
        # Historical contract: after the last repair the finished status
        # stays readable; while another rebuild is active, track it.
        if self.faults.failed_disk is not None:
            self._sync_recon_status()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: UserRequest):
        """Begin servicing a user request; returns its completion event."""
        if request.logical_unit + request.num_units > self.addressing.num_data_units:
            raise ValueError(
                f"request [{request.logical_unit}, +{request.num_units}) exceeds "
                f"data space of {self.addressing.num_data_units} units"
            )
        request.done = self.env.event()
        request.submit_ms = self.env.now
        self.env.process(self._handle(request), name="user-request")
        return request.done

    def read(self, logical_unit: int, num_units: int = 1):
        """Convenience: submit a read, returning its completion event."""
        request = UserRequest(logical_unit=logical_unit, is_write=False, num_units=num_units)
        return self.submit(request)

    def write(self, logical_unit: int, values: typing.Optional[typing.List[int]] = None,
              num_units: int = 1):
        """Convenience: submit a write, returning its completion event."""
        if values is not None:
            num_units = len(values)
        request = UserRequest(
            logical_unit=logical_unit, is_write=True, num_units=num_units, values=values
        )
        return self.submit(request)

    # ------------------------------------------------------------------
    # Request decomposition
    # ------------------------------------------------------------------
    def _handle(self, request: UserRequest):
        if request.is_write:
            self.stats.user_writes += 1
            subops = self._plan_write(request)
        else:
            self.stats.user_reads += 1
            request.read_values = [0] * request.num_units
            subops = [
                self.env.process(self._read_unit(request, i), name="read-unit")
                for i in range(request.num_units)
            ]
        if len(subops) == 1:
            yield subops[0]
        else:
            yield self.env.all_of(subops)
        now = self.env.now
        request.complete_ms = now
        if self._read_latency is not None and now >= self.measure_since_ms:
            (self._write_latency if request.is_write else self._read_latency).record(
                now - request.submit_ms
            )
        request.done.succeed(request)

    def _plan_write(self, request: UserRequest):
        """Split a write into large-write groups and per-unit updates."""
        g_data = self.layout.data_units_per_stripe
        subops = []
        index = 0
        while index < request.num_units:
            logical = request.logical_unit + index
            at_boundary = logical % g_data == 0
            remaining = request.num_units - index
            stripe = self.layout.stripe_of_logical(logical)
            if (
                self.layout.supports_large_write
                and at_boundary
                and remaining >= g_data
                and self._stripe_is_healthy(stripe)
            ):
                values = self._write_values(request, index, g_data)
                subops.append(
                    self.env.process(
                        self._large_write(request, stripe, values), name="large-write"
                    )
                )
                index += g_data
            else:
                value = self._write_values(request, index, 1)[0]
                subops.append(
                    self.env.process(
                        self._write_unit(request, logical, value), name="write-unit"
                    )
                )
                index += 1
        return subops

    def _write_values(self, request: UserRequest, index: int, count: int) -> typing.List[int]:
        if request.values is not None:
            return list(request.values[index : index + count])
        return [0] * count

    def _stripe_is_healthy(self, stripe: int) -> bool:
        """True if no unit of the stripe lives on a failed, unbuilt slot."""
        if self.faults.fault_free:
            return True
        failed = self.faults.failed_disks
        lost = self.faults.lost_disks
        for address in self.layout.stripe_units(stripe):
            if address.disk in lost:
                return False
            if address.disk in failed and not self._unit_built_on(
                address.disk, address.offset
            ):
                return False
        return True

    def _stripe_data_lost(self, stripe: int) -> bool:
        """True if more units are unreadable than the layout has syndromes.

        Up to ``num_syndromes`` unreadable units are the tolerated
        faults (the checks recover them); one more means this stripe's
        data is gone. Only possible once a multi-failure has populated
        ``faults.lost_disks``.
        """
        lost = self.faults.lost_disks
        if not lost:
            return False
        failed = self.faults.failed_disks
        unreadable = 0
        for address in self.layout.stripe_units(stripe):
            if address.disk in lost:
                unreadable += 1
            elif address.disk in failed and not self._unit_built_on(
                address.disk, address.offset
            ):
                unreadable += 1
        return unreadable > self.layout.num_syndromes

    def _record_data_loss_access(self, request: UserRequest, logical: int,
                                 stripe: int) -> None:
        """Account a user access that touched destroyed data."""
        request.lost_units.append(logical)
        request.paths.append("data-loss")
        self.stats.record_path("data-loss")
        if self.fault_log is not None:
            self.fault_log.record(
                DATA_LOSS_ACCESS,
                self.env.now,
                stripe=stripe,
                detail=f"logical unit {logical}",
            )

    def _unit_built(self, offset: int) -> bool:
        return self.recon_status is not None and self.recon_status.is_built(offset)

    def _unit_live(self, offset: int) -> bool:
        """A failed-slot unit counts as live once rebuilt.

        Under strict replacement isolation, rebuilt units stay off-limits
        to user work until the whole repair is done.
        """
        if not self._unit_built(offset):
            return False
        if not self.algorithm.isolate_replacement:
            return True
        return self.recon_status.all_built

    def _unit_built_on(self, disk: int, offset: int) -> bool:
        """Per-disk :meth:`_unit_built` for multi-failure layouts."""
        status = self.recon_statuses.get(disk)
        return status is not None and status.is_built(offset)

    def _unit_live_on(self, disk: int, offset: int) -> bool:
        """Per-disk :meth:`_unit_live` for multi-failure layouts."""
        status = self.recon_statuses.get(disk)
        if status is None or not status.is_built(offset):
            return False
        if not self.algorithm.isolate_replacement:
            return True
        return status.all_built

    def _address_dead(self, address: UnitAddress) -> bool:
        """True if this unit cannot currently be read or written."""
        faults = self.faults
        if address.disk in faults.lost_disks:
            return True
        if address.disk in faults.failed_disks:
            return not self._unit_live_on(address.disk, address.offset)
        return False


    # ------------------------------------------------------------------
    # Disk access helpers
    # ------------------------------------------------------------------
    def _disk_access(self, address: UnitAddress, is_write: bool, kind: str = KIND_USER):
        """Issue one stripe-unit-sized access; returns the disk event.

        An access can legitimately land on a failed, unreplaced disk
        when the operation was planned just before the failure (the
        paper's driver would see an I/O error there). The transfer is
        still timed on the dead spindle and counted in
        ``stats.straddled_accesses``; its data is lost, which is safe
        because parity arithmetic uses values sampled before the
        failure.
        """
        faults = self.faults
        if address.disk in faults.lost_disks or (
            address.disk in faults.failed_disks
            and not faults.replacement_installed_on(address.disk)
        ):
            self.stats.straddled_accesses += 1
        sector = self.addressing.unit_to_sector(address)
        if self._fault_enabled:
            return self.env.process(
                self._resilient_access(address, sector, is_write, kind),
                name="resilient-access",
            )
        return self.disks[address.disk].access(
            sector, self.addressing.sectors_per_unit, is_write=is_write, kind=kind
        )

    def _resilient_access(self, address: UnitAddress, sector: int,
                          is_write: bool, kind: str):
        """One access under the retry policy; the process's value is the
        final (possibly still failed) :class:`~repro.disk.drive.DiskRequest`.

        Transient timeouts are retried with exponential backoff in
        simulated time up to the policy's bound; media errors are
        deterministic and not retried by default. An access that ends
        in a hard error counts toward the disk's escalation threshold,
        past which the whole disk is declared failed.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            # Re-fetch the disk each attempt: a replacement may have
            # been installed in this slot while we were backing off.
            disk_request = yield self.disks[address.disk].access(
                sector, self.addressing.sectors_per_unit, is_write=is_write,
                kind=kind,
            )
            error = disk_request.error
            if error is None:
                return disk_request
            self.fault_log.record(
                TRANSIENT_FAULT if error == ERROR_TIMEOUT else MEDIA_ERROR,
                self.env.now,
                disk=address.disk,
                offset=address.offset,
            )
            if policy.should_retry(error, attempt):
                delay = policy.delay_ms(attempt)
                self.fault_log.record(
                    RETRY,
                    self.env.now,
                    disk=address.disk,
                    offset=address.offset,
                    detail=f"attempt {attempt + 1}, backoff {delay:.2f} ms",
                )
                yield self.env.timeout(delay)
                attempt += 1
                continue
            if error == ERROR_TIMEOUT:
                self.fault_log.record(
                    RETRY_EXHAUSTED,
                    self.env.now,
                    disk=address.disk,
                    offset=address.offset,
                    detail=f"gave up after {attempt} retries",
                )
            self._count_hard_error(address.disk)
            return disk_request

    def _count_hard_error(self, disk_id: int) -> None:
        """Accumulate a hard error; escalate a sick disk to failed."""
        state = self.disks[disk_id].fault_state
        if state is None:
            return
        state.hard_errors += 1
        if state.hard_errors < self.fault_profile.escalation_threshold:
            return
        faults = self.faults
        if disk_id in faults.failed_disks or disk_id in faults.lost_disks:
            return  # already dead; nothing further to escalate
        self.fault_log.record(
            ESCALATION,
            self.env.now,
            disk=disk_id,
            detail=f"{state.hard_errors} hard errors",
        )
        if self.on_disk_failure is not None:
            self.on_disk_failure(disk_id)
        else:
            self.fail_disk(disk_id)

    def _surviving_peers(self, stripe: int, exclude: UnitAddress) -> typing.List[UnitAddress]:
        """All stripe units except ``exclude`` (data peers and parity)."""
        return [u for u in self.layout.stripe_units(stripe) if u != exclude]

    def _data_peers(self, stripe: int, exclude: UnitAddress) -> typing.List[UnitAddress]:
        """Data units of the stripe other than ``exclude``."""
        return [
            self.layout.data_unit(stripe, j)
            for j in range(self.layout.data_units_per_stripe)
            if self.layout.data_unit(stripe, j) != exclude
        ]

    def _ds_read(self, address: UnitAddress) -> int:
        if self.datastore is None:
            return 0
        return self.datastore.read_unit(address.disk, address.offset)

    def _ds_write(self, address: UnitAddress, value: int) -> None:
        if self.datastore is not None:
            self.datastore.write_unit(address.disk, address.offset, value)

    @staticmethod
    def _xor(values: typing.Iterable[int]) -> int:
        result = 0
        for value in values:
            result ^= value
        return result

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    def _read_unit(self, request: UserRequest, unit_index: int):
        if self.layout.num_syndromes == 2:
            yield from self._read_unit_dual(request, unit_index)
            return
        logical = request.logical_unit + unit_index
        address = self.addressing.logical_unit_address(logical)
        failed = self.faults.failed_disk
        lost = self.faults.lost_disks
        if lost and self._stripe_data_lost(self.layout.stripe_of_logical(logical)):
            # Two units of this stripe are gone: the read cannot be
            # served. Account it rather than fabricate data.
            self._record_data_loss_access(
                request, logical, self.layout.stripe_of_logical(logical)
            )
            return
        if address.disk != failed and address.disk not in lost:
            target = address
            if self.layout.stripe_size == 2:
                # Mirrored reads balance across the two copies: take the
                # replica whose disk has the shorter queue (never the
                # failed slot — its copy may not be rebuilt yet).
                mirror = self.layout.parity_unit(self.layout.stripe_of_logical(logical))
                if (
                    mirror.disk != failed
                    and mirror.disk not in lost
                    and self.disks[mirror.disk].queue_length
                    < self.disks[target.disk].queue_length
                ):
                    target = mirror
            outcome = yield self._disk_access(target, is_write=False)
            if self._fault_enabled and outcome.error is not None:
                # Media error (or exhausted retries) on a live disk:
                # rebuild the unit from its stripe peers in-line.
                yield from self._repair_read(request, unit_index, logical, target)
                return
            request.read_values[unit_index] = self._ds_read(target)
            request.paths.append("read")
            self.stats.record_path("read")
            return
        if (
            address.disk == failed
            and self.algorithm.redirect_reads
            and self._unit_built(address.offset)
        ):
            # Redirection of reads: the rebuilt unit lives on the replacement.
            yield self._disk_access(address, is_write=False)
            request.read_values[unit_index] = self._ds_read(address)
            request.paths.append("redirected-read")
            self.stats.record_path("redirected-read")
            return
        # On-the-fly reconstruction: XOR of all surviving stripe units.
        stripe = self.layout.stripe_of_logical(logical)
        handoff = False
        yield self.locks.acquire(stripe)
        try:
            peers = self._surviving_peers(stripe, address)
            value = self._xor(self._ds_read(peer) for peer in peers)
            peer_events = [self._disk_access(peer, is_write=False) for peer in peers]
            yield self.env.all_of(peer_events)
            if self._fault_enabled and any(
                event.value.error is not None for event in peer_events
            ):
                # A surviving peer was unreadable too: with the target
                # already lost, this stripe is doubly exposed right now.
                self._record_data_loss_access(request, logical, stripe)
                return
            request.read_values[unit_index] = value
            request.paths.append("on-the-fly-read")
            self.stats.record_path("on-the-fly-read")
            if (
                address.disk == failed
                and self.algorithm.piggyback
                and self.faults.replacement_installed
                and not self.recon_status.is_built(address.offset)
                and not self.recon_status.is_claimed(address.offset)
            ):
                # Piggybacking of writes: store the recovered unit on the
                # replacement while still holding the stripe lock. The user
                # response is not delayed — it completed above; only the
                # stripe stays locked for the piggyback write's duration.
                self.stats.piggyback_writes += 1
                self.env.process(
                    self._piggyback_write(stripe, address, value), name="piggyback"
                )
                handoff = True
        finally:
            # Lock ownership transfers to the piggyback process on the
            # handoff path; every other exit — including a fault
            # exception thrown into this generator — releases here.
            if not handoff:
                self.locks.release(stripe)

    def _piggyback_write(self, stripe: int, address: UnitAddress, value: int,
                         status: typing.Optional[ReconStatus] = None):
        if status is None:
            status = self.recon_status
        try:
            yield self._disk_access(address, is_write=True)
            self._ds_write(address, value)
            status.mark_built(address.offset)
        finally:
            self.locks.release(stripe)

    def _repair_read(self, request: UserRequest, unit_index: int, logical: int,
                     target: UnitAddress):
        """Foreground repair: rebuild an unreadable unit from its peers.

        This is the scrubber's repair promoted into the read path: the
        latent unit is reconstructed by XOR over the surviving stripe
        units and written back in place (remap-on-write clears the
        latent extent). If a peer is dead or unreadable too, the stripe
        is doubly exposed and the read is accounted as data loss.
        """
        if self.layout.num_syndromes == 2:
            yield from self._repair_read_dual(request, unit_index, logical, target)
            return
        stripe = self.layout.stripe_of_logical(logical)
        yield self.locks.acquire(stripe)
        try:
            failed = self.faults.failed_disk
            lost = self.faults.lost_disks
            peers = self._surviving_peers(stripe, target)
            if any(
                peer.disk in lost
                or (peer.disk == failed and not self._unit_built(peer.offset))
                for peer in peers
            ):
                # Latent error on top of a failed peer: nothing left to
                # XOR the unit back from.
                self._record_data_loss_access(request, logical, stripe)
                return
            value = self._xor(self._ds_read(peer) for peer in peers)
            peer_events = [self._disk_access(peer, is_write=False) for peer in peers]
            yield self.env.all_of(peer_events)
            if any(event.value.error is not None for event in peer_events):
                self._record_data_loss_access(request, logical, stripe)
                return
            yield self._disk_access(target, is_write=True)
            self._ds_write(target, value)
        finally:
            self.locks.release(stripe)
        request.read_values[unit_index] = value
        request.paths.append("repaired-read")
        self.stats.record_path("repaired-read")
        self.fault_log.record(
            FOREGROUND_REPAIR,
            self.env.now,
            disk=target.disk,
            offset=target.offset,
            detail=f"logical unit {logical}",
        )

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _write_unit(self, request: UserRequest, logical: int, value: int):
        if self.layout.num_syndromes == 2:
            yield from self._write_unit_dual(request, logical, value)
            return
        address = self.addressing.logical_unit_address(logical)
        stripe = self.layout.stripe_of_logical(logical)
        parity = self.layout.parity_unit(stripe)
        if self.faults.lost_disks and self._stripe_data_lost(stripe):
            # The stripe's data is already gone; writing one unit of it
            # cannot restore consistency. Account and fail the update.
            self._record_data_loss_access(request, logical, stripe)
            return
        yield self.locks.acquire(stripe)
        try:
            failed = self.faults.failed_disk
            lost = self.faults.lost_disks
            on_failed_data = address.disk == failed
            on_failed_parity = parity.disk == failed
            data_dead = on_failed_data or address.disk in lost
            parity_dead = on_failed_parity or parity.disk in lost
            data_ok = not data_dead or (
                on_failed_data and self._unit_live(address.offset)
            )
            parity_ok = not parity_dead or (
                on_failed_parity and self._unit_live(parity.offset)
            )
            if data_ok and parity_ok:
                # Only the G=3 small-stripe path cares about peers; the
                # peer scan is pure layout arithmetic, so deferring it
                # behind the stripe-size test costs nothing else.
                peers_readable = self.layout.stripe_size == 3 and all(
                    peer.disk not in lost
                    and (peer.disk != failed or self._unit_live(peer.offset))
                    for peer in self._data_peers(stripe, address)
                )
                if peers_readable:
                    path = yield from self._small_stripe_write(stripe, address, parity, value)
                else:
                    path = yield from self._read_modify_write(address, parity, value)
            elif data_dead:
                if (
                    on_failed_data
                    and self.faults.replacement_installed
                    and self.algorithm.writes_to_replacement
                ):
                    path = yield from self._reconstruct_write(stripe, address, parity, value)
                else:
                    # Under strict isolation the unit may be rebuilt but
                    # about to go stale: dirty it *before* the fold so
                    # reconstruction cannot declare completion meanwhile.
                    if on_failed_data and self.recon_status is not None:
                        self.recon_status.mark_dirty(address.offset)
                    path = yield from self._fold_write(stripe, address, parity, value)
            else:
                if on_failed_parity and self.recon_status is not None:
                    self.recon_status.mark_dirty(parity.offset)
                path = yield from self._data_only_write(address, value)
        finally:
            self.locks.release(stripe)
        request.paths.append(path)
        self.stats.record_path(path)

    def _read_modify_write(self, address: UnitAddress, parity: UnitAddress, value: int):
        """The 4-access parity update: 2 pre-reads then 2 writes."""
        old_data = self._ds_read(address)
        old_parity = self._ds_read(parity)
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=False),
                self._disk_access(parity, is_write=False),
            ]
        )
        new_parity = old_parity ^ old_data ^ value
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(parity, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(parity, new_parity)
        return "rmw-write"

    # Note on mirroring: G=2 stripes have one data unit, so the parity
    # unit is a byte-identical copy and *every* aligned write is a
    # full-stripe write — the large-write path below gives mirrored
    # writes their two-access, no-pre-read behaviour for free, and G=2
    # declustered layouts realize Copeland & Keller's interleaved
    # declustering (see tests/array/test_mirroring.py).

    def _small_stripe_write(self, stripe: int, address: UnitAddress,
                            parity: UnitAddress, value: int):
        """G=3 optimization: read the *other* data unit, then 2 writes.

        With only two data units per stripe the new parity depends on
        the other unit and the new value alone, saving one access
        (Section 6's alpha = 0.1 exception).
        """
        other = self._data_peers(stripe, address)[0]
        other_value = self._ds_read(other)
        yield self._disk_access(other, is_write=False)
        new_parity = other_value ^ value
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(parity, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(parity, new_parity)
        return "small-stripe-write"

    def _reconstruct_write(self, stripe: int, address: UnitAddress,
                           parity: UnitAddress, value: int):
        """Send a lost unit's new data straight to the replacement.

        Parity must be rebuilt from the surviving data peers, after
        which the unit is up to date on the replacement and needs no
        sweep cycle (the user-writes family's "free reconstruction").
        """
        peers = self._data_peers(stripe, address)
        peer_values = [self._ds_read(peer) for peer in peers]
        if peers:
            yield self.env.all_of(
                [self._disk_access(peer, is_write=False) for peer in peers]
            )
        new_parity = self._xor(peer_values) ^ value
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(parity, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(parity, new_parity)
        self.recon_status.mark_built(address.offset)
        return "reconstruct-write"

    def _fold_write(self, stripe: int, address: UnitAddress,
                    parity: UnitAddress, value: int):
        """Fold a write to a lost unit into its parity unit (baseline).

        After the fold, on-the-fly reconstruction of the lost unit
        yields the *new* data, so no information is lost — but the
        replacement gains nothing.
        """
        peers = self._data_peers(stripe, address)
        peer_values = [self._ds_read(peer) for peer in peers]
        if peers:
            yield self.env.all_of(
                [self._disk_access(peer, is_write=False) for peer in peers]
            )
        new_parity = self._xor(peer_values) ^ value
        yield self._disk_access(parity, is_write=True)
        self._ds_write(parity, new_parity)
        return "fold-write"

    def _data_only_write(self, address: UnitAddress, value: int):
        """Parity is lost and unrebuilt: just write the data (1 access).

        The sweep recomputes the parity unit from current data when it
        reaches it, so skipping the parity update is safe.
        """
        yield self._disk_access(address, is_write=True)
        self._ds_write(address, value)
        return "data-only-write"

    def _large_write(self, request: UserRequest, stripe: int, values: typing.List[int]):
        """Full-stripe aligned write: G writes, no pre-reads (criterion 5)."""
        yield self.locks.acquire(stripe)
        try:
            accesses = []
            for j in range(self.layout.data_units_per_stripe):
                address = self.layout.data_unit(stripe, j)
                accesses.append(self._disk_access(address, is_write=True))
                self._ds_write(address, values[j])
            parity = self.layout.parity_unit(stripe)
            accesses.append(self._disk_access(parity, is_write=True))
            self._ds_write(parity, self._xor(values))
            if self.layout.num_syndromes == 2:
                q_addr = self.layout.q_unit(stripe)
                accesses.append(self._disk_access(q_addr, is_write=True))
                self._ds_write(q_addr, gf.q_of(values))
            yield self.env.all_of(accesses)
        finally:
            self.locks.release(stripe)
        request.paths.append("large-write")
        self.stats.record_path("large-write")

    # ------------------------------------------------------------------
    # Dual-syndrome (P+Q) paths
    # ------------------------------------------------------------------
    def _dual_stripe_decode(self, stripe: int,
                            treat_dead: typing.Tuple[UnitAddress, ...] = (),
                            kind: str = KIND_USER,
                            repair_errored: bool = False):
        """Read every readable unit of a dual stripe and decode its data.

        Generator run under the stripe lock. Units on dead slots — plus
        any in ``treat_dead`` (e.g. a unit that just returned a media
        error) — become erasures; units whose read errors mid-decode
        join them. Returns ``(data_values, erasures, ok)`` where ``ok``
        is False once more than two units are unreadable.

        With ``repair_errored`` (the reconstruction sweep), units that
        errored on read — latent sectors, not dead slots — are
        rewritten in place from the decode before returning: a stale
        latent sector would otherwise be re-hit by every subsequent
        sweep, each hit counting toward the disk's escalation
        threshold until a healthy disk is declared failed mid-repair.

        Data values are sampled from the datastore *before* the disk
        accesses are issued, mirroring the single-syndrome paths: a
        failure landing mid-decode cannot leak poison into the
        arithmetic.
        """
        layout = self.layout
        data_addrs = [
            layout.data_unit(stripe, j)
            for j in range(layout.data_units_per_stripe)
        ]
        p_addr = layout.parity_unit(stripe)
        q_addr = layout.q_unit(stripe)
        all_addrs = data_addrs + [p_addr, q_addr]
        dead = set(treat_dead)
        readable = [
            a for a in all_addrs if a not in dead and not self._address_dead(a)
        ]
        values = {a: self._ds_read(a) for a in readable}
        events = [
            self._disk_access(a, is_write=False, kind=kind) for a in readable
        ]
        if events:
            yield self.env.all_of(events)
        errored: typing.List[UnitAddress] = []
        if self._fault_enabled:
            for a, event in zip(readable, events):
                if event.value.error is not None:
                    dead.add(a)
                    errored.append(a)

        def value_of(a: UnitAddress) -> typing.Optional[int]:
            if a in dead or a not in values:
                return None
            return values[a]

        data = [value_of(a) for a in data_addrs]
        p = value_of(p_addr)
        q = value_of(q_addr)
        erasures = sum(v is None for v in data) + (p is None) + (q is None)
        try:
            decoded = gf.recover_stripe_data(data, p, q)
        except ValueError:
            return [], erasures, False
        if repair_errored and errored:
            # Rewriting remaps the latent sector; skip any slot a
            # mid-decode failure just killed.
            targets = [a for a in errored if not self._address_dead(a)]
            if targets:
                yield self.env.all_of(
                    [self._disk_access(a, is_write=True, kind=kind)
                     for a in targets]
                )
                for a in targets:
                    self._ds_write(a, self._dual_unit_value(decoded, a))
                    if self.fault_log is not None:
                        self.fault_log.record(
                            FOREGROUND_REPAIR, self.env.now,
                            disk=a.disk, offset=a.offset,
                            detail="rebuilt by recon sweep decode",
                        )
        return decoded, erasures, True

    def _dual_unit_value(self, decoded: typing.List[int], address: UnitAddress) -> int:
        """The decoded content of ``address`` (data, P, or Q role)."""
        role = self.layout.stripe_of(address.disk, address.offset)[1]
        if role >= 0:
            return decoded[role]
        if role == PARITY_ROLE:
            return gf.p_of(decoded)
        return gf.q_of(decoded)

    def _read_unit_dual(self, request: UserRequest, unit_index: int):
        """Read one unit of a P+Q stripe, decoding through up to two
        dead slots."""
        logical = request.logical_unit + unit_index
        address = self.addressing.logical_unit_address(logical)
        stripe = self.layout.stripe_of_logical(logical)
        faults = self.faults
        if faults.lost_disks and self._stripe_data_lost(stripe):
            self._record_data_loss_access(request, logical, stripe)
            return
        if address.disk not in faults.failed_disks and address.disk not in faults.lost_disks:
            outcome = yield self._disk_access(address, is_write=False)
            if self._fault_enabled and outcome.error is not None:
                yield from self._repair_read(request, unit_index, logical, address)
                return
            request.read_values[unit_index] = self._ds_read(address)
            request.paths.append("read")
            self.stats.record_path("read")
            return
        if (
            address.disk in faults.failed_disks
            and self.algorithm.redirect_reads
            and self._unit_built_on(address.disk, address.offset)
        ):
            yield self._disk_access(address, is_write=False)
            request.read_values[unit_index] = self._ds_read(address)
            request.paths.append("redirected-read")
            self.stats.record_path("redirected-read")
            return
        # Degraded read: decode the target from the surviving units.
        handoff = False
        yield self.locks.acquire(stripe)
        try:
            decoded, erasures, ok = yield from self._dual_stripe_decode(stripe)
            if not ok:
                self._record_data_loss_access(request, logical, stripe)
                return
            value = self._dual_unit_value(decoded, address)
            request.read_values[unit_index] = value
            path = "double-degraded-read" if erasures >= 2 else "on-the-fly-read"
            request.paths.append(path)
            self.stats.record_path(path)
            status = self.recon_statuses.get(address.disk)
            if (
                self.algorithm.piggyback
                and status is not None
                and not status.is_built(address.offset)
                and not status.is_claimed(address.offset)
            ):
                # Lock ownership transfers to the piggyback process,
                # exactly as on the single-syndrome path.
                self.stats.piggyback_writes += 1
                self.env.process(
                    self._piggyback_write(stripe, address, value, status),
                    name="piggyback",
                )
                handoff = True
        finally:
            if not handoff:
                self.locks.release(stripe)

    def _repair_read_dual(self, request: UserRequest, unit_index: int,
                          logical: int, target: UnitAddress):
        """Foreground repair on a P+Q stripe: decode the latent unit
        from the surviving units and write it back in place."""
        stripe = self.layout.stripe_of_logical(logical)
        yield self.locks.acquire(stripe)
        try:
            decoded, _erasures, ok = yield from self._dual_stripe_decode(
                stripe, treat_dead=(target,)
            )
            if not ok:
                self._record_data_loss_access(request, logical, stripe)
                return
            value = self._dual_unit_value(decoded, target)
            yield self._disk_access(target, is_write=True)
            self._ds_write(target, value)
        finally:
            self.locks.release(stripe)
        request.read_values[unit_index] = value
        request.paths.append("repaired-read")
        self.stats.record_path("repaired-read")
        self.fault_log.record(
            FOREGROUND_REPAIR,
            self.env.now,
            disk=target.disk,
            offset=target.offset,
            detail=f"logical unit {logical}",
        )

    def _write_unit_dual(self, request: UserRequest, logical: int, value: int):
        """Update one unit of a P+Q stripe plus both its checks."""
        address = self.addressing.logical_unit_address(logical)
        stripe = self.layout.stripe_of_logical(logical)
        if self.faults.lost_disks and self._stripe_data_lost(stripe):
            self._record_data_loss_access(request, logical, stripe)
            return
        p_addr = self.layout.parity_unit(stripe)
        q_addr = self.layout.q_unit(stripe)
        path = None
        yield self.locks.acquire(stripe)
        try:
            target_dead = self._address_dead(address)
            p_dead = self._address_dead(p_addr)
            q_dead = self._address_dead(q_addr)
            if not (target_dead or p_dead or q_dead):
                path = yield from self._pq_read_modify_write(
                    address, p_addr, q_addr, value
                )
            else:
                decoded, _erasures, ok = yield from self._dual_stripe_decode(stripe)
                if not ok:
                    self._record_data_loss_access(request, logical, stripe)
                else:
                    path = yield from self._pq_apply_degraded_write(
                        address, p_addr, q_addr, decoded, value,
                        target_dead, p_dead, q_dead,
                    )
        finally:
            self.locks.release(stripe)
        if path is not None:
            request.paths.append(path)
            self.stats.record_path(path)

    def _pq_read_modify_write(self, address: UnitAddress, p_addr: UnitAddress,
                              q_addr: UnitAddress, value: int):
        """The 6-access P+Q update: pre-read then rewrite data, P, Q."""
        role = self.layout.stripe_of(address.disk, address.offset)[1]
        old_data = self._ds_read(address)
        old_p = self._ds_read(p_addr)
        old_q = self._ds_read(q_addr)
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=False),
                self._disk_access(p_addr, is_write=False),
                self._disk_access(q_addr, is_write=False),
            ]
        )
        new_p = old_p ^ old_data ^ value
        new_q = gf.q_update(old_q, role, old_data, value)
        yield self.env.all_of(
            [
                self._disk_access(address, is_write=True),
                self._disk_access(p_addr, is_write=True),
                self._disk_access(q_addr, is_write=True),
            ]
        )
        self._ds_write(address, value)
        self._ds_write(p_addr, new_p)
        self._ds_write(q_addr, new_q)
        return "pq-rmw-write"

    def _pq_apply_degraded_write(self, address: UnitAddress, p_addr: UnitAddress,
                                 q_addr: UnitAddress, decoded: typing.List[int],
                                 value: int, target_dead: bool, p_dead: bool,
                                 q_dead: bool):
        """Finish a degraded P+Q write from the decoded stripe image.

        Live units (target or checks) are rewritten with fresh contents;
        dead ones are folded into the survivors — their rebuilt image
        goes stale, so any rebuild in progress has the unit dirtied
        *before* the writes land, exactly like the single-syndrome fold.
        """
        role = self.layout.stripe_of(address.disk, address.offset)[1]
        new_data = list(decoded)
        new_data[role] = value
        new_p = gf.p_of(new_data)
        new_q = gf.q_of(new_data)
        writes: typing.List[typing.Tuple[UnitAddress, int]] = []
        built_target = False
        if not target_dead:
            writes.append((address, value))
            path = "pq-degraded-write"
        else:
            status = self.recon_statuses.get(address.disk)
            if (
                address.disk in self.faults.failed_disks
                and self.faults.replacement_installed_on(address.disk)
                and self.algorithm.writes_to_replacement
            ):
                writes.append((address, value))
                built_target = True
                path = "pq-reconstruct-write"
            else:
                if status is not None:
                    status.mark_dirty(address.offset)
                path = "pq-fold-write"
        for check_addr, check_value, check_dead in (
            (p_addr, new_p, p_dead),
            (q_addr, new_q, q_dead),
        ):
            if not check_dead:
                writes.append((check_addr, check_value))
            else:
                status = self.recon_statuses.get(check_addr.disk)
                if status is not None:
                    status.mark_dirty(check_addr.offset)
        yield self.env.all_of(
            [self._disk_access(a, is_write=True) for a, _v in writes]
        )
        for write_addr, write_value in writes:
            self._ds_write(write_addr, write_value)
        if built_target:
            self.recon_statuses[address.disk].mark_built(address.offset)
        return path
