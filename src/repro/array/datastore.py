"""In-memory unit contents for end-to-end data-integrity checking.

Each stripe unit carries a 64-bit word; parity units hold the XOR of
their stripe's data words, and (in dual-syndrome layouts) Q units hold
the GF(2^64) syndrome of :mod:`repro.array.syndromes`. The simulator's
timing never depends on this store — it exists so tests can verify
that the layout, the striping driver's syndrome arithmetic, and the
reconstruction engine together recover failed disks bit-exactly.
Large performance runs disable it.

A failed disk's contents are overwritten with a poison pattern the
moment it fails: any code path that wrongly reads a failed disk
surfaces immediately as a poisoned value propagating into a checksum.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.array import syndromes as gf
from repro.array.addressing import ArrayAddressing

#: Value planted on failed disks to catch reads-after-failure.
POISON = np.uint64(0xDEADBEEFDEADBEEF)


def initial_data_pattern(disk: int, offset: int) -> int:
    """Deterministic initial content of the data unit at (disk, offset)."""
    return ((disk + 1) * 0x9E3779B97F4A7C15 + (offset + 1) * 0xC2B2AE3D27D4EB4F) % (1 << 64)


class DataStore:
    """Per-unit 64-bit contents for one array."""

    def __init__(self, addressing: ArrayAddressing):
        self.addressing = addressing
        layout = addressing.layout
        self._units = np.zeros(
            (layout.num_disks, addressing.mapped_units_per_disk), dtype=np.uint64
        )
        self._fill_initial()

    def _fill_initial(self) -> None:
        layout = self.addressing.layout
        for disk in range(layout.num_disks):
            for offset in range(self.addressing.mapped_units_per_disk):
                _stripe, role = layout.stripe_of(disk, offset)
                if role >= 0:
                    self._units[disk, offset] = np.uint64(
                        initial_data_pattern(disk, offset)
                    )
        # Syndrome pass: fill each stripe's check slot(s) from its data.
        for stripe in range(self.addressing.num_stripes):
            self.recompute_syndromes(stripe)

    # ------------------------------------------------------------------
    # Unit access
    # ------------------------------------------------------------------
    def read_unit(self, disk: int, offset: int) -> int:
        return int(self._units[disk, offset])

    def write_unit(self, disk: int, offset: int, value: int) -> None:
        self._units[disk, offset] = np.uint64(value % (1 << 64))

    def poison_disk(self, disk: int) -> None:
        """Destroy a failed disk's contents (see module docstring)."""
        self._units[disk, :] = POISON

    def clear_disk(self, disk: int) -> None:
        """Blank a freshly-installed replacement disk."""
        self._units[disk, :] = np.uint64(0)

    # ------------------------------------------------------------------
    # Stripe helpers
    # ------------------------------------------------------------------
    def stripe_data_values(self, stripe: int) -> typing.List[int]:
        layout = self.addressing.layout
        return [
            self.read_unit(*self._slot(layout.data_unit(stripe, j)))
            for j in range(layout.data_units_per_stripe)
        ]

    def parity_value(self, stripe: int) -> int:
        layout = self.addressing.layout
        return self.read_unit(*self._slot(layout.parity_unit(stripe)))

    def q_value(self, stripe: int) -> int:
        layout = self.addressing.layout
        return self.read_unit(*self._slot(layout.q_unit(stripe)))

    def recompute_parity(self, stripe: int) -> None:
        """Set the stripe's parity slot to the XOR of its data slots."""
        parity = 0
        for value in self.stripe_data_values(stripe):
            parity ^= value
        address = self.addressing.layout.parity_unit(stripe)
        self.write_unit(address.disk, address.offset, parity)

    def recompute_q(self, stripe: int) -> None:
        """Set the stripe's Q slot to the GF(2^64) syndrome of its data."""
        address = self.addressing.layout.q_unit(stripe)
        self.write_unit(
            address.disk, address.offset, gf.q_of(self.stripe_data_values(stripe))
        )

    def recompute_syndromes(self, stripe: int) -> None:
        """Refresh every check unit of the stripe from its data units."""
        self.recompute_parity(stripe)
        if self.addressing.layout.num_syndromes == 2:
            self.recompute_q(stripe)

    def stripe_is_consistent(self, stripe: int) -> bool:
        """True if every check unit matches the stripe's data units."""
        data = self.stripe_data_values(stripe)
        if gf.p_of(data) != self.parity_value(stripe):
            return False
        if self.addressing.layout.num_syndromes == 2:
            return gf.q_of(data) == self.q_value(stripe)
        return True

    @staticmethod
    def _slot(address) -> typing.Tuple[int, int]:
        return address.disk, address.offset
