"""Array fault state: which disks are failed, replaced, or healthy.

A single-failure-correcting array tolerates one lost disk; the state
machine below tracks that repairable fault exactly as before. What
changed for the fault-injection subsystem is the *second* failure: it
used to be an unconditional :class:`RuntimeError`, which made crash the
only possible outcome of a double fault. Now callers choose:

- ``fail(disk)`` (the historical contract) still raises — but the
  exception is :class:`DataLossError`, a ``RuntimeError`` subclass that
  carries the concurrent failures and, when the caller knows them, the
  doubly-exposed stripes;
- ``fail(disk, allow_data_loss=True)`` records a
  :class:`DataLossEvent` instead and moves the array into a *degraded
  terminal* state: the extra disk joins :attr:`lost_disks`, requests
  touching doubly-exposed stripes take the controller's accounted
  ``data-loss`` path, and the simulation keeps running so a campaign
  can measure time-to-data-loss rather than crash at it.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field


class DiskMode(enum.Enum):
    """Operational state of one disk slot."""

    OK = "ok"
    FAILED = "failed"            # lost; no replacement installed yet
    RECONSTRUCTING = "reconstructing"  # replacement installed, rebuild underway


class DataLossError(RuntimeError):
    """A failure beyond the array's redundancy was rejected.

    Raised by :meth:`ArrayFaults.fail` when a second concurrent failure
    arrives and the caller did not opt into graceful data loss.
    ``failed_disks`` lists every concurrently-failed disk including the
    new one; ``exposed_stripes`` carries the doubly-exposed stripes when
    the raising layer knows the layout (the bare state machine does
    not).
    """

    def __init__(
        self,
        message: str,
        failed_disks: typing.Sequence[int] = (),
        exposed_stripes: typing.Sequence[int] = (),
    ):
        super().__init__(message)
        self.failed_disks = tuple(failed_disks)
        self.exposed_stripes = tuple(exposed_stripes)


@dataclass
class DataLossEvent:
    """One recorded unrecoverable multi-failure."""

    disk: int                                  # the failure that lost data
    concurrent_failures: typing.Tuple[int, ...]  # disks already down
    at_ms: float = 0.0
    exposed_stripes: typing.Tuple[int, ...] = field(default_factory=tuple)

    @property
    def all_failed_disks(self) -> typing.Tuple[int, ...]:
        return tuple(sorted(set(self.concurrent_failures) | {self.disk}))


class ArrayFaults:
    """Tracks the single tolerated fault of a parity-protected array,
    plus any unrecoverable failures beyond it."""

    def __init__(self, num_disks: int):
        self.num_disks = num_disks
        self.failed_disk: typing.Optional[int] = None
        self.replacement_installed = False
        #: Disks lost beyond the array's redundancy (terminal state).
        self.lost_disks: typing.Set[int] = set()
        self.data_loss_events: typing.List[DataLossEvent] = []

    @property
    def fault_free(self) -> bool:
        return self.failed_disk is None and not self.lost_disks

    @property
    def data_lost(self) -> bool:
        """True once any multi-failure has destroyed data (terminal)."""
        return bool(self.data_loss_events)

    def mode_of(self, disk: int) -> DiskMode:
        if disk in self.lost_disks:
            return DiskMode.FAILED
        if disk != self.failed_disk:
            return DiskMode.OK
        return DiskMode.RECONSTRUCTING if self.replacement_installed else DiskMode.FAILED

    def fail(self, disk: int,
             allow_data_loss: bool = False) -> typing.Optional[DataLossEvent]:
        """Record a disk failure.

        The first failure is the repairable one and returns None. A
        concurrent second failure raises :class:`DataLossError` unless
        ``allow_data_loss`` is set, in which case it is recorded as a
        :class:`DataLossEvent` (returned for the caller to enrich with
        timing and exposed stripes) and the array enters its degraded
        terminal state.
        """
        if not 0 <= disk < self.num_disks:
            raise ValueError(f"disk {disk} outside array of {self.num_disks}")
        if disk == self.failed_disk or disk in self.lost_disks:
            raise ValueError(f"disk {disk} has already failed")
        if self.fault_free and not self.data_lost:
            self.failed_disk = disk
            self.replacement_installed = False
            return None
        concurrent = tuple(sorted(
            ({self.failed_disk} if self.failed_disk is not None else set())
            | self.lost_disks
        ))
        if not allow_data_loss:
            raise DataLossError(
                f"disk {concurrent[0] if concurrent else '?'} already failed; "
                "a second failure loses data in a single-failure-correcting "
                "array",
                failed_disks=concurrent + (disk,),
            )
        event = DataLossEvent(disk=disk, concurrent_failures=concurrent)
        self.lost_disks.add(disk)
        self.data_loss_events.append(event)
        return event

    def install_replacement(self) -> None:
        if self.failed_disk is None:
            raise RuntimeError("no failed disk to replace")
        if self.replacement_installed:
            raise RuntimeError("replacement already installed")
        self.replacement_installed = True

    def repair_complete(self) -> None:
        """Reconstruction finished: the slot is healthy again.

        Lost disks stay lost — repairing the repairable fault does not
        resurrect data destroyed by a multi-failure.
        """
        if self.failed_disk is None or not self.replacement_installed:
            raise RuntimeError("repair_complete without an active reconstruction")
        self.failed_disk = None
        self.replacement_installed = False
