"""Array fault state: which disks are failed, replaced, or healthy.

An array tolerates as many concurrent disk failures as its layout has
syndromes (``tolerance``): one for the paper's parity code, two for
P+Q dual-syndrome layouts. The state machine tracks every repairable
fault — in failure order, since the first failure is the one the
single-failure code paths care about — plus any unrecoverable failures
beyond the budget. For failures past the tolerance, callers choose:

- ``fail(disk)`` (the historical contract) raises
  :class:`DataLossError`, a ``RuntimeError`` subclass that carries the
  concurrent failures and, when the caller knows them, the
  over-exposed stripes;
- ``fail(disk, allow_data_loss=True)`` records a
  :class:`DataLossEvent` instead and moves the array into a *degraded
  terminal* state: the extra disk joins :attr:`lost_disks`, requests
  touching over-exposed stripes take the controller's accounted
  ``data-loss`` path, and the simulation keeps running so a campaign
  can measure time-to-data-loss rather than crash at it.

The single-failure accessors (:attr:`failed_disk`,
:attr:`replacement_installed`, no-argument :meth:`install_replacement`
and :meth:`repair_complete`) keep their exact historical behavior for
``tolerance=1`` arrays; multi-failure callers address disks explicitly.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field


class DiskMode(enum.Enum):
    """Operational state of one disk slot."""

    OK = "ok"
    FAILED = "failed"            # lost; no replacement installed yet
    RECONSTRUCTING = "reconstructing"  # replacement installed, rebuild underway


class DataLossError(RuntimeError):
    """A failure beyond the array's redundancy was rejected.

    Raised by :meth:`ArrayFaults.fail` when a failure beyond the
    tolerance arrives and the caller did not opt into graceful data
    loss. ``failed_disks`` lists every concurrently-failed disk
    including the new one; ``exposed_stripes`` carries the over-exposed
    stripes when the raising layer knows the layout (the bare state
    machine does not).
    """

    def __init__(
        self,
        message: str,
        failed_disks: typing.Sequence[int] = (),
        exposed_stripes: typing.Sequence[int] = (),
    ):
        super().__init__(message)
        self.failed_disks = tuple(failed_disks)
        self.exposed_stripes = tuple(exposed_stripes)


@dataclass
class DataLossEvent:
    """One recorded unrecoverable multi-failure."""

    disk: int                                  # the failure that lost data
    concurrent_failures: typing.Tuple[int, ...]  # disks already down
    at_ms: float = 0.0
    exposed_stripes: typing.Tuple[int, ...] = field(default_factory=tuple)

    @property
    def all_failed_disks(self) -> typing.Tuple[int, ...]:
        return tuple(sorted(set(self.concurrent_failures) | {self.disk}))


class ArrayFaults:
    """Tracks the tolerated fault(s) of a syndrome-protected array,
    plus any unrecoverable failures beyond them."""

    def __init__(self, num_disks: int, tolerance: int = 1):
        if tolerance < 1:
            raise ValueError(f"tolerance must be >= 1, got {tolerance}")
        self.num_disks = num_disks
        self.tolerance = tolerance
        #: Active repairable failures in failure order:
        #: disk -> replacement installed?
        self._active: typing.Dict[int, bool] = {}
        #: Disks lost beyond the array's redundancy (terminal state).
        self.lost_disks: typing.Set[int] = set()
        self.data_loss_events: typing.List[DataLossEvent] = []

    # ------------------------------------------------------------------
    # Single-failure accessors (historical API, the first active fault)
    # ------------------------------------------------------------------
    @property
    def failed_disk(self) -> typing.Optional[int]:
        """The earliest still-active failure, or None."""
        for disk in self._active:
            return disk
        return None

    @property
    def replacement_installed(self) -> bool:
        """Whether the earliest active failure has its replacement."""
        for installed in self._active.values():
            return installed
        return False

    # ------------------------------------------------------------------
    # Multi-failure accessors
    # ------------------------------------------------------------------
    @property
    def failed_disks(self) -> typing.Tuple[int, ...]:
        """All active repairable failures, in failure order."""
        return tuple(self._active)

    @property
    def fault_free(self) -> bool:
        return not self._active and not self.lost_disks

    @property
    def can_absorb(self) -> bool:
        """True while one more failure stays within the syndrome budget."""
        return (
            len(self._active) + len(self.lost_disks) < self.tolerance
            and not self.data_lost
        )

    @property
    def data_lost(self) -> bool:
        """True once any multi-failure has destroyed data (terminal)."""
        return bool(self.data_loss_events)

    def mode_of(self, disk: int) -> DiskMode:
        if disk in self.lost_disks:
            return DiskMode.FAILED
        installed = self._active.get(disk)
        if installed is None:
            return DiskMode.OK
        return DiskMode.RECONSTRUCTING if installed else DiskMode.FAILED

    def replacement_installed_on(self, disk: int) -> bool:
        """Whether active failure ``disk`` has its replacement installed."""
        return self._active.get(disk, False)

    def fail(self, disk: int,
             allow_data_loss: bool = False) -> typing.Optional[DataLossEvent]:
        """Record a disk failure.

        Failures within the tolerance are repairable and return None. A
        failure beyond it raises :class:`DataLossError` unless
        ``allow_data_loss`` is set, in which case it is recorded as a
        :class:`DataLossEvent` (returned for the caller to enrich with
        timing and exposed stripes) and the array enters its degraded
        terminal state.
        """
        if not 0 <= disk < self.num_disks:
            raise ValueError(f"disk {disk} outside array of {self.num_disks}")
        if disk in self._active or disk in self.lost_disks:
            raise ValueError(f"disk {disk} has already failed")
        if self.can_absorb:
            self._active[disk] = False
            return None
        concurrent = tuple(sorted(set(self._active) | self.lost_disks))
        if not allow_data_loss:
            ordinal = "second" if len(concurrent) == 1 else "further"
            raise DataLossError(
                f"disk{'s' if len(concurrent) > 1 else ''} "
                f"{', '.join(map(str, concurrent)) or '?'} already failed; "
                f"a {ordinal} failure exceeds the array's {self.tolerance}-"
                "failure tolerance and loses data",
                failed_disks=concurrent + (disk,),
            )
        event = DataLossEvent(disk=disk, concurrent_failures=concurrent)
        self.lost_disks.add(disk)
        self.data_loss_events.append(event)
        return event

    def install_replacement(self, disk: typing.Optional[int] = None) -> None:
        """Install a replacement for ``disk`` (default: earliest failure)."""
        if disk is None:
            disk = self.failed_disk
        if disk is None:
            raise RuntimeError("no failed disk to replace")
        if disk not in self._active:
            raise RuntimeError(f"disk {disk} is not an active repairable failure")
        if self._active[disk]:
            raise RuntimeError("replacement already installed")
        self._active[disk] = True

    def repair_complete(self, disk: typing.Optional[int] = None) -> None:
        """Reconstruction finished: the slot is healthy again.

        Lost disks stay lost — repairing a repairable fault does not
        resurrect data destroyed by a multi-failure.
        """
        if disk is None:
            disk = self.failed_disk
        if disk is None or not self._active.get(disk, False):
            raise RuntimeError("repair_complete without an active reconstruction")
        del self._active[disk]
