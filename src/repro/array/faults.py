"""Array fault state: which disk is failed, replaced, or healthy."""

from __future__ import annotations

import enum
import typing


class DiskMode(enum.Enum):
    """Operational state of one disk slot."""

    OK = "ok"
    FAILED = "failed"            # lost; no replacement installed yet
    RECONSTRUCTING = "reconstructing"  # replacement installed, rebuild underway


class ArrayFaults:
    """Tracks the single tolerated fault of a parity-protected array."""

    def __init__(self, num_disks: int):
        self.num_disks = num_disks
        self.failed_disk: typing.Optional[int] = None
        self.replacement_installed = False

    @property
    def fault_free(self) -> bool:
        return self.failed_disk is None

    def mode_of(self, disk: int) -> DiskMode:
        if disk != self.failed_disk:
            return DiskMode.OK
        return DiskMode.RECONSTRUCTING if self.replacement_installed else DiskMode.FAILED

    def fail(self, disk: int) -> None:
        if not 0 <= disk < self.num_disks:
            raise ValueError(f"disk {disk} outside array of {self.num_disks}")
        if self.failed_disk is not None:
            raise RuntimeError(
                f"disk {self.failed_disk} already failed; a second failure "
                "loses data in a single-failure-correcting array"
            )
        self.failed_disk = disk
        self.replacement_installed = False

    def install_replacement(self) -> None:
        if self.failed_disk is None:
            raise RuntimeError("no failed disk to replace")
        if self.replacement_installed:
            raise RuntimeError("replacement already installed")
        self.replacement_installed = True

    def repair_complete(self) -> None:
        """Reconstruction finished: the slot is healthy again."""
        if self.failed_disk is None or not self.replacement_installed:
            raise RuntimeError("repair_complete without an active reconstruction")
        self.failed_disk = None
        self.replacement_installed = False
