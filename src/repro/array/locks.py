"""Per-parity-stripe mutual exclusion.

Every operation that reads-then-writes stripe state (read-modify-write
parity updates, write folding, reconstruct-writes, on-the-fly
reconstruction reads, and reconstruction sweep cycles) serializes on
its stripe's lock, exactly as the Sprite striping driver serialized
stripe updates. Locks are created on demand and discarded when free,
so the table stays proportional to the number of in-flight operations,
not the number of stripes.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Environment


class _Mutex:
    """FIFO mutex built on kernel events."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.locked = False
        self.waiters: collections.deque = collections.deque()

    def acquire(self):
        """An event firing when the caller holds the lock."""
        event = self.env.event()
        if not self.locked:
            self.locked = True
            event.succeed()
        else:
            self.waiters.append(event)
        return event

    def release(self) -> None:
        if not self.locked:
            raise RuntimeError("release of an unlocked mutex")
        if self.waiters:
            self.waiters.popleft().succeed()
        else:
            self.locked = False

    @property
    def idle(self) -> bool:
        return not self.locked and not self.waiters


class StripeLockTable:
    """On-demand mutexes keyed by parity stripe number.

    ``monitor`` is an opt-in observation hook (the simsan lock-order
    sanitizer). It is None in every normal run: the two ``if`` checks
    below are the entire overhead when it is off, and the monitor API
    is purely observational — it must never touch lock state, so an
    instrumented run stays bit-identical to an uninstrumented one.
    """

    def __init__(self, env: "Environment", monitor=None):
        self.env = env
        self.monitor = monitor
        self._locks: typing.Dict[int, _Mutex] = {}

    def acquire(self, stripe: int):
        """Event firing when the caller holds stripe ``stripe``'s lock."""
        mutex = self._locks.get(stripe)
        if mutex is None:
            mutex = _Mutex(self.env)
            self._locks[stripe] = mutex
        if self.monitor is not None:
            granted = not mutex.locked
            event = mutex.acquire()
            self.monitor.on_acquire(stripe, event, granted)
            return event
        return mutex.acquire()

    def release(self, stripe: int) -> None:
        mutex = self._locks.get(stripe)
        if self.monitor is not None:
            # Observe before mutating so the monitor can flag a release
            # nobody holds (SAN003) before the KeyError below.
            next_event = (
                mutex.waiters[0] if mutex is not None and mutex.waiters else None
            )
            self.monitor.on_release(stripe, next_event)
        if mutex is None:
            raise KeyError(stripe)
        mutex.release()
        if mutex.idle:
            del self._locks[stripe]

    @property
    def held_count(self) -> int:
        """Stripes currently locked or awaited (for leak tests)."""
        return len(self._locks)
