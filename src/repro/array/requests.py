"""User-level array requests and their lifecycle records."""

from __future__ import annotations

import typing
from dataclasses import dataclass, field


@dataclass
class UserRequest:
    """One user access to the array's logical data space.

    The unit of addressing is the stripe unit (4 KB in the paper's
    configuration); ``num_units`` > 1 expresses a larger sequential
    access. For writes, ``values`` optionally carries the 64-bit
    content written to each unit when a data store is attached.
    """

    logical_unit: int
    is_write: bool
    num_units: int = 1
    values: typing.Optional[typing.List[int]] = None
    submit_ms: float = 0.0
    complete_ms: float = 0.0
    done: object = None            # Event, attached by the controller
    read_values: typing.List[int] = field(default_factory=list)
    paths: typing.List[str] = field(default_factory=list)  # access paths taken
    #: Logical units this request touched whose data was destroyed by a
    #: multi-failure (served via the accounted ``data-loss`` path).
    lost_units: typing.List[int] = field(default_factory=list)

    def __post_init__(self):
        if self.num_units < 1:
            raise ValueError("requests must cover at least one unit")
        if self.is_write and self.values is not None:
            if len(self.values) != self.num_units:
                raise ValueError(
                    f"{len(self.values)} values for {self.num_units} units"
                )

    @property
    def response_ms(self) -> float:
        return self.complete_ms - self.submit_ms

    @property
    def data_lost(self) -> bool:
        """True if any unit of this request hit destroyed data."""
        return bool(self.lost_units)

    def units(self) -> range:
        return range(self.logical_unit, self.logical_unit + self.num_units)
