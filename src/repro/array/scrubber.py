"""Background parity scrubbing.

A continuous-operation array cannot assume parity stays correct between
failures: latent sector errors or an interrupted parity update would
surface only during a reconstruction — exactly when they destroy data.
Production arrays therefore *scrub*: a background process sweeps every
parity stripe, reads all its units, recomputes the XOR, and repairs any
stale parity unit it finds.

The scrubber reuses the array's stripe locks so a scrub cycle never
interleaves with a user parity update, tags its accesses as
reconstruction-class traffic (so user-priority scheduling also protects
foreground work from scrubbing), and supports the same cycle throttle
as the reconstruction sweep.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.array import syndromes as gf
from repro.disk.drive import KIND_RECON

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import ArrayController


@dataclass
class ScrubReport:
    """Outcome of one full scrub pass."""

    stripes_checked: int = 0
    mismatches_found: int = 0
    repairs_written: int = 0
    duration_ms: float = 0.0
    mismatched_stripes: typing.List[int] = field(default_factory=list)
    #: Units whose scrub read completed with an error (latent sector
    #: errors surface here before any reconstruction needs them).
    media_errors_found: int = 0
    #: Errored units rebuilt from their stripe peers and rewritten.
    media_repairs: int = 0


class ParityScrubber:
    """Sweeps all parity stripes, verifying and repairing parity.

    Parameters
    ----------
    controller:
        The array; must be fault-free (scrubbing a degraded array would
        fight the reconstruction for the same stripes).
    cycle_delay_ms:
        Idle time between stripes, throttling the scrub's disk load.
    repair:
        When True (default), stale parity units are rewritten; when
        False the scrub only reports.
    """

    def __init__(
        self,
        controller: "ArrayController",
        cycle_delay_ms: float = 0.0,
        repair: bool = True,
    ):
        if cycle_delay_ms < 0:
            raise ValueError(f"negative scrub delay {cycle_delay_ms}")
        self.controller = controller
        self.cycle_delay_ms = cycle_delay_ms
        self.repair = repair
        self.report = ScrubReport()
        self._started = False

    def start(self):
        """Launch the scrub; returns the completion event.

        The completion event fires with the :class:`ScrubReport`.
        """
        if self._started:
            raise RuntimeError("scrub already started")
        if not self.controller.faults.fault_free:
            raise RuntimeError("scrub requires a fault-free array")
        self._started = True
        done = self.controller.env.event()
        self.controller.env.process(self._run(done), name="parity-scrub")
        return done

    def _run(self, done):
        controller = self.controller
        env = controller.env
        layout = controller.layout
        start_ms = env.now
        for stripe in range(controller.addressing.num_stripes):
            cycle_start_ms = env.now
            yield controller.locks.acquire(stripe)
            try:
                units = layout.stripe_units(stripe)
                unit_events = [
                    controller._disk_access(unit, is_write=False, kind=KIND_RECON)
                    for unit in units
                ]
                yield env.all_of(unit_events)
                self.report.stripes_checked += 1
                num_syndromes = layout.num_syndromes
                if controller._fault_enabled:
                    errored = [
                        index
                        for index, event in enumerate(unit_events)
                        if event.value.error is not None
                    ]
                    self.report.media_errors_found += len(errored)
                    if self.repair and 1 <= len(errored) <= num_syndromes:
                        # Unreadable unit(s) within the syndrome budget:
                        # rebuild each from the rest and rewrite it in
                        # place (the write remaps the latent extent).
                        yield from self._repair_errored(
                            stripe, [units[index] for index in errored]
                        )
                if controller.datastore is None:
                    continue
                data = [controller._ds_read(unit) for unit in units[:-num_syndromes]]
                checks = [(units[-num_syndromes], gf.p_of(data))]
                if num_syndromes == 2:
                    checks.append((units[-1], gf.q_of(data)))
                stripe_stale = False
                for check_unit, expected in checks:
                    if controller._ds_read(check_unit) == expected:
                        continue
                    stripe_stale = True
                    if self.repair:
                        yield controller._disk_access(
                            check_unit, is_write=True, kind=KIND_RECON
                        )
                        controller._ds_write(check_unit, expected)
                        self.report.repairs_written += 1
                if stripe_stale:
                    self.report.mismatches_found += 1
                    self.report.mismatched_stripes.append(stripe)
            finally:
                controller.locks.release(stripe)
            if controller.metrics is not None:
                controller.metrics.record_latency(
                    "scrub", env.now - cycle_start_ms, env.now
                )
            if self.cycle_delay_ms > 0:
                yield env.timeout(self.cycle_delay_ms)
        self.report.duration_ms = env.now - start_ms
        done.succeed(self.report)

    def _repair_errored(self, stripe: int, bad_units):
        """Rebuild errored unit(s) from the stripe's readable units.

        Single-syndrome stripes XOR the survivors; dual-syndrome
        stripes decode through :mod:`repro.array.syndromes`. Runs under
        the stripe lock the caller already holds.
        """
        controller = self.controller
        layout = controller.layout
        units = layout.stripe_units(stripe)
        if layout.num_syndromes == 1:
            bad = bad_units[0]
            rebuilt = controller._xor(
                controller._ds_read(unit) for unit in units if unit != bad
            )
            values = {bad: rebuilt}
        else:
            decoded, _erasures, ok = yield from controller._dual_stripe_decode(
                stripe, treat_dead=tuple(bad_units), kind=KIND_RECON
            )
            if not ok:
                return
            values = {
                bad: controller._dual_unit_value(decoded, bad)
                for bad in bad_units
            }
        for bad, rebuilt in values.items():
            yield controller._disk_access(bad, is_write=True, kind=KIND_RECON)
            controller._ds_write(bad, rebuilt)
            self.report.media_repairs += 1
