"""On-line spare pool management.

Section 8: "In an array that maintains a pool of on-line spare disks,
the replacement time can be kept sufficiently small that repair time is
essentially reconstruction time." This module provides that pool: a
fixed number of installed spares, an installation delay (electronic
switch-in for hot spares, human minutes-to-hours otherwise), and a
monitor process that reacts to a disk failure by installing a spare and
launching reconstruction automatically.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.faults.log import SPARES_EXHAUSTED
from repro.recon.algorithms import ReconAlgorithm
from repro.recon.sweeper import Reconstructor

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import ArrayController


@dataclass
class RepairRecord:
    """One completed repair handled by the spare pool."""

    failed_disk: int
    failed_at_ms: float
    replacement_installed_at_ms: float
    repair_completed_at_ms: float

    @property
    def replacement_delay_ms(self) -> float:
        return self.replacement_installed_at_ms - self.failed_at_ms

    @property
    def reconstruction_ms(self) -> float:
        return self.repair_completed_at_ms - self.replacement_installed_at_ms

    @property
    def total_repair_ms(self) -> float:
        return self.repair_completed_at_ms - self.failed_at_ms


class SparePool:
    """Automatic failure handling backed by a pool of spare disks.

    Parameters
    ----------
    controller:
        The array to protect.
    spares:
        Number of replacement disks on the shelf.
    replacement_delay_ms:
        Time from failure detection to a spare being switched in
        (0 for hot spares wired into the array).
    recon_workers, algorithm, cycle_delay_ms:
        Passed to the :class:`Reconstructor` launched for each repair.
    """

    def __init__(
        self,
        controller: "ArrayController",
        spares: int = 1,
        replacement_delay_ms: float = 0.0,
        recon_workers: int = 8,
        algorithm: typing.Optional[ReconAlgorithm] = None,
        cycle_delay_ms: float = 0.0,
    ):
        if spares < 0:
            raise ValueError("spare count cannot be negative")
        if replacement_delay_ms < 0:
            raise ValueError("replacement delay cannot be negative")
        self.controller = controller
        self.spares_remaining = spares
        self.replacement_delay_ms = replacement_delay_ms
        self.recon_workers = recon_workers
        self.algorithm = algorithm
        self.cycle_delay_ms = cycle_delay_ms
        self.repairs: typing.List[RepairRecord] = []
        #: Disks that failed while the shelf was empty. No repair was
        #: (or ever will be) launched for them: the array serves them
        #: degraded, via its syndromes, indefinitely. Restocking helps
        #: only *future* failures.
        self.degraded_disks: typing.List[int] = []
        #: Callback ``(RepairRecord) -> None`` invoked *synchronously*
        #: the instant a repair record lands in ``repairs`` — before
        #: the completion event fires. A FaultInjector installs its
        #: counter here so the two can never disagree, even when the
        #: simulation stops on the very tick a repair completes (an
        #: event-driven listener would still be waiting on the heap).
        self.on_repair: typing.Optional[
            typing.Callable[[RepairRecord], None]
        ] = None

    @property
    def exhausted(self) -> bool:
        """True once a failure has arrived with an empty shelf."""
        return bool(self.degraded_disks)

    def handle_failure(self, disk: int):
        """Fail ``disk`` and repair it from the pool.

        Returns an event firing with the :class:`RepairRecord` when the
        repair completes. If no spares remain, no repair is launched:
        the disk enters an explicit degraded-forever state (recorded in
        :attr:`degraded_disks` and the fault log) and the array keeps
        serving it through its syndromes; ``None`` is returned.

        Dual-syndrome arrays may call this for a second failure while a
        first repair is still sweeping — the two rebuilds proceed
        concurrently, each on its own disk.
        """
        controller = self.controller
        env = controller.env
        controller.fail_disk(disk)
        if self.spares_remaining < 1:
            self.degraded_disks.append(disk)
            if controller.fault_log is not None:
                controller.fault_log.record(
                    SPARES_EXHAUSTED,
                    env.now,
                    disk=disk,
                    detail=(
                        "no spares remaining: disk stays degraded; "
                        "restocking repairs only future failures"
                    ),
                )
            return None
        self.spares_remaining -= 1
        done = env.event()
        env.process(self._repair(disk, env.now, done), name=f"spare-repair-{disk}")
        return done

    def restock(self, count: int = 1) -> None:
        """Add spares to the shelf."""
        if count < 1:
            raise ValueError("restock count must be positive")
        self.spares_remaining += count

    def _repair(self, disk: int, failed_at_ms: float, done):
        controller = self.controller
        env = controller.env
        if self.replacement_delay_ms > 0:
            yield env.timeout(self.replacement_delay_ms)
        controller.install_replacement(disk)
        installed_at_ms = env.now
        if self.algorithm is not None:
            controller.algorithm = self.algorithm
        reconstructor = Reconstructor(
            controller,
            workers=self.recon_workers,
            cycle_delay_ms=self.cycle_delay_ms,
            disk=disk,
        )
        yield reconstructor.start()
        record = RepairRecord(
            failed_disk=disk,
            failed_at_ms=failed_at_ms,
            replacement_installed_at_ms=installed_at_ms,
            repair_completed_at_ms=env.now,
        )
        self.repairs.append(record)
        if self.on_repair is not None:
            self.on_repair(record)
        done.succeed(record)
