"""P+Q syndrome arithmetic over GF(2^64) for dual-syndrome stripes.

A dual-syndrome (RAID-6 style) stripe holds ``G - 2`` data units plus
two check units:

- **P** — the plain XOR of the data units (the paper's single parity);
- **Q** — the Reed-Solomon-style syndrome ``Q = sum x^j * d_j`` where
  the sum is XOR, ``d_j`` is the ``j``-th data unit, and ``x`` is the
  polynomial generator of GF(2^64).

Datastore stripe units are single 64-bit words, so the field is
GF(2^64) with the irreducible pentanomial

    f(x) = x^64 + x^4 + x^3 + x + 1

(the reduction constant ``0x1B``, the 64-bit analogue of the classic
GF(2^8) AES polynomial). With P and Q any **two** missing units of a
stripe are recoverable:

- one data unit via P (plain XOR), exactly as the single-syndrome code;
- one data unit with P also missing, via Q: ``d_a = Q' / x^a``;
- two data units via the 2x2 solve
  ``d_a = (Q' ^ x^b * P') / (x^a ^ x^b)``, ``d_b = P' ^ d_a``,
  where P' and Q' are the syndromes of the *missing* units (observed
  syndrome XOR the contribution of the surviving units);
- missing check units are recomputed from data.

Everything here is pure word arithmetic on Python ints; the small
per-position constants (``x^j`` and the pairwise inverses) are memoised
because stripe width ``G`` is tiny (<= 21) while inversion costs a full
square-and-multiply ladder.
"""

from __future__ import annotations

import typing

MASK64 = (1 << 64) - 1

#: Low coefficients of the reduction pentanomial x^64 + x^4 + x^3 + x + 1.
POLY_LOW = 0x1B

#: Full reduction polynomial (degree 64), for tests and gcd checks.
POLY = (1 << 64) | POLY_LOW


def xtime(a: int) -> int:
    """Multiply by ``x`` in GF(2^64)."""
    a <<= 1
    if a >> 64:
        a ^= POLY_LOW
    return a & MASK64


def mul(a: int, b: int) -> int:
    """Carry-less product of ``a`` and ``b`` reduced mod the pentanomial."""
    result = 0
    a &= MASK64
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a = xtime(a)
    return result


def power(a: int, exponent: int) -> int:
    """``a ** exponent`` in GF(2^64) by square-and-multiply."""
    result = 1
    base = a & MASK64
    while exponent:
        if exponent & 1:
            result = mul(result, base)
        base = mul(base, base)
        exponent >>= 1
    return result


def inv(a: int) -> int:
    """Multiplicative inverse: ``a^(2^64 - 2)`` (Fermat). ``a`` must be != 0."""
    if not a & MASK64:
        raise ZeroDivisionError("0 has no inverse in GF(2^64)")
    return power(a, (1 << 64) - 2)


_X_POWERS: typing.List[int] = [1]


def x_pow(j: int) -> int:
    """``x^j`` — memoised; ``j`` is a data-unit position (small)."""
    while len(_X_POWERS) <= j:
        _X_POWERS.append(xtime(_X_POWERS[-1]))
    return _X_POWERS[j]


_PAIR_INV: typing.Dict[typing.Tuple[int, int], int] = {}
_POS_INV: typing.Dict[int, int] = {}


def _inv_x_pow(pos: int) -> int:
    cached = _POS_INV.get(pos)
    if cached is None:
        cached = _POS_INV[pos] = inv(x_pow(pos))
    return cached


def _inv_pair(pos_a: int, pos_b: int) -> int:
    key = (pos_a, pos_b) if pos_a < pos_b else (pos_b, pos_a)
    cached = _PAIR_INV.get(key)
    if cached is None:
        cached = _PAIR_INV[key] = inv(x_pow(key[0]) ^ x_pow(key[1]))
    return cached


# ----------------------------------------------------------------------
# Syndrome computation and incremental update
# ----------------------------------------------------------------------
def p_of(values: typing.Iterable[int]) -> int:
    """P syndrome: XOR of the data units."""
    p = 0
    for value in values:
        p ^= value
    return p & MASK64


def q_of(values: typing.Iterable[int]) -> int:
    """Q syndrome: ``XOR of x^j * d_j`` over data positions ``j``."""
    q = 0
    for j, value in enumerate(values):
        q ^= mul(x_pow(j), value)
    return q


def q_update(old_q: int, pos: int, old_value: int, new_value: int) -> int:
    """New Q after data position ``pos`` changes from old to new value.

    The small-write analogue of the XOR parity update: Q changes by
    ``x^pos * (old ^ new)``.
    """
    return old_q ^ mul(x_pow(pos), (old_value ^ new_value) & MASK64)


# ----------------------------------------------------------------------
# Erasure recovery
# ----------------------------------------------------------------------
def recover_from_q(q_residual: int, pos: int) -> int:
    """Lost data unit at ``pos`` when P is also lost but Q survives.

    ``q_residual`` is the observed Q XOR the contributions of every
    surviving data unit, i.e. ``x^pos * d_pos``.
    """
    return mul(q_residual, _inv_x_pow(pos))


def recover_two(
    p_residual: int, q_residual: int, pos_a: int, pos_b: int
) -> typing.Tuple[int, int]:
    """Two lost data units at ``pos_a`` and ``pos_b`` via P and Q.

    Residuals carry only the missing units' contributions:
    ``P' = d_a ^ d_b`` and ``Q' = x^a d_a ^ x^b d_b``, so
    ``d_a = (Q' ^ x^b P') / (x^a ^ x^b)`` and ``d_b = P' ^ d_a``.
    """
    if pos_a == pos_b:
        raise ValueError("the two erased positions must differ")
    d_a = mul(q_residual ^ mul(x_pow(pos_b), p_residual), _inv_pair(pos_a, pos_b))
    return d_a, (p_residual ^ d_a) & MASK64


def recover_stripe_data(
    data: typing.Sequence[typing.Optional[int]],
    p: typing.Optional[int],
    q: typing.Optional[int],
) -> typing.List[int]:
    """Fill in missing data units of one dual-syndrome stripe.

    ``data`` lists the data units in position order with ``None`` for
    lost units; ``p``/``q`` are the check units or ``None`` when lost.
    At most two units (data or check) may be missing in total. Returns
    the complete data vector; raises ValueError if under-determined.
    """
    missing = [j for j, value in enumerate(data) if value is None]
    erasures = len(missing) + (p is None) + (q is None)
    if erasures > 2:
        raise ValueError(f"{erasures} erasures exceed dual-syndrome tolerance")
    if not missing:
        return [typing.cast(int, value) for value in data]
    if len(missing) == 1:
        j = missing[0]
        known = [(i, v) for i, v in enumerate(data) if v is not None]
        if p is not None:
            value = p_of([v for _i, v in known]) ^ p
        else:
            assert q is not None  # erasure budget guarantees it
            residual = q
            for i, v in known:
                residual ^= mul(x_pow(i), v)
            value = recover_from_q(residual, j)
        rebuilt = list(data)
        rebuilt[j] = value & MASK64
        return [typing.cast(int, v) for v in rebuilt]
    # Two data units missing: both checks must be present.
    assert p is not None and q is not None  # erasure budget guarantees it
    j_a, j_b = missing
    p_residual = p
    q_residual = q
    for i, v in enumerate(data):
        if v is not None:
            p_residual ^= v
            q_residual ^= mul(x_pow(i), v)
    d_a, d_b = recover_two(p_residual & MASK64, q_residual, j_a, j_b)
    rebuilt = list(data)
    rebuilt[j_a] = d_a
    rebuilt[j_b] = d_b
    return [typing.cast(int, v) for v in rebuilt]
