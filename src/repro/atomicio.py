"""Atomic JSON file persistence.

One idiom, shared by every subsystem that persists JSON next to
concurrent readers (the sweep result cache, the job service's job
store and campaign checkpoints): serialize to a temp file in the
target directory, then ``os.replace`` onto the final path. ``replace``
is atomic on POSIX and Windows, so a reader opening the path sees
either the complete previous document or the complete new one — never
a torn write — and a crash mid-write leaves the old document intact.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import typing


def atomic_write_json(
    path: typing.Union[str, os.PathLike],
    document: typing.Any,
    *,
    sort_keys: bool = True,
) -> None:
    """Atomically (re)write ``path`` with ``document`` as JSON.

    Parent directories are created as needed. On any failure the temp
    file is removed and the original file (if any) is untouched.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=path.parent,
        prefix=path.name + ".",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(document, handle, sort_keys=sort_keys)
            handle.write("\n")
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def read_json(path: typing.Union[str, os.PathLike]) -> typing.Optional[typing.Any]:
    """Parse ``path`` as JSON; None if missing, unreadable, or corrupt.

    Tolerant by design: concurrent-writer protocols treat a bad read as
    "not there yet", the same way the sweep cache treats a corrupt
    entry as a miss.
    """
    try:
        return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
