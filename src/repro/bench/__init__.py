"""Continuous benchmarking harness: ``python -m repro bench``.

The ROADMAP's north star is a simulator that runs as fast as the
hardware allows; this package is how that claim stays measured instead
of asserted. It times the discrete-event kernel in isolation
(*microbenchmarks*: events dispatched per wall-clock second), the
standard 21-disk array scenario (*macrobenchmarks*: simulated I/Os per
second), and the end-to-end sweep/campaign drivers (wall-clock), then
emits one machine-readable ``BENCH_<date>.json`` document with a full
environment fingerprint (Python, CPU, commit) so results from
different machines and commits can be compared honestly.

Layers:

- :mod:`repro.bench.envinfo` — host/interpreter/commit fingerprint;
- :mod:`repro.bench.micro`   — bare-kernel event-throughput loops;
- :mod:`repro.bench.macro`   — scenario, sweep, and campaign timings;
- :mod:`repro.bench.schema`  — the ``repro-bench/1`` document schema
  and its validator;
- :mod:`repro.bench.compare` — baseline regression checking (the CI
  perf gate);
- :mod:`repro.bench.harness` — orchestration: run suites, assemble and
  write the document;
- :mod:`repro.bench.cli`     — the ``repro bench`` argument surface.

Benchmarks draw no random numbers outside fixed-seed scenario configs
and attach no tracers, so the simulated work is bit-identical run to
run — only the wall-clock varies.
"""

from repro.bench.compare import BaselineCheck, check_against_baseline
from repro.bench.envinfo import environment_fingerprint
from repro.bench.harness import BenchOptions, run_benchmarks, write_document
from repro.bench.schema import SCHEMA_ID, validate_document

__all__ = [
    "BaselineCheck",
    "BenchOptions",
    "SCHEMA_ID",
    "check_against_baseline",
    "environment_fingerprint",
    "run_benchmarks",
    "validate_document",
    "write_document",
]
