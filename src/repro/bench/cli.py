"""``python -m repro bench``: run benchmarks, write/check documents.

Typical invocations::

    python -m repro bench                       # run, print, write BENCH_<date>.json
    python -m repro bench --check benchmarks/bench-baseline.json
    python -m repro bench --write-baseline benchmarks/bench-baseline.json
    python -m repro bench --only kernel.timeout_churn --repeat 5

``--check`` is the CI perf gate: exit status 1 when any throughput
metric regressed more than ``--tolerance`` (default 25%) below the
baseline document. To re-baseline intentionally, run with
``--write-baseline`` and commit the refreshed file.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    check_against_baseline,
    fingerprint_mismatch,
)
from repro.bench.harness import (
    BenchOptions,
    benchmark_names,
    default_output_path,
    format_results,
    load_document,
    run_benchmarks,
    write_document,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Benchmark the event kernel (events/s), the standard 21-disk "
            "scenario (I/Os per second), and the sweep/campaign drivers "
            "(wall-clock); emit a machine-readable BENCH_<date>.json."
        ),
    )
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "small", "paper"],
        help="scale preset for the macro benchmarks (default: tiny)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        metavar="N",
        help="repeats per benchmark; the fastest is recorded (default: 3)",
    )
    parser.add_argument(
        "--only",
        metavar="NAME[,NAME...]",
        default=None,
        help=f"run a subset; choose from: {', '.join(benchmark_names())}",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output document path (default: ./BENCH_<date>.json)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="do not write a document; print results only",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against a baseline document; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help="allowed throughput drop before --check fails (default: 0.25)",
    )
    parser.add_argument(
        "--disk-kernel",
        default=None,
        choices=["auto", "scalar", "vectorized"],
        help=(
            "disk service-time kernel for this run (sets REPRO_DISK_KERNEL; "
            "both paths are bit-identical, this only moves wall-clock)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help=(
            "also write the results to PATH as the new baseline "
            "(the documented re-baselining escape hatch)"
        ),
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.disk_kernel:
        # Benchmarks read the switch through kernel_mode(); setting the
        # environment variable scopes the choice to this process.
        import os

        from repro.disk.vectorized import ENV_VAR

        os.environ[ENV_VAR] = args.disk_kernel
    only = tuple(args.only.split(",")) if args.only else None
    try:
        options = BenchOptions(scale=args.scale, repeat=args.repeat, only=only)
    except ValueError as error:
        print(f"repro bench: {error}", file=sys.stderr)
        return 2
    print(f"running {len(options.selected())} benchmark(s), "
          f"scale={options.scale}, repeat={options.repeat} ...")
    document = run_benchmarks(options, log=print)
    print()
    print(format_results(document))
    if not args.no_write:
        out_path = args.out or default_output_path()
        written = write_document(document, out_path)
        print(f"\n[bench document written to {written}]")
    if args.write_baseline:
        written = write_document(document, args.write_baseline)
        print(f"[baseline written to {written}]")
    if args.check:
        try:
            baseline = load_document(args.check)
        except (OSError, ValueError) as error:
            print(f"repro bench: cannot load baseline {args.check}: {error}",
                  file=sys.stderr)
            return 2
        notice = fingerprint_mismatch(
            document["environment"], baseline.get("environment", {})
        )
        if notice:
            print(f"repro bench: {notice}", file=sys.stderr)
        check = check_against_baseline(document, baseline, tolerance=args.tolerance)
        print()
        print(check.summary())
        if not check.ok:
            print(
                "\nIf this slowdown is intentional, re-baseline with:\n"
                f"  python -m repro bench --scale {args.scale} "
                f"--write-baseline {args.check}\n"
                "and commit the refreshed baseline (see docs/architecture.md).",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(main())
