"""Baseline regression checking: the CI perf gate's decision logic.

Compares a freshly measured bench document against a checked-in
baseline document and fails when any throughput metric regressed by
more than the tolerance (25% by default — wide enough to absorb shared
CI-runner noise, tight enough to catch a real hot-path regression).

Escape hatch: when an intentional change moves the floor (slower but
correct, or a faster machine re-baselines the numbers), regenerate the
baseline with ``python -m repro bench --scale tiny --write-baseline
benchmarks/bench-baseline.json`` and commit the result — the PR diff
then shows the old and new floors side by side for review.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.bench.schema import throughput_metrics, validate_document

DEFAULT_TOLERANCE = 0.25

#: Environment fields whose disagreement makes a throughput comparison
#: apples-to-oranges: a different CPU model, core count, or interpreter
#: version shifts every rate without any code changing.
FINGERPRINT_FIELDS = ("cpu", "cpu_count", "python")


def fingerprint_mismatch(
    current_env: typing.Mapping[str, typing.Any],
    baseline_env: typing.Mapping[str, typing.Any],
) -> typing.Optional[str]:
    """One-line notice when the baseline came from a different machine.

    Returns ``None`` when the comparable fields agree, else a single
    line naming each differing field as ``field: baseline -> current``.
    Informational only — the gate's tolerance still decides pass/fail —
    but the notice tells a reader *why* numbers may drift: the baseline
    was recorded under a different cpu/cpu_count/python.
    """
    differing = [
        f"{field}: {baseline_env.get(field)!r} -> {current_env.get(field)!r}"
        for field in FINGERPRINT_FIELDS
        if baseline_env.get(field) != current_env.get(field)
    ]
    if not differing:
        return None
    return (
        "note: baseline environment differs from this machine ("
        + "; ".join(differing)
        + ") — rate comparisons may reflect hardware, not code"
    )


@dataclass
class BaselineCheck:
    """Outcome of one baseline comparison."""

    tolerance: float
    regressions: typing.List[str] = field(default_factory=list)
    improvements: typing.List[str] = field(default_factory=list)
    missing: typing.List[str] = field(default_factory=list)
    lines: typing.List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def summary(self) -> str:
        verdict = "OK" if self.ok else "REGRESSED"
        return "\n".join(
            self.lines
            + [
                f"perf gate: {verdict} "
                f"({len(self.regressions)} regression(s), "
                f"{len(self.improvements)} improvement(s), "
                f"tolerance {self.tolerance:.0%})"
            ]
        )


def check_against_baseline(
    current: typing.Mapping[str, typing.Any],
    baseline: typing.Mapping[str, typing.Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BaselineCheck:
    """Compare throughput metrics of ``current`` against ``baseline``.

    Both documents are schema-validated first. A metric present in the
    baseline but absent from the current run counts as a failure (a
    silently dropped benchmark must not pass the gate); metrics new in
    the current run are reported but do not fail.
    """
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    validate_document(current)
    validate_document(baseline)
    check = BaselineCheck(tolerance=tolerance)
    current_rates = throughput_metrics(current["results"])
    baseline_rates = throughput_metrics(baseline["results"])
    for name in sorted(baseline_rates):
        base = baseline_rates[name]
        if name not in current_rates:
            check.missing.append(name)
            check.lines.append(f"  MISSING  {name}: in baseline but not measured")
            continue
        now = current_rates[name]
        if base <= 0:
            check.lines.append(f"  SKIP     {name}: baseline rate is zero")
            continue
        ratio = now / base
        delta = ratio - 1.0
        label = f"{name}: {now:,.0f}/s vs baseline {base:,.0f}/s ({delta:+.1%})"
        if ratio < 1.0 - tolerance:
            check.regressions.append(name)
            check.lines.append(f"  REGRESS  {label}")
        elif ratio > 1.0 + tolerance:
            check.improvements.append(name)
            check.lines.append(f"  FASTER   {label} — consider re-baselining")
        else:
            check.lines.append(f"  ok       {label}")
    for name in sorted(set(current_rates) - set(baseline_rates)):
        check.lines.append(f"  NEW      {name}: {current_rates[name]:,.0f}/s (no baseline)")
    return check
