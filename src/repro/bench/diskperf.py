"""Disk-kernel microbenchmarks: service-time evaluations per second.

``disk.service_batch`` times the batch service-time kernel on the SPTF
pricing shape — a whole queue of candidate requests evaluated from one
head position and platter phase — and reports both paths:

- ``requests_per_s``        — the vectorized numpy batch
  (:func:`repro.disk.vectorized.service_times_vectorized`);
- ``scalar_requests_per_s`` — the reference loop
  (:func:`repro.disk.vectorized.service_times_scalar`).

Both paths price the identical deterministic workload (no randomness is
drawn), and they return bit-identical times, so the ratio between the
two rates is a pure kernel speedup with no workload noise in it. The
default batch size (256) is the deep-queue shape a saturated SPTF drive
sees — past the ``auto`` switch's measured scalar/vectorized crossover
(:data:`repro.disk.vectorized.AUTO_THRESHOLD`), which reporting both
rates lets the trend job keep honest.
"""

from __future__ import annotations

# simlint: disable-file=DET001 (wall-clock measurement IS the benchmark deliverable; the priced workload is a fixed deterministic batch)

import time
import typing

from repro.disk.specs import IBM_0661
from repro.disk.vectorized import (
    model_for,
    service_times_scalar,
    service_times_vectorized,
)


class _Candidate(typing.NamedTuple):
    """The two attributes the kernel reads off a queued request."""

    start_sector: int
    sector_count: int


def _workload(model, batch_size: int) -> typing.List[_Candidate]:
    """A deterministic queue spanning seeks, phases, and track splits."""
    total = model.spec.total_sectors
    spt = model.sectors_per_track
    batch = []
    for index in range(batch_size):
        # Stride through the address space so candidates spread across
        # cylinders (varied seeks) and rotational phases; every third
        # request crosses a track boundary (multi-run chains).
        start = (index * 7919 * spt + index * 13) % (total - 4 * spt)
        count = (spt + 3) if index % 3 == 0 else 1 + (index % 7)
        batch.append(_Candidate(start, count))
    return batch


def service_batch(
    batch_size: int = 256, evaluations: int = 200
) -> typing.Dict[str, float]:
    """Price ``batch_size`` candidates ``evaluations`` times, both paths."""
    model = model_for(IBM_0661)
    batch = _workload(model, batch_size)
    # Warm the split-by-track cache outside the timed regions so both
    # paths are timed against the same warm state they see in a run.
    service_times_scalar(model, 0, 0.0, batch)

    started = time.perf_counter()
    for index in range(evaluations):
        service_times_vectorized(model, index % 500, float(index) * 1.7, batch)
    vector_s = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(evaluations):
        service_times_scalar(model, index % 500, float(index) * 1.7, batch)
    scalar_s = time.perf_counter() - started

    priced = batch_size * evaluations
    return {
        "requests": priced,
        "batch_size": batch_size,
        "wall_s": vector_s,
        "scalar_wall_s": scalar_s,
        "requests_per_s": priced / vector_s if vector_s > 0 else 0.0,
        "scalar_requests_per_s": priced / scalar_s if scalar_s > 0 else 0.0,
    }


#: name -> zero-argument benchmark callable (defaults are the suite).
DISK_BENCHMARKS: typing.Dict[str, typing.Callable[[], typing.Dict[str, float]]] = {
    "disk.service_batch": service_batch,
}
