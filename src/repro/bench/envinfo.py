"""Environment fingerprinting for benchmark documents.

A throughput number is meaningless without the machine and code
revision it was measured on, so every bench document embeds this
fingerprint. All probes are best-effort: a missing ``git`` binary or
an unreadable ``/proc/cpuinfo`` degrades a field to ``None`` rather
than failing the run.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import typing


def _cpu_model() -> typing.Optional[str]:
    """Human-readable CPU model name, if the platform exposes one."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or None


def _git(args: typing.List[str]) -> typing.Optional[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_fingerprint() -> typing.Dict[str, typing.Any]:
    """The JSON-safe ``environment`` block of a bench document."""
    commit = _git(["rev-parse", "HEAD"])
    status = _git(["status", "--porcelain"])
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "commit": commit,
        # None when git itself was unavailable; a bool otherwise.
        "dirty": (bool(status) if commit is not None else None),
        "argv": list(sys.argv),
    }
