"""Benchmark orchestration: run suites, assemble and write documents."""

from __future__ import annotations

# simlint: disable-file=DET001 (document timestamps and output filenames are measurement metadata, never simulation inputs)

import datetime
import json
import pathlib
import typing
from dataclasses import dataclass

from repro.bench.diskperf import DISK_BENCHMARKS
from repro.bench.envinfo import environment_fingerprint
from repro.bench.layoutperf import LAYOUT_BENCHMARKS
from repro.bench.macro import MACRO_BENCHMARKS
from repro.bench.micro import MICRO_BENCHMARKS
from repro.bench.schema import SCHEMA_ID, validate_document


def benchmark_names() -> typing.List[str]:
    """Every runnable benchmark: micro, then disk, then layout, then macro."""
    return (
        list(MICRO_BENCHMARKS)
        + list(DISK_BENCHMARKS)
        + list(LAYOUT_BENCHMARKS)
        + list(MACRO_BENCHMARKS)
    )


@dataclass(frozen=True)
class BenchOptions:
    """One ``repro bench`` invocation's policy."""

    scale: str = "tiny"
    repeat: int = 3
    #: Subset of benchmark names to run; None runs everything.
    only: typing.Optional[typing.Tuple[str, ...]] = None

    def __post_init__(self):
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if self.only is not None:
            known = set(benchmark_names())
            unknown = sorted(set(self.only) - known)
            if unknown:
                raise ValueError(
                    f"unknown benchmark(s) {unknown}; choose from {sorted(known)}"
                )

    def selected(self) -> typing.List[str]:
        names = benchmark_names()
        if self.only is None:
            return names
        return [name for name in names if name in self.only]


def _run_one(name: str, scale: str) -> typing.Dict[str, float]:
    if name in MICRO_BENCHMARKS:
        return MICRO_BENCHMARKS[name]()
    if name in DISK_BENCHMARKS:
        return DISK_BENCHMARKS[name]()
    if name in LAYOUT_BENCHMARKS:
        return LAYOUT_BENCHMARKS[name]()
    return MACRO_BENCHMARKS[name](scale)


def run_benchmarks(
    options: typing.Optional[BenchOptions] = None,
    log: typing.Optional[typing.Callable[[str], None]] = None,
) -> typing.Dict[str, typing.Any]:
    """Run the selected suites and return a schema-valid document.

    Each benchmark runs ``options.repeat`` times and the fastest
    repeat (minimum wall-clock) is recorded: the simulated work is
    deterministic, so the fastest run is the one least disturbed by
    the host, which is the quantity worth tracking over commits.
    """
    options = options or BenchOptions()
    log = log or (lambda line: None)
    results: typing.Dict[str, typing.Dict[str, float]] = {}
    for name in options.selected():
        best: typing.Optional[typing.Dict[str, float]] = None
        for attempt in range(options.repeat):
            entry = _run_one(name, options.scale)
            log(
                f"  {name} [{attempt + 1}/{options.repeat}] "
                f"wall={entry['wall_s']:.3f}s"
            )
            if best is None or entry["wall_s"] < best["wall_s"]:
                best = entry
        results[name] = best
    document = {
        "schema": SCHEMA_ID,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "environment": environment_fingerprint(),
        "scale": options.scale,
        "repeat": options.repeat,
        "results": results,
    }
    validate_document(document)
    return document


def default_output_path(directory: typing.Union[str, pathlib.Path] = ".") -> pathlib.Path:
    """``BENCH_<YYYY-MM-DD>.json`` under ``directory``."""
    stamp = datetime.date.today().isoformat()
    return pathlib.Path(directory) / f"BENCH_{stamp}.json"


def write_document(
    document: typing.Mapping[str, typing.Any],
    path: typing.Union[str, pathlib.Path],
) -> pathlib.Path:
    """Validate and write ``document`` as canonical, diff-friendly JSON."""
    validate_document(document)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_document(path: typing.Union[str, pathlib.Path]) -> typing.Dict[str, typing.Any]:
    """Read and validate a bench document from disk."""
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    validate_document(document)
    return document


def format_results(document: typing.Mapping[str, typing.Any]) -> str:
    """Human-readable table of one document's results."""
    lines = [
        f"bench {document['schema']} @ {document['generated_at']}",
        f"scale={document['scale']} repeat={document['repeat']} "
        f"python={document['environment'].get('python')} "
        f"commit={(document['environment'].get('commit') or 'unknown')[:12]}",
    ]
    for name, entry in document["results"].items():
        rates = [
            f"{field}={value:,.0f}"
            for field, value in entry.items()
            if field.endswith("_per_s")
        ]
        lines.append(
            f"  {name:24s} wall={entry['wall_s']:.3f}s  " + "  ".join(rates)
        )
    return "\n".join(lines)
