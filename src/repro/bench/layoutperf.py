"""Layout-mapping benchmarks: address translations per wall-clock second.

The arithmetic layouts exist so that a thousand-disk array can map any
block in O(1) integer work with no materialized table. These benchmarks
measure both halves of that claim on a C=1009, G=10 permutation-striping
layout (the first prime above 1000, the paper's "large array" regime):

- ``layout.l2p_xlate``   — ``logical_to_physical`` throughput over a
  strided scan of the logical space (strided so consecutive calls never
  share a parity stripe and nothing is amortized by locality);
- ``layout.large_c_footprint`` — peak bytes allocated while building
  the layout and translating a fixed batch, via ``tracemalloc``. No
  ``*_per_s`` field: footprint is reported for the record, not gated,
  because allocator behaviour varies across interpreter versions.

The translation workload is a fixed arithmetic sequence — no randomness
— so wall-clock is the only variable being measured.
"""

from __future__ import annotations

# simlint: disable-file=DET001 (wall-clock measurement IS the benchmark deliverable; the translation workload itself is a fixed arithmetic sequence)

import time
import tracemalloc
import typing

from repro.layout.arithmetic import PermutationStripingLayout

#: The benchmark array: first prime width above 1000, the paper's G=10.
_NUM_DISKS = 1009
_STRIPE_SIZE = 10

#: Stride through the logical space coprime to everything in sight, so
#: the scan touches rotations and stripes in a shuffled-looking order
#: without drawing random numbers.
_STRIDE = 7919


def _build() -> PermutationStripingLayout:
    return PermutationStripingLayout(_NUM_DISKS, _STRIPE_SIZE)


def l2p_xlate(translations: int = 200_000) -> typing.Dict[str, float]:
    """Forward-map ``translations`` strided logical units on C=1009."""
    layout = _build()
    span = layout.data_units_per_table
    started = time.perf_counter()
    logical = 0
    sink = 0
    for _ in range(translations):
        address = layout.logical_to_physical(logical)
        sink += address.disk
        logical = (logical + _STRIDE) % span
    wall_s = time.perf_counter() - started
    return {
        "translations": translations,
        "checksum": sink,
        "wall_s": wall_s,
        "translations_per_s": (translations / wall_s) if wall_s > 0 else 0.0,
    }


def large_c_footprint(translations: int = 20_000) -> typing.Dict[str, float]:
    """Peak bytes allocated building + exercising the C=1009 layout.

    A table for this geometry would hold ~10M UnitAddress objects; the
    arithmetic layout's only O(C) state is its modular-inverse list, so
    the peak should stay within a few hundred kilobytes.
    """
    tracemalloc.start()
    started = time.perf_counter()
    layout = _build()
    logical = 0
    span = layout.data_units_per_table
    for _ in range(translations):
        address = layout.logical_to_physical(logical)
        layout.physical_to_logical(address.disk, address.offset)
        logical = (logical + _STRIDE) % span
    wall_s = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "translations": translations,
        "peak_bytes": float(peak),
        "wall_s": wall_s,
    }


#: name -> zero-argument benchmark callable (defaults are the suite).
LAYOUT_BENCHMARKS: typing.Dict[str, typing.Callable[[], typing.Dict[str, float]]] = {
    "layout.l2p_xlate": l2p_xlate,
    "layout.large_c_footprint": large_c_footprint,
}
