"""Macrobenchmarks: the simulator doing its real job, timed.

Three shapes, mirroring how the repository is actually exercised:

- ``macro.fault_free``  — the standard 21-disk array (paper Table 5-1:
  C=21, G=5, cvscan, 50/50 read/write Poisson traffic) run fault-free
  for one steady-state window. Reported as *simulated disk I/Os per
  wall-clock second* (and user requests/s), the number every figure
  reproduction is bound by.
- ``macro.sptf``        — the same array under the SPTF scheduler,
  which prices its whole queue through the batch service-time kernel
  (:mod:`repro.disk.vectorized`) on every pop: the macro shape that
  covers the vectorized disk path.
- ``macro.sweep``       — a small multi-point sweep through
  :func:`repro.sweep.run_sweep` with caching off: the figure-driver
  shape, wall-clock only.
- ``macro.campaign``    — one Monte Carlo fault-campaign point with
  stochastic failures and a spare pool: the reliability-experiment
  shape, wall-clock only.

The scenario configs are fixed-seed, so the simulated work is
bit-identical between runs and commits; only wall-clock varies.
"""

from __future__ import annotations

# simlint: disable-file=DET001 (wall-clock measurement IS the benchmark deliverable; scenario configs are fixed-seed so simulated work is bit-identical)

import time
import typing

from repro.experiments.builders import PAPER_NUM_DISKS
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.sweep import SweepOptions, SweepSpec, run_sweep

#: The standard macro scenario: the paper's array at the declustering
#: ratio its reconstruction chapters dwell on, driven at a rate that
#: keeps the disks busy without saturating the tiny scale.
STANDARD_STRIPE_SIZE = 5
STANDARD_RATE_PER_S = 210.0
STANDARD_READ_FRACTION = 0.5


def standard_config(scale: str = "tiny") -> ScenarioConfig:
    """The fault-free 21-disk scenario every bench document reports."""
    return ScenarioConfig(
        stripe_size=STANDARD_STRIPE_SIZE,
        user_rate_per_s=STANDARD_RATE_PER_S,
        read_fraction=STANDARD_READ_FRACTION,
        mode="fault-free",
        num_disks=PAPER_NUM_DISKS,
        scale=scale,
    )


def fault_free(scale: str = "tiny") -> typing.Dict[str, float]:
    """Time the standard fault-free scenario; I/Os measured exactly.

    The scenario runs through :func:`run_scenario` with metrics
    collection off — the same code path the sweep workers take.
    """
    config = standard_config(scale)
    started = time.perf_counter()
    result = run_scenario(config, collect_metrics=False)
    wall_s = time.perf_counter() - started
    # Disk I/O count is derived from the access-path mix, which the
    # run's metrics would also report; rather than pay the metrics
    # overhead inside the timed region, recount in an untimed pass.
    counted = run_scenario(config, collect_metrics=True)
    disk_ios = sum(row["completed"] for row in counted.metrics["disks"])
    return {
        "requests": result.requests_completed,
        "simulated_ms": result.simulated_ms,
        "disk_ios": disk_ios,
        "wall_s": wall_s,
        "requests_per_s": result.requests_completed / wall_s if wall_s > 0 else 0.0,
        "ios_per_s": disk_ios / wall_s if wall_s > 0 else 0.0,
    }


def sptf(scale: str = "tiny") -> typing.Dict[str, float]:
    """The standard scenario under SPTF: batch-kernel pricing, timed.

    Driven harder than the cvscan standard so queues actually build —
    SPTF prices every queued candidate per pop, and with deep queues
    the ``auto`` kernel switch routes those batches through numpy.
    """
    config = ScenarioConfig(
        stripe_size=STANDARD_STRIPE_SIZE,
        user_rate_per_s=2.0 * STANDARD_RATE_PER_S,
        read_fraction=STANDARD_READ_FRACTION,
        mode="fault-free",
        num_disks=PAPER_NUM_DISKS,
        policy="sptf",
        scale=scale,
    )
    started = time.perf_counter()
    result = run_scenario(config, collect_metrics=False)
    wall_s = time.perf_counter() - started
    return {
        "requests": result.requests_completed,
        "simulated_ms": result.simulated_ms,
        "wall_s": wall_s,
        "requests_per_s": result.requests_completed / wall_s if wall_s > 0 else 0.0,
    }


def sweep(scale: str = "tiny") -> typing.Dict[str, float]:
    """A 4-point fault-free sweep, serial, cache off: wall-clock."""
    spec = SweepSpec(
        axes=[
            ("stripe_size", (3, 5)),
            ("user_rate_per_s", (105.0, 210.0)),
        ],
        base=dict(
            read_fraction=STANDARD_READ_FRACTION,
            mode="fault-free",
            num_disks=PAPER_NUM_DISKS,
            scale=scale,
        ),
    )
    started = time.perf_counter()
    outcome = run_sweep(spec, SweepOptions(jobs=1, cache=None, progress=False))
    wall_s = time.perf_counter() - started
    points = len(outcome.results)
    return {
        "points": points,
        "wall_s": wall_s,
        "points_per_s": points / wall_s if wall_s > 0 else 0.0,
    }


def campaign(scale: str = "tiny") -> typing.Dict[str, float]:
    """One accelerated fault-campaign trial: wall-clock."""
    from repro.experiments.campaign import MICRO, campaign_profile

    config = ScenarioConfig(
        stripe_size=STANDARD_STRIPE_SIZE,
        user_rate_per_s=0.0,
        read_fraction=STANDARD_READ_FRACTION,
        mode="campaign",
        recon_workers=8,
        num_disks=PAPER_NUM_DISKS,
        scale=MICRO,
        fault_profile=campaign_profile(seed=1992),
        spares=512,
        replacement_delay_ms=1000.0,
        mission_ms=12.0 * 3_600_000.0,
    )
    started = time.perf_counter()
    result = run_scenario(config, collect_metrics=False)
    wall_s = time.perf_counter() - started
    return {
        "simulated_ms": result.simulated_ms,
        "wall_s": wall_s,
        "simulated_hours_per_s": (
            (result.simulated_ms / 3_600_000.0) / wall_s if wall_s > 0 else 0.0
        ),
    }


#: name -> benchmark callable taking the scale preset name.
MACRO_BENCHMARKS: typing.Dict[str, typing.Callable[[str], typing.Dict[str, float]]] = {
    "macro.fault_free": fault_free,
    "macro.sptf": sptf,
    "macro.sweep": sweep,
    "macro.campaign": campaign,
}
