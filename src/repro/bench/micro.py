"""Bare-kernel microbenchmarks: events dispatched per wall-clock second.

Each benchmark builds a fresh :class:`~repro.sim.Environment`, runs a
fixed deterministic event workload to completion, and reports how many
events the kernel dispatched and how long that took. The workloads are
chosen to isolate the three hot paths of the kernel:

- ``kernel.timeout_churn``   — ``Timeout`` scheduling + process resume
  (the shape of every disk service and arrival delay);
- ``kernel.event_relay``     — bare ``Event.succeed`` and callback
  dispatch (the shape of request completion hand-offs);
- ``kernel.condition_fanin`` — ``AllOf``/``AnyOf`` fan-in (the shape of
  parallel stripe-unit accesses joining);
- ``kernel.cohort_dispatch`` — wide same-instant cohorts on both lanes
  (the shape of batch completions landing on one tick, and the workload
  the cohort-batched dispatch loop exists to amortize).

No random numbers are drawn and no tracer is attached: the simulated
event sequence is bit-identical on every run, so wall-clock is the
only variable being measured.
"""

from __future__ import annotations

# simlint: disable-file=DET001 (wall-clock measurement IS the benchmark deliverable; the simulated workload itself is fixed and draws no randomness)

import time
import typing

from repro.sim.environment import Environment

#: Spread of delays the churn benchmark cycles through, so the heap
#: does genuine out-of-order work rather than FIFO appends.
_CHURN_DELAYS = (3.0, 1.0, 7.0, 2.0, 5.0)


def _measure(build_and_run: typing.Callable[[], Environment]) -> typing.Dict[str, float]:
    """Time one workload; events = every kernel dispatch it caused."""
    started = time.perf_counter()
    env = build_and_run()
    wall_s = time.perf_counter() - started
    # The schedule drained, so sequence numbers issued == events
    # dispatched; counting here keeps the timed loop instrumentation-free.
    events = env._seq
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_s": (events / wall_s) if wall_s > 0 else 0.0,
    }


def timeout_churn(processes: int = 100, iterations: int = 1500) -> typing.Dict[str, float]:
    """Processes looping on staggered timeouts."""

    def body(env: Environment, offset: int):
        delays = _CHURN_DELAYS
        for index in range(iterations):
            yield env.timeout(delays[(index + offset) % len(delays)])

    def build_and_run() -> Environment:
        env = Environment()
        for offset in range(processes):
            env.process(body(env, offset), name=f"churn-{offset}")
        env.run()
        return env

    return _measure(build_and_run)


def event_relay(pairs: int = 25, laps: int = 2000) -> typing.Dict[str, float]:
    """Ping-pong pairs passing bare events: succeed + callback dispatch.

    Each lap is two ``Event.succeed`` calls and two process resumes,
    with no timeouts involved — the pure event hand-off path.
    """

    def pinger(env: Environment, wake_box, reply_box):
        for lap in range(laps):
            reply = reply_box[0] = env.event()
            wake_box[0].succeed(lap)
            yield reply
        wake_box[0].succeed(None)

    def ponger(env: Environment, wake_box, reply_box):
        while True:
            value = yield wake_box[0]
            if value is None:
                return
            wake_box[0] = env.event()
            reply_box[0].succeed(value)

    def build_and_run() -> Environment:
        env = Environment()
        for _ in range(pairs):
            wake_box = [env.event()]
            reply_box: typing.List = [None]
            env.process(ponger(env, wake_box, reply_box), name="ponger")
            env.process(pinger(env, wake_box, reply_box), name="pinger")
        env.run()
        return env

    return _measure(build_and_run)


def condition_fanin(iterations: int = 6000, fan: int = 8) -> typing.Dict[str, float]:
    """AllOf/AnyOf joins over timeout fans, alternating each iteration."""

    def body(env: Environment):
        for index in range(iterations):
            fans = [env.timeout(float(1 + (index + k) % 5)) for k in range(fan)]
            if index % 2:
                yield env.any_of(fans)
            else:
                yield env.all_of(fans)

    def build_and_run() -> Environment:
        env = Environment()
        env.process(body(env), name="fanin")
        env.run()
        return env

    return _measure(build_and_run)


def cohort_dispatch(
    width: int = 512, heap_width: int = 64, rounds: int = 80
) -> typing.Dict[str, float]:
    """Wide same-instant cohorts on both scheduler lanes.

    Each round a driver fires ``width`` zero-delay timeouts (one
    immediate-lane cohort at the current instant) and ``heap_width``
    unit-delay timeouts (one heap cohort at the next instant), then
    advances. Every dispatched event shares its instant with dozens to
    hundreds of peers, so the run measures the amortized per-event cost
    of the cohort loop rather than the singleton fast path. The mix is
    immediate-heavy on purpose: zero-delay schedules (completions,
    hand-offs, kickoffs) are the majority of all schedules in an array
    simulation (see :mod:`repro.sim.environment`), and the heap cohort
    each round keeps the heap-drain path covered.
    """

    def driver(env: Environment):
        timeout = env.timeout  # hoisted: measure the kernel, not the lookup
        for _ in range(rounds):
            for _ in range(width):
                timeout(0.0)
            for _ in range(heap_width):
                timeout(1.0)
            yield timeout(1.0)

    def build_and_run() -> Environment:
        env = Environment()
        env.process(driver(env), name="cohort-driver")
        env.run()
        return env

    return _measure(build_and_run)


#: name -> zero-argument benchmark callable (defaults are the suite).
MICRO_BENCHMARKS: typing.Dict[str, typing.Callable[[], typing.Dict[str, float]]] = {
    "kernel.timeout_churn": timeout_churn,
    "kernel.event_relay": event_relay,
    "kernel.condition_fanin": condition_fanin,
    "kernel.cohort_dispatch": cohort_dispatch,
}
