"""The ``repro-bench/1`` document schema and its validator.

Hand-rolled structural validation (the container deliberately carries
no jsonschema dependency). A *document* is what ``repro bench`` writes
to ``BENCH_<date>.json`` and what the CI perf gate reads back as its
baseline, so both producers and consumers validate through this one
module.
"""

from __future__ import annotations

import typing

SCHEMA_ID = "repro-bench/1"

#: Fields every result entry must carry; ``wall_s`` is the only one
#: common to micro and macro entries.
_REQUIRED_RESULT_FIELDS = ("wall_s",)

_REQUIRED_TOP_LEVEL = ("schema", "generated_at", "environment", "scale", "repeat", "results")

_REQUIRED_ENVIRONMENT = ("python", "implementation", "platform", "cpu_count")


class BenchSchemaError(ValueError):
    """A bench document failed structural validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def validate_document(document: typing.Mapping[str, typing.Any]) -> None:
    """Raise :class:`BenchSchemaError` unless ``document`` is valid.

    Checks structure and types, not values: a document from a slower
    machine is valid; a document missing its fingerprint is not.
    """
    _require(isinstance(document, typing.Mapping), "document must be an object")
    for key in _REQUIRED_TOP_LEVEL:
        _require(key in document, f"missing top-level field {key!r}")
    _require(
        document["schema"] == SCHEMA_ID,
        f"schema must be {SCHEMA_ID!r}, got {document['schema']!r}",
    )
    _require(
        isinstance(document["generated_at"], str) and document["generated_at"],
        "generated_at must be a non-empty string",
    )
    environment = document["environment"]
    _require(isinstance(environment, typing.Mapping), "environment must be an object")
    for key in _REQUIRED_ENVIRONMENT:
        _require(key in environment, f"missing environment field {key!r}")
    _require(isinstance(document["scale"], str), "scale must be a string")
    _require(
        isinstance(document["repeat"], int) and document["repeat"] >= 1,
        "repeat must be a positive integer",
    )
    results = document["results"]
    _require(isinstance(results, typing.Mapping), "results must be an object")
    _require(len(results) > 0, "results must not be empty")
    for name, entry in results.items():
        _require(isinstance(name, str) and name, "result names must be strings")
        _require(isinstance(entry, typing.Mapping), f"result {name!r} must be an object")
        for field in _REQUIRED_RESULT_FIELDS:
            _require(field in entry, f"result {name!r} missing field {field!r}")
        for field, value in entry.items():
            _require(
                isinstance(value, (int, float)) and not isinstance(value, bool),
                f"result {name!r} field {field!r} must be a number, got {value!r}",
            )
        _require(entry["wall_s"] >= 0, f"result {name!r} has negative wall_s")


def throughput_metrics(
    results: typing.Mapping[str, typing.Mapping[str, float]],
) -> typing.Dict[str, float]:
    """The higher-is-better rates a baseline check compares.

    Any ``*_per_s`` field qualifies; wall-clock-only entries contribute
    nothing (their variance is dominated by machine load, and the
    throughput entries already cover the same code).
    """
    rates: typing.Dict[str, float] = {}
    for name, entry in results.items():
        for field, value in entry.items():
            if field.endswith("_per_s"):
                rates[f"{name}:{field}"] = float(value)
    return rates
