"""Command-line interface: ``python -m repro <experiment> [--scale ...]``.

Each experiment name corresponds to one table or figure of the paper
(plus the derived reliability table); ``list`` shows them all.
``--json DIR`` additionally saves each experiment's raw rows as a
self-describing JSON document for downstream comparison (see
:mod:`repro.experiments.persistence`).

Scenario-grid experiments execute through :mod:`repro.sweep`:
``--jobs N`` fans scenario points out over N worker processes, and
results are cached content-addressed on disk (``--no-cache`` opts
out, ``--cache-dir`` relocates the cache), so re-running a figure
replays it from cache — the printed sweep summary shows how many
points were simulated versus served from cache.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro._version import __version__
from repro.sweep import SweepOptions

Rows = typing.List[dict]
RunResult = typing.Tuple[Rows, str]


def _fig4_3(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import fig4_3

    rows = fig4_3.run(scale)
    return rows, fig4_3.format_rows(rows)


def _table5_1(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import table5_1

    rows = table5_1.run(scale)
    return rows, table5_1.format_rows(rows)


def _fig6_1(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import fig6

    rows = fig6.run_fig6_1(scale, options=options)
    return rows, fig6.format_rows(rows, "Figure 6-1: response time, 100% reads")


def _fig6_2(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import fig6

    rows = fig6.run_fig6_2(scale, options=options)
    return rows, fig6.format_rows(rows, "Figure 6-2: response time, 100% writes")


def _fig8_chart(rows: Rows) -> str:
    from repro.experiments.charting import chart_rows

    recon = chart_rows(
        rows, key_fields=["algorithm", "rate"], x_field="alpha",
        y_field="recon_time_s", title="Reconstruction time vs alpha",
    )
    response = chart_rows(
        rows, key_fields=["algorithm", "rate"], x_field="alpha",
        y_field="mean_response_ms", title="User response time vs alpha",
    )
    return f"\n{recon}\n\n{response}"


def _fig8_single(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import fig8

    rows = fig8.run_single_thread(scale, options=options)
    text = fig8.format_rows(
        rows,
        "Figures 8-1/8-2: single-thread reconstruction (50% reads, 50% writes)",
    )
    return rows, text + _fig8_chart(rows)


def _fig8_parallel(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import fig8

    rows = fig8.run_parallel(scale, options=options)
    text = fig8.format_rows(
        rows,
        "Figures 8-3/8-4: eight-way parallel reconstruction (50% reads, 50% writes)",
    )
    return rows, text + _fig8_chart(rows)


def _table8_1(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import table8_1

    rows = table8_1.run(scale, options=options)
    return rows, table8_1.format_rows(rows)


def _fig8_6(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import fig8_6

    rows = fig8_6.run(scale, options=options)
    return rows, fig8_6.format_rows(rows)


def _reliability(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import reliability

    rows = reliability.run(scale, options=options)
    return rows, reliability.format_rows(rows)


def _campaign(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import campaign

    rows = campaign.run(scale, options=options)
    return rows, campaign.format_rows(rows)


def _campaign_pq(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import campaign

    rows = campaign.run(scale, options=options, syndromes=2)
    return rows, campaign.format_rows(rows)


def _saturation(scale: str, options: SweepOptions) -> RunResult:
    from repro.experiments import saturation

    rows = saturation.run(scale, options=options)
    return rows, saturation.format_rows(rows)


RunnerFn = typing.Callable[[str, SweepOptions], RunResult]

EXPERIMENTS: typing.Dict[str, typing.Tuple[str, RunnerFn]] = {
    "fig4-3": ("scatter of known block designs", _fig4_3),
    "table5-1": ("simulation configuration", _table5_1),
    "fig6-1": ("fault-free & degraded response time, 100% reads", _fig6_1),
    "fig6-2": ("fault-free & degraded response time, 100% writes", _fig6_2),
    "fig8-1-2": ("single-thread reconstruction time & response time", _fig8_single),
    "fig8-3-4": ("8-way parallel reconstruction time & response time", _fig8_parallel),
    "table8-1": ("reconstruction cycle read/write phases", _table8_1),
    "fig8-6": ("Muntz & Lui model vs simulation", _fig8_6),
    "reliability": ("derived MTTDL from measured repair times", _reliability),
    "campaign": ("Monte Carlo fault campaign: empirical vs Markov MTTDL", _campaign),
    "campaign-pq": (
        "dual-syndrome (P+Q) fault campaign: two-fault MTTDL",
        _campaign_pq,
    ),
    "saturation": ("response time vs offered load (capacity knee)", _saturation),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Holland & Gibson, 'Parity Declustering for Continuous "
            "Operation in Redundant Disk Arrays' (ASPLOS 1992)."
        ),
        epilog=(
            "Developer tooling: 'repro lint' runs the simlint determinism "
            "& lock-discipline static analysis — add --project for the "
            "whole-program flow rules (see 'repro lint --help'); "
            "'repro simsan' runs the runtime lock-order sanitizer over "
            "macro scenarios (see 'repro simsan --help'); "
            "'repro report' renders stored scenario results (sweep-cache "
            "entries or result JSON) as per-run metric tables (see "
            "'repro report --help'); 'repro bench' runs the continuous "
            "benchmarking harness and emits BENCH_<date>.json (see "
            "'repro bench --help'); 'repro scenario' runs one ad-hoc "
            "scenario point — any width, any layout family (see 'repro "
            "scenario --help'); 'repro serve' runs the simulation "
            "job service and 'repro job' is its client (see 'repro "
            "serve --help' / 'repro job --help')."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment to run ('list' shows descriptions)",
    )
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "small", "paper"],
        help="simulation scale preset (default: tiny)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also save raw rows as JSON documents under DIR",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="simulate N scenario points in parallel worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate; do not read or write the sweep result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "sweep result cache location (default: $REPRO_SWEEP_CACHE or "
            "results/sweep-cache)"
        ),
    )
    return parser


def sweep_options_from_args(args: argparse.Namespace) -> SweepOptions:
    """The sweep execution policy one CLI invocation implies."""
    from repro.sweep import default_cache_dir

    cache = None if args.no_cache else (args.cache_dir or default_cache_dir())
    return SweepOptions(
        jobs=args.jobs, cache=cache, progress=True, stream=sys.stdout
    )


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # Developer tooling rides the same entry point but owns its
        # flags: everything after "lint" belongs to simlint.
        from repro.devtools.simlint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "simsan":
        # The runtime lock-order sanitizer (simlint's dynamic twin).
        from repro.devtools.simsan.cli import main as simsan_main

        return simsan_main(argv[1:])
    if argv and argv[0] == "report":
        # Same carve-out for the metrics report renderer.
        from repro.metrics.report import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "bench":
        # And for the continuous benchmarking harness.
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "scenario":
        # One ad-hoc scenario point (any width/layout), same cache.
        from repro.experiments.scenario_cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "serve":
        # The simulation job service (async HTTP API).
        from repro.service.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "job":
        # Client for the job service.
        from repro.service.client import main as job_main

        return job_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (description, _fn) in sorted(EXPERIMENTS.items()):
            print(f"{name:12s} {description}")
        return 0
    options = sweep_options_from_args(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    from repro.sweep import SweepError

    try:
        for name in names:
            _description, runner = EXPERIMENTS[name]
            rows, text = runner(args.scale, options)
            print(text)
            print()
            if args.json:
                import pathlib

                from repro.experiments.persistence import save_rows

                path = pathlib.Path(args.json) / f"{name}-{args.scale}.json"
                save_rows(path, experiment=name, scale=args.scale, rows=rows)
                print(f"[rows saved to {path}]\n")
    except SweepError as error:
        # Runtime failures exit 1 with a one-line message; usage errors
        # exit 2 (argparse and the subcommand mains share the convention).
        print(f"repro {args.experiment}: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"repro {args.experiment}: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
