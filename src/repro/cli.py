"""Command-line interface: ``python -m repro <experiment> [--scale ...]``.

Each experiment name corresponds to one table or figure of the paper
(plus the derived reliability table); ``list`` shows them all.
``--json DIR`` additionally saves each experiment's raw rows as a
self-describing JSON document for downstream comparison (see
:mod:`repro.experiments.persistence`).
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro._version import __version__

Rows = typing.List[dict]
RunResult = typing.Tuple[Rows, str]


def _fig4_3(scale: str) -> RunResult:
    from repro.experiments import fig4_3

    rows = fig4_3.run(scale)
    return rows, fig4_3.format_rows(rows)


def _table5_1(scale: str) -> RunResult:
    from repro.experiments import table5_1

    rows = table5_1.run(scale)
    return rows, table5_1.format_rows(rows)


def _fig6_1(scale: str) -> RunResult:
    from repro.experiments import fig6

    rows = fig6.run_fig6_1(scale)
    return rows, fig6.format_rows(rows, "Figure 6-1: response time, 100% reads")


def _fig6_2(scale: str) -> RunResult:
    from repro.experiments import fig6

    rows = fig6.run_fig6_2(scale)
    return rows, fig6.format_rows(rows, "Figure 6-2: response time, 100% writes")


def _fig8_chart(rows: Rows) -> str:
    from repro.experiments.charting import chart_rows

    recon = chart_rows(
        rows, key_fields=["algorithm", "rate"], x_field="alpha",
        y_field="recon_time_s", title="Reconstruction time vs alpha",
    )
    response = chart_rows(
        rows, key_fields=["algorithm", "rate"], x_field="alpha",
        y_field="mean_response_ms", title="User response time vs alpha",
    )
    return f"\n{recon}\n\n{response}"


def _fig8_single(scale: str) -> RunResult:
    from repro.experiments import fig8

    rows = fig8.run_single_thread(scale)
    text = fig8.format_rows(
        rows,
        "Figures 8-1/8-2: single-thread reconstruction (50% reads, 50% writes)",
    )
    return rows, text + _fig8_chart(rows)


def _fig8_parallel(scale: str) -> RunResult:
    from repro.experiments import fig8

    rows = fig8.run_parallel(scale)
    text = fig8.format_rows(
        rows,
        "Figures 8-3/8-4: eight-way parallel reconstruction (50% reads, 50% writes)",
    )
    return rows, text + _fig8_chart(rows)


def _table8_1(scale: str) -> RunResult:
    from repro.experiments import table8_1

    rows = table8_1.run(scale)
    return rows, table8_1.format_rows(rows)


def _fig8_6(scale: str) -> RunResult:
    from repro.experiments import fig8_6

    rows = fig8_6.run(scale)
    return rows, fig8_6.format_rows(rows)


def _reliability(scale: str) -> RunResult:
    from repro.experiments import reliability

    rows = reliability.run(scale)
    return rows, reliability.format_rows(rows)


def _saturation(scale: str) -> RunResult:
    from repro.experiments import saturation

    rows = saturation.run(scale)
    return rows, saturation.format_rows(rows)


EXPERIMENTS: typing.Dict[str, typing.Tuple[str, typing.Callable[[str], RunResult]]] = {
    "fig4-3": ("scatter of known block designs", _fig4_3),
    "table5-1": ("simulation configuration", _table5_1),
    "fig6-1": ("fault-free & degraded response time, 100% reads", _fig6_1),
    "fig6-2": ("fault-free & degraded response time, 100% writes", _fig6_2),
    "fig8-1-2": ("single-thread reconstruction time & response time", _fig8_single),
    "fig8-3-4": ("8-way parallel reconstruction time & response time", _fig8_parallel),
    "table8-1": ("reconstruction cycle read/write phases", _table8_1),
    "fig8-6": ("Muntz & Lui model vs simulation", _fig8_6),
    "reliability": ("derived MTTDL from measured repair times", _reliability),
    "saturation": ("response time vs offered load (capacity knee)", _saturation),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Holland & Gibson, 'Parity Declustering for Continuous "
            "Operation in Redundant Disk Arrays' (ASPLOS 1992)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment to run ('list' shows descriptions)",
    )
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "small", "paper"],
        help="simulation scale preset (default: tiny)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also save raw rows as JSON documents under DIR",
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (description, _fn) in sorted(EXPERIMENTS.items()):
            print(f"{name:12s} {description}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _description, runner = EXPERIMENTS[name]
        rows, text = runner(args.scale)
        print(text)
        print()
        if args.json:
            import pathlib

            from repro.experiments.persistence import save_rows

            path = pathlib.Path(args.json) / f"{name}-{args.scale}.json"
            save_rows(path, experiment=name, scale=args.scale, rows=rows)
            print(f"[rows saved to {path}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
