"""Balanced incomplete and complete block designs.

A *block design* arranges ``v`` objects into ``b`` tuples of ``k``
elements each such that every object appears in exactly ``r`` tuples and
every pair of objects appears in exactly ``lam`` tuples. The paper maps
disks to objects and parity stripes to tuples: constant pair counts are
exactly what makes reconstruction load uniform across surviving disks
(layout criterion 2).

This package provides:

- :class:`BlockDesign` — the validated design type;
- constructors: complete designs, difference-method (cyclic) designs,
  quadratic-residue symmetric designs, projective/affine planes, derived
  and complemented designs;
- the six designs from the paper's appendix (:mod:`repro.designs.paper`);
- a catalog with lookup by ``(v, k)`` and closest-feasible-``alpha``
  fallback (:mod:`repro.designs.catalog`), mirroring the paper's design
  selection policy.
"""

from repro.designs.design import BlockDesign, DesignError
from repro.designs.complete import complete_design
from repro.designs.difference import (
    BaseBlock,
    cyclic_design,
    develop_base_blocks,
    developed_tuple_at,
    developed_tuple_count,
    difference_family_lambda,
    iter_developed_tuples,
)
from repro.designs.known_families import full_orbit_family
from repro.designs.derived import complement_design, derived_design
from repro.designs.families import (
    affine_plane,
    projective_plane,
    quadratic_residue_design,
)
from repro.designs.paper import paper_design, PAPER_DESIGN_ALPHAS
from repro.designs.catalog import DesignCatalog, default_catalog
from repro.designs.tdesigns import (
    boolean_quadruple_system,
    cyclic_pq_design,
    is_t_balanced,
    validate_t_design,
)

__all__ = [
    "BaseBlock",
    "BlockDesign",
    "DesignCatalog",
    "DesignError",
    "PAPER_DESIGN_ALPHAS",
    "affine_plane",
    "boolean_quadruple_system",
    "complement_design",
    "complete_design",
    "cyclic_design",
    "cyclic_pq_design",
    "default_catalog",
    "derived_design",
    "develop_base_blocks",
    "developed_tuple_at",
    "developed_tuple_count",
    "difference_family_lambda",
    "full_orbit_family",
    "is_t_balanced",
    "iter_developed_tuples",
    "paper_design",
    "projective_plane",
    "quadratic_residue_design",
    "validate_t_design",
]
