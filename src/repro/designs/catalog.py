"""Design catalog: lookup and closest-feasible selection.

The paper's selection policy (Section 4.3): prefer a known balanced
incomplete block design on ``(v=C, k=G)``; otherwise try a complete
design if it is small enough; otherwise choose the closest feasible
design point — the ``k`` whose ``alpha`` is nearest the request —
because "the performance of an array is not highly sensitive to such
small variations in alpha". :class:`DesignCatalog` implements exactly
that policy over a registry of verified constructions.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.designs.complete import complete_design, complete_design_size
from repro.designs.derived import complement_design, derived_design
from repro.designs.design import BlockDesign, DesignError
from repro.designs.families import (
    affine_plane,
    is_prime,
    projective_plane,
    quadratic_residue_design,
)
from repro.designs.paper import PAPER_DESIGN_PARAMETERS, paper_design

DesignFactory = typing.Callable[[], BlockDesign]


@dataclass(frozen=True)
class CatalogEntry:
    """A known design: parameters plus a lazy constructor."""

    v: int
    k: int
    b: int
    source: str
    factory: DesignFactory = None  # type: ignore[assignment]

    def alpha(self) -> float:
        return (self.k - 1) / (self.v - 1)


class DesignCatalog:
    """A registry of known block designs with the paper's lookup policy."""

    def __init__(self, max_table_tuples: int = 50_000):
        #: Complete designs larger than this violate the efficient-mapping
        #: criterion (the paper's 41-disk G=5 example would need ~3.75M
        #: tuples) and are not offered.
        self.max_table_tuples = max_table_tuples
        self._entries: typing.Dict[typing.Tuple[int, int], CatalogEntry] = {}
        self._cache: typing.Dict[typing.Tuple[int, int], BlockDesign] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, v: int, k: int, b: int, source: str, factory: DesignFactory) -> None:
        """Add a design; smaller ``b`` wins when ``(v, k)`` collides."""
        key = (v, k)
        existing = self._entries.get(key)
        if existing is None or b < existing.b:
            self._entries[key] = CatalogEntry(v=v, k=k, b=b, source=source, factory=factory)
            self._cache.pop(key, None)

    def entries(self) -> typing.List[CatalogEntry]:
        """All registered designs, sorted by (v, k)."""
        return [self._entries[key] for key in sorted(self._entries)]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def exact(self, v: int, k: int) -> typing.Optional[BlockDesign]:
        """The registered design on ``(v, k)``, or None."""
        key = (v, k)
        if key in self._cache:
            return self._cache[key]
        entry = self._entries.get(key)
        if entry is None:
            return None
        design = entry.factory()
        self._cache[key] = design
        return design

    def feasible_ks(self, v: int) -> typing.List[int]:
        """Tuple sizes with a feasible (registered or small-complete) design."""
        ks = {k for (vv, k) in self._entries if vv == v}
        for k in range(2, v + 1):
            if complete_design_size(v, k) <= self.max_table_tuples:
                ks.add(k)
        return sorted(ks)

    def select(self, v: int, k: int) -> BlockDesign:
        """A design for ``(v, k)``, or the closest feasible ``alpha``.

        Follows the paper's policy: exact incomplete design, then small
        complete design, then the feasible ``k'`` minimizing
        ``|alpha(k') - alpha(k)|``.
        """
        if not 2 <= k <= v:
            raise DesignError(f"need 2 <= k <= v, got k={k}, v={v}")
        design = self.exact(v, k)
        if design is not None:
            return design
        if complete_design_size(v, k) <= self.max_table_tuples:
            return complete_design(v, k)
        target_alpha = (k - 1) / (v - 1)
        candidates = self.feasible_ks(v)
        if not candidates:
            raise DesignError(f"no feasible design on {v} objects at any tuple size")
        best = min(candidates, key=lambda kk: (abs((kk - 1) / (v - 1) - target_alpha), kk))
        chosen = self.exact(v, best)
        if chosen is None:
            chosen = complete_design(v, best)
        return chosen


def _register_paper_designs(catalog: DesignCatalog) -> None:
    for g, (b, v, k, _r, _lam) in PAPER_DESIGN_PARAMETERS.items():
        if g == 18:
            continue  # complete design; the generic fallback covers it
        catalog.register(v=v, k=k, b=b, source="paper-appendix", factory=lambda g=g: paper_design(g))


def _register_families(catalog: DesignCatalog, max_objects: int = 200) -> None:
    for p in range(3, max_objects):
        if not is_prime(p):
            continue
        if p % 4 == 3 and p >= 7:
            v, k = p, (p - 1) // 2
            catalog.register(v, k, b=p, source="quadratic-residue",
                             factory=lambda p=p: quadratic_residue_design(p))
            # Derived designs give (k, lam) points: v'=(p-1)/2, k'=(p-3)/4.
            if (p - 3) // 4 >= 2:
                catalog.register(
                    (p - 1) // 2, (p - 3) // 4, b=p - 1, source="derived-qr",
                    factory=lambda p=p: derived_design(quadratic_residue_design(p)),
                )
            # Complements fill in large-alpha points (0.5 < alpha < 1).
            catalog.register(
                p, p - k, b=p, source="complement-qr",
                factory=lambda p=p: complement_design(quadratic_residue_design(p)),
            )
        if p * p + p + 1 <= max_objects:
            catalog.register(
                p * p + p + 1, p + 1, b=p * p + p + 1, source="projective-plane",
                factory=lambda p=p: projective_plane(p),
            )
        if p * p <= max_objects:
            catalog.register(
                p * p, p, b=p * p + p, source="affine-plane",
                factory=lambda p=p: affine_plane(p),
            )


def _register_known_families(catalog: DesignCatalog) -> None:
    from repro.designs.known_families import KNOWN_FAMILIES, known_family_design

    for (v, k), (blocks, periods) in KNOWN_FAMILIES.items():
        orbit = lambda p: v if p is None else p  # noqa: E731 - tiny local helper
        b = sum(
            orbit(periods[i] if periods is not None else None)
            for i in range(len(blocks))
        )
        catalog.register(
            v, k, b=b, source="difference-family",
            factory=lambda v=v, k=k: known_family_design(v, k),
        )


def _register_extensions(catalog: DesignCatalog) -> None:
    """Complements of the paper's designs: the alpha 0.5-0.8 gap.

    The paper's future-work section calls small designs with
    ``0.5 < alpha < 0.8`` an open problem; complementing its own
    appendix designs yields (21, 15), (21, 16), (21, 17), and (21, 18)
    designs of 105, 21, 70, and 42 tuples respectively.
    """
    for g, new_k in [(6, 15), (5, 16), (3, 18), (4, 17), (10, 11)]:
        b = PAPER_DESIGN_PARAMETERS[g][0]
        catalog.register(
            21, new_k, b=b, source="complement-paper",
            factory=lambda g=g: complement_design(paper_design(g)),
        )


_DEFAULT: typing.Optional[DesignCatalog] = None


def default_catalog() -> DesignCatalog:
    """The shared catalog with paper, family, and extension designs."""
    global _DEFAULT
    if _DEFAULT is None:
        catalog = DesignCatalog()
        _register_paper_designs(catalog)
        _register_families(catalog)
        _register_known_families(catalog)
        _register_extensions(catalog)
        _DEFAULT = catalog
    return _DEFAULT
