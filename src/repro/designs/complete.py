"""Complete block designs: all k-subsets of v objects.

A complete design always exists and is always balanced
(``b = C(v, k)``, ``r = C(v-1, k-1)``, ``lam = C(v-2, k-2)``), but its
size grows combinatorially — the paper's example is a 41-disk, G=5
array whose complete design would need ~3.75 million tuples, violating
the efficient-mapping criterion. The catalog therefore prefers
incomplete designs and falls back to complete ones only when small.
"""

from __future__ import annotations

import itertools
import math

from repro.designs.design import BlockDesign, DesignError


def complete_design_size(v: int, k: int) -> int:
    """Number of tuples a complete design on ``(v, k)`` would have."""
    return math.comb(v, k)


def complete_design(v: int, k: int, max_tuples: int = 2_000_000) -> BlockDesign:
    """The complete design on ``v`` objects with tuple size ``k``.

    Parameters
    ----------
    v, k:
        Object count and tuple size.
    max_tuples:
        Safety limit; exceeding it raises :class:`DesignError` rather
        than silently building an enormous table.
    """
    if not 2 <= k <= v:
        raise DesignError(f"need 2 <= k <= v, got k={k}, v={v}")
    size = complete_design_size(v, k)
    if size > max_tuples:
        raise DesignError(
            f"complete design on (v={v}, k={k}) has {size} tuples, "
            f"exceeding the limit of {max_tuples}"
        )
    tuples = tuple(itertools.combinations(range(v), k))
    return BlockDesign(v=v, tuples=tuples, name=f"complete-{v}-{k}")
