"""Designs built from other designs: derived and complement designs.

*Derived* designs come from the paper's appendix: given a symmetric
design (``b = v``, ``k = r``), pick one tuple ``B0`` and intersect every
other tuple with it. Any two tuples of a symmetric design meet in
exactly ``lam`` objects, so the intersections form a new design with
``b' = b-1, v' = k, k' = lam, r' = r-1, lam' = lam-1``. The paper uses
this to get its ``alpha = 0.45`` design (v=21, k=10) from a symmetric
(43, 21, 10) design.

*Complement* designs replace each tuple by its complement, turning a
``(v, b, r, k, lam)`` design into ``(v, b, b-r, v-k, b-2r+lam)``. The
paper's future-work section notes that small designs with
``0.5 < alpha < 0.8`` were unknown to the authors; complementation
fills much of that gap (e.g. the complement of their alpha=0.2 design
is a 21-tuple design with alpha=0.75).
"""

from __future__ import annotations

from repro.designs.design import BlockDesign, DesignError


def derived_design(symmetric: BlockDesign, base_index: int = 0, name: str = "") -> BlockDesign:
    """The derived design of a symmetric design at tuple ``base_index``."""
    if not symmetric.is_symmetric():
        raise DesignError(
            f"derived designs need a symmetric design (b == v), got "
            f"b={symmetric.b}, v={symmetric.v}"
        )
    if symmetric.lam < 2:
        raise DesignError(
            f"derived design would have tuple size lam={symmetric.lam} < 2"
        )
    if not 0 <= base_index < symmetric.b:
        raise DesignError(f"base_index {base_index} outside 0..{symmetric.b - 1}")
    base = symmetric.tuples[base_index]
    base_set = frozenset(base)
    # Relabel the k objects of the base tuple to 0..k-1, preserving the
    # base tuple's element order so the construction is deterministic.
    relabel = {obj: i for i, obj in enumerate(base)}
    tuples = []
    for i, t in enumerate(symmetric.tuples):
        if i == base_index:
            continue
        intersection = tuple(relabel[obj] for obj in t if obj in base_set)
        if len(intersection) != symmetric.lam:
            raise DesignError(
                f"tuples {base_index} and {i} intersect in {len(intersection)} "
                f"objects, expected lam={symmetric.lam}; input is not a valid "
                "symmetric design"
            )
        tuples.append(intersection)
    design = BlockDesign(
        v=symmetric.k,
        tuples=tuple(tuples),
        name=name or (f"derived({symmetric.name})" if symmetric.name else "derived"),
    )
    design.validate()
    return design


def complement_design(design: BlockDesign, name: str = "") -> BlockDesign:
    """The complement design: each tuple replaced by its complement."""
    new_k = design.v - design.k
    if new_k < 2:
        raise DesignError(
            f"complement tuples would have size {new_k} < 2 (v={design.v}, k={design.k})"
        )
    all_objects = range(design.v)
    tuples = tuple(
        tuple(obj for obj in all_objects if obj not in set(t)) for t in design.tuples
    )
    result = BlockDesign(
        v=design.v,
        tuples=tuples,
        name=name or (f"complement({design.name})" if design.name else "complement"),
    )
    result.validate()
    return result
