"""The block design type and its validation."""

from __future__ import annotations

import itertools
import typing
from dataclasses import dataclass, field


class DesignError(ValueError):
    """Raised when tuples do not form a valid balanced block design."""


@dataclass(frozen=True)
class BlockDesign:
    """A balanced (possibly complete) block design.

    Attributes
    ----------
    v:
        Number of objects; objects are the integers ``0..v-1``.
    tuples:
        The ``b`` tuples, each a tuple of ``k`` distinct objects. Element
        order within a tuple is preserved — the layout construction uses
        it to place successive stripe units.
    name:
        Optional provenance label (e.g. ``"paper-bd3"``).
    """

    v: int
    tuples: typing.Tuple[typing.Tuple[int, ...], ...]
    name: str = field(default="", compare=False)

    def __post_init__(self):
        if self.v < 2:
            raise DesignError(f"need at least two objects, got v={self.v}")
        if not self.tuples:
            raise DesignError("a design needs at least one tuple")
        object.__setattr__(self, "tuples", tuple(tuple(t) for t in self.tuples))
        k = len(self.tuples[0])
        for t in self.tuples:
            if len(t) != k:
                raise DesignError(f"non-uniform tuple sizes: {len(t)} vs {k}")
            if len(set(t)) != k:
                raise DesignError(f"tuple {t} repeats an object")
            for obj in t:
                if not 0 <= obj < self.v:
                    raise DesignError(f"object {obj} outside 0..{self.v - 1}")
        if k < 2:
            raise DesignError(f"tuple size must be at least 2, got {k}")
        if k > self.v:
            raise DesignError(f"tuple size {k} exceeds object count {self.v}")

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def b(self) -> int:
        """Number of tuples."""
        return len(self.tuples)

    @property
    def k(self) -> int:
        """Tuple size (stripe units per parity stripe when used as a layout)."""
        return len(self.tuples[0])

    @property
    def r(self) -> int:
        """Replication count: tuples containing each object (``bk = vr``)."""
        return self.b * self.k // self.v

    @property
    def lam(self) -> int:
        """Pair count: tuples containing each object pair (``r(k-1) = lam(v-1)``)."""
        return self.r * (self.k - 1) // (self.v - 1)

    def alpha(self) -> float:
        """Declustering ratio ``(G-1)/(C-1)`` when used for a C=v, G=k array."""
        return (self.k - 1) / (self.v - 1)

    # ------------------------------------------------------------------
    # Balance checking
    # ------------------------------------------------------------------
    def replication_counts(self) -> typing.List[int]:
        """How many tuples each object appears in, indexed by object."""
        counts = [0] * self.v
        for t in self.tuples:
            for obj in t:
                counts[obj] += 1
        return counts

    def pair_counts(self) -> typing.Dict[typing.Tuple[int, int], int]:
        """How many tuples each unordered object pair co-occurs in."""
        counts: typing.Dict[typing.Tuple[int, int], int] = {
            pair: 0 for pair in itertools.combinations(range(self.v), 2)
        }
        for t in self.tuples:
            for pair in itertools.combinations(sorted(t), 2):
                counts[pair] += 1
        return counts

    def is_balanced(self) -> bool:
        """True if replication and pair counts are uniform (a true BIBD)."""
        try:
            self.validate()
        except DesignError:
            return False
        return True

    def validate(self) -> None:
        """Check full BIBD balance, raising :class:`DesignError` on failure.

        Verifies the counting identities ``bk = vr`` and
        ``r(k-1) = lam(v-1)`` and then the actual per-object and per-pair
        counts against ``r`` and ``lam``.
        """
        if (self.b * self.k) % self.v != 0:
            raise DesignError(
                f"bk = {self.b * self.k} not divisible by v = {self.v}: "
                "objects cannot appear equally often"
            )
        r = self.r
        if (r * (self.k - 1)) % (self.v - 1) != 0:
            raise DesignError(
                f"r(k-1) = {r * (self.k - 1)} not divisible by v-1 = {self.v - 1}: "
                "pairs cannot appear equally often"
            )
        lam = self.lam
        replication = self.replication_counts()
        bad_objects = [i for i, c in enumerate(replication) if c != r]
        if bad_objects:
            raise DesignError(
                f"objects {bad_objects[:5]} appear {[replication[i] for i in bad_objects[:5]]} "
                f"times, expected r = {r}"
            )
        for pair, count in self.pair_counts().items():
            if count != lam:
                raise DesignError(
                    f"pair {pair} co-occurs in {count} tuples, expected lam = {lam}"
                )

    def is_symmetric(self) -> bool:
        """True for symmetric designs (``b == v``, hence ``k == r``)."""
        return self.b == self.v

    def relabeled(self, mapping: typing.Dict[int, int], v: int, name: str = "") -> "BlockDesign":
        """A new design with objects renamed through ``mapping``."""
        new_tuples = tuple(tuple(mapping[obj] for obj in t) for t in self.tuples)
        return BlockDesign(v=v, tuples=new_tuples, name=name or self.name)

    def summary(self) -> str:
        """One-line human description with all five parameters."""
        return (
            f"BlockDesign(b={self.b}, v={self.v}, k={self.k}, r={self.r}, "
            f"lam={self.lam}, alpha={self.alpha():.3f}"
            + (f", name={self.name!r})" if self.name else ")")
        )
