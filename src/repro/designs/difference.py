"""Cyclic (difference-method) block design construction.

This is Hall's abbreviated notation used in the paper's appendix: a
design is given as a set of *base blocks* over ``Z_N``; the full design
is developed by adding every residue ``0..N-1`` (element-wise, mod N) to
each base block. A base block may carry a *period* ``P < N``, in which
case development stops after ``P`` additions — this handles short
orbits such as ``[0, 7, 14] (mod 21) period 7``, which is invariant
under ``+7``.

The base blocks form a *difference family*: every nonzero residue must
arise as a difference of two base-block elements a constant number of
times, which is what makes the developed design balanced.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.designs.design import BlockDesign, DesignError


@dataclass(frozen=True)
class BaseBlock:
    """One base block of a difference family, with an optional period."""

    elements: typing.Tuple[int, ...]
    period: typing.Optional[int] = None

    def orbit_length(self, modulus: int) -> int:
        """Number of developed tuples this base block contributes."""
        return self.period if self.period is not None else modulus


def developed_tuple_count(
    base_blocks: typing.Sequence[BaseBlock], modulus: int
) -> int:
    """Tuples the development of ``base_blocks`` yields, without building it."""
    return sum(base.orbit_length(modulus) for base in base_blocks)


def iter_developed_tuples(
    base_blocks: typing.Sequence[BaseBlock], modulus: int
) -> typing.Iterator[typing.Tuple[int, ...]]:
    """Develop a difference family lazily, one tuple at a time.

    Yields tuples in the canonical development order — block-major,
    then shift — which every consumer of cyclic designs (including the
    arithmetic layouts, whose offset formulas re-derive this order)
    relies on. Nothing here allocates the O(b·k) developed design.
    """
    if modulus < 2:
        raise DesignError(f"modulus must be >= 2, got {modulus}")
    for base in base_blocks:
        length = base.orbit_length(modulus)
        if not 1 <= length <= modulus:
            raise DesignError(f"period {length} outside 1..{modulus}")
        for shift in range(length):
            yield tuple((e + shift) % modulus for e in base.elements)


def developed_tuple_at(
    base_blocks: typing.Sequence[BaseBlock], modulus: int, index: int
) -> typing.Tuple[int, ...]:
    """Random access into the development order: tuple ``index`` in O(k).

    The inverse of enumerating :func:`iter_developed_tuples` — used by
    table-free layouts to resolve one stripe without materializing any
    neighbors.
    """
    if index < 0:
        raise DesignError(f"negative tuple index {index}")
    remaining = index
    for base in base_blocks:
        length = base.orbit_length(modulus)
        if remaining < length:
            return tuple((e + remaining) % modulus for e in base.elements)
        remaining -= length
    raise DesignError(
        f"tuple index {index} outside the "
        f"{developed_tuple_count(base_blocks, modulus)}-tuple development"
    )


def difference_family_lambda(
    base_blocks: typing.Sequence[BaseBlock], modulus: int
) -> int:
    """Verify balance of a *full-orbit* difference family; return ``lam``.

    Counts how often every nonzero residue arises as a difference of two
    elements of one base block — O(m·k²) time and O(v) memory, never the
    developed design. A constant count ``lam`` is exactly what makes the
    developed design a BIBD, so this is the streamed equivalent of
    ``BlockDesign.validate()`` for cyclic designs.

    Raises
    ------
    DesignError
        If any block develops a short orbit (balance of those is not a
        pure difference count), elements repeat within a block, or the
        difference counts are not constant.
    """
    if modulus < 2:
        raise DesignError(f"modulus must be >= 2, got {modulus}")
    if not base_blocks:
        raise DesignError("difference family has no base blocks")
    counts = [0] * modulus
    for base in base_blocks:
        if base.orbit_length(modulus) != modulus:
            raise DesignError(
                f"difference counting needs full orbits; block {base.elements} "
                f"has period {base.period}"
            )
        residues = [e % modulus for e in base.elements]
        if len(set(residues)) != len(residues):
            raise DesignError(f"base block {base.elements} repeats an element")
        for a in residues:
            for b in residues:
                if a != b:
                    counts[(a - b) % modulus] += 1
    lams = set(counts[1:])
    if len(lams) != 1:
        raise DesignError(
            f"not a difference family: difference counts range over {sorted(lams)}"
        )
    return lams.pop()


def develop_base_blocks(
    base_blocks: typing.Sequence[BaseBlock],
    modulus: int,
    name: str = "",
) -> BlockDesign:
    """Develop a difference family into a full cyclic design.

    Parameters
    ----------
    base_blocks:
        The family; all blocks must share one size.
    modulus:
        ``N`` — the design's object count and the development modulus.
    """
    return BlockDesign(
        v=modulus,
        tuples=tuple(iter_developed_tuples(base_blocks, modulus)),
        name=name,
    )


def cyclic_design(
    base_blocks: typing.Sequence[typing.Sequence[int]],
    modulus: int,
    periods: typing.Optional[typing.Sequence[typing.Optional[int]]] = None,
    name: str = "",
    validate: bool = True,
) -> BlockDesign:
    """Convenience wrapper: build and (by default) validate a cyclic design.

    Parameters
    ----------
    base_blocks:
        Sequences of residues mod ``modulus``.
    periods:
        Per-block development periods; ``None`` entries mean a full
        orbit of ``modulus`` shifts.
    validate:
        When True (default), check full BIBD balance after development,
        so an invalid difference family fails loudly.
    """
    if periods is None:
        periods = [None] * len(base_blocks)
    if len(periods) != len(base_blocks):
        raise DesignError("periods list must match base_blocks list")
    blocks = [
        BaseBlock(elements=tuple(int(e) % modulus for e in elems), period=p)
        for elems, p in zip(base_blocks, periods)
    ]
    design = develop_base_blocks(blocks, modulus, name=name)
    if validate:
        design.validate()
    return design
