"""Cyclic (difference-method) block design construction.

This is Hall's abbreviated notation used in the paper's appendix: a
design is given as a set of *base blocks* over ``Z_N``; the full design
is developed by adding every residue ``0..N-1`` (element-wise, mod N) to
each base block. A base block may carry a *period* ``P < N``, in which
case development stops after ``P`` additions — this handles short
orbits such as ``[0, 7, 14] (mod 21) period 7``, which is invariant
under ``+7``.

The base blocks form a *difference family*: every nonzero residue must
arise as a difference of two base-block elements a constant number of
times, which is what makes the developed design balanced.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.designs.design import BlockDesign, DesignError


@dataclass(frozen=True)
class BaseBlock:
    """One base block of a difference family, with an optional period."""

    elements: typing.Tuple[int, ...]
    period: typing.Optional[int] = None

    def orbit_length(self, modulus: int) -> int:
        """Number of developed tuples this base block contributes."""
        return self.period if self.period is not None else modulus


def develop_base_blocks(
    base_blocks: typing.Sequence[BaseBlock],
    modulus: int,
    name: str = "",
) -> BlockDesign:
    """Develop a difference family into a full cyclic design.

    Parameters
    ----------
    base_blocks:
        The family; all blocks must share one size.
    modulus:
        ``N`` — the design's object count and the development modulus.
    """
    if modulus < 2:
        raise DesignError(f"modulus must be >= 2, got {modulus}")
    tuples: typing.List[typing.Tuple[int, ...]] = []
    for base in base_blocks:
        length = base.orbit_length(modulus)
        if not 1 <= length <= modulus:
            raise DesignError(f"period {length} outside 1..{modulus}")
        for shift in range(length):
            tuples.append(tuple((e + shift) % modulus for e in base.elements))
    return BlockDesign(v=modulus, tuples=tuple(tuples), name=name)


def cyclic_design(
    base_blocks: typing.Sequence[typing.Sequence[int]],
    modulus: int,
    periods: typing.Optional[typing.Sequence[typing.Optional[int]]] = None,
    name: str = "",
    validate: bool = True,
) -> BlockDesign:
    """Convenience wrapper: build and (by default) validate a cyclic design.

    Parameters
    ----------
    base_blocks:
        Sequences of residues mod ``modulus``.
    periods:
        Per-block development periods; ``None`` entries mean a full
        orbit of ``modulus`` shifts.
    validate:
        When True (default), check full BIBD balance after development,
        so an invalid difference family fails loudly.
    """
    if periods is None:
        periods = [None] * len(base_blocks)
    if len(periods) != len(base_blocks):
        raise DesignError("periods list must match base_blocks list")
    blocks = [
        BaseBlock(elements=tuple(int(e) % modulus for e in elems), period=p)
        for elems, p in zip(base_blocks, periods)
    ]
    design = develop_base_blocks(blocks, modulus, name=name)
    if validate:
        design.validate()
    return design
