"""Programmatic BIBD families: quadratic residues and finite planes.

These families give the catalog a broad supply of verified incomplete
designs beyond the paper's six, so arrays of many shapes can pick a
small design rather than falling back to complete designs:

- **Quadratic-residue designs**: for a prime ``p ≡ 3 (mod 4)`` the
  quadratic residues mod p form a difference set developing into a
  symmetric ``(p, (p-1)/2, (p-3)/4)`` design — the paper's alpha=0.45
  design is derived from the (43, 21, 10) member of this family.
- **Projective planes** PG(2, q): symmetric ``(q^2+q+1, q+1, 1)``
  designs, built from lines over GF(q) (prime q).
- **Affine planes** AG(2, q): resolvable ``(q^2, q, 1)`` designs with
  ``b = q^2 + q`` lines (prime q).
"""

from __future__ import annotations

import typing

from repro.designs.design import BlockDesign, DesignError
from repro.designs.difference import cyclic_design


def is_prime(n: int) -> bool:
    """Trial-division primality, adequate for design-sized arguments."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def quadratic_residues(p: int) -> typing.List[int]:
    """The nonzero quadratic residues modulo a prime ``p``, sorted."""
    if not is_prime(p):
        raise DesignError(f"{p} is not prime")
    return sorted({(x * x) % p for x in range(1, p)})


def quadratic_residue_design(p: int) -> BlockDesign:
    """The symmetric ``(p, (p-1)/2, (p-3)/4)`` QR design for ``p ≡ 3 (mod 4)``."""
    if p % 4 != 3:
        raise DesignError(f"QR designs need p ≡ 3 (mod 4), got {p}")
    residues = quadratic_residues(p)
    return cyclic_design([residues], modulus=p, name=f"qr-{p}")


def projective_plane(q: int) -> BlockDesign:
    """PG(2, q) as a symmetric ``(q^2+q+1, q+1, 1)`` design (prime ``q``).

    Points are the 1-dimensional subspaces of GF(q)^3 and tuples are the
    lines (2-dimensional subspaces); every pair of points lies on
    exactly one line.
    """
    if not is_prime(q):
        raise DesignError(f"projective_plane needs prime order, got {q}")
    # Canonical representatives of projective points: (1,y,z), (0,1,z), (0,0,1).
    points = (
        [(1, y, z) for y in range(q) for z in range(q)]
        + [(0, 1, z) for z in range(q)]
        + [(0, 0, 1)]
    )
    index = {pt: i for i, pt in enumerate(points)}

    def normalize(vec: typing.Tuple[int, int, int]) -> typing.Tuple[int, int, int]:
        for lead in vec:
            if lead % q != 0:
                inv = pow(lead, q - 2, q)
                return tuple((c * inv) % q for c in vec)
        raise DesignError("zero vector has no projective normalization")

    # Lines are also indexed by projective triples [a:b:c]; a point lies
    # on a line iff a*x + b*y + c*z == 0 (mod q).
    tuples = []
    for a, b, c in points:  # dual: same representative set
        line = tuple(
            index[pt] for pt in points if (a * pt[0] + b * pt[1] + c * pt[2]) % q == 0
        )
        tuples.append(line)
    design = BlockDesign(v=len(points), tuples=tuple(tuples), name=f"pg2-{q}")
    design.validate()
    return design


def affine_plane(q: int) -> BlockDesign:
    """AG(2, q) as a ``(q^2, q, 1)`` design with ``q^2+q`` lines (prime ``q``)."""
    if not is_prime(q):
        raise DesignError(f"affine_plane needs prime order, got {q}")

    def point(x: int, y: int) -> int:
        return x * q + y

    tuples = []
    for slope in range(q):
        for intercept in range(q):
            tuples.append(tuple(point(x, (slope * x + intercept) % q) for x in range(q)))
    for x in range(q):  # vertical lines
        tuples.append(tuple(point(x, y) for y in range(q)))
    design = BlockDesign(v=q * q, tuples=tuple(tuples), name=f"ag2-{q}")
    design.validate()
    return design
