"""Verified cyclic difference families from the literature.

These play the role of Hall's published tables for shapes the
algebraic constructors don't cover — chiefly cyclic Steiner triple
systems (k=3, lam=1) for small-G layouts on odd array sizes, plus a
few planar difference sets. Every family here is validated into a full
BIBD at construction (and by the test suite), so a transcription error
cannot reach a layout.

Format: ``(v, k) -> (base blocks, periods, lam)``. ``None`` period
entries develop a full orbit of ``v`` shifts.
"""

from __future__ import annotations

import typing

from repro.designs.design import BlockDesign, DesignError
from repro.designs.difference import cyclic_design

FamilySpec = typing.Tuple[
    typing.Tuple[typing.Tuple[int, ...], ...],
    typing.Optional[typing.Tuple[typing.Optional[int], ...]],
]

#: Cyclic difference families, keyed by (v, k).
KNOWN_FAMILIES: typing.Dict[typing.Tuple[int, int], FamilySpec] = {
    # Steiner triple systems S(2, 3, v) — one-lam triples.
    (13, 3): (((0, 1, 4), (0, 2, 7)), None),
    (15, 3): (((0, 1, 4), (0, 2, 9), (0, 5, 10)), (None, None, 5)),
    (19, 3): (((0, 1, 4), (0, 2, 9), (0, 5, 11)), None),
    (25, 3): (((0, 1, 3), (0, 4, 11), (0, 5, 13), (0, 6, 15)), None),
    (31, 3): (((0, 1, 12), (0, 2, 24), (0, 3, 8), (0, 4, 17), (0, 6, 16)), None),
    (37, 3): (
        ((0, 1, 3), (0, 4, 26), (0, 5, 14), (0, 6, 25), (0, 7, 17), (0, 8, 21)),
        None,
    ),
    # Planar and biplane-style difference sets.
    (13, 4): (((0, 1, 3, 9),), None),          # PG(2,3) as a cyclic design
    (11, 5): (((1, 3, 4, 5, 9),), None),       # QR(11) biplane
    (15, 7): (((0, 1, 2, 4, 5, 8, 10),), None),
    (23, 11): (((1, 2, 3, 4, 6, 8, 9, 12, 13, 16, 18),), None),  # QR(23)
}


def full_orbit_family(
    v: int, k: int
) -> typing.Tuple[typing.Tuple[int, ...], ...]:
    """Base blocks of a *full-orbit* cyclic difference family for ``(v, k)``.

    Full orbits (every block developed through all ``v`` shifts) are
    what the arithmetic cyclic layout needs: its O(1) offset formulas
    assume each block contributes exactly ``v`` tuples. Sources, in
    order: the registered families above (skipping any with short
    orbits, such as (15, 3)), the planar (Singer) difference sets, and
    quadratic-residue difference sets for primes ``v ≡ 3 (mod 4)``.

    Raises
    ------
    DesignError
        If no full-orbit family is known for the parameters.
    """
    from repro.designs.families import is_prime, quadratic_residues
    from repro.designs.tdesigns import PLANAR_DIFFERENCE_SETS

    spec = KNOWN_FAMILIES.get((v, k))
    if spec is not None and spec[1] is None:
        return spec[0]
    planar = PLANAR_DIFFERENCE_SETS.get(k)
    if planar is not None and planar[0] == v:
        return (planar[1],)
    if v == 2 * k + 1 and v % 4 == 3 and is_prime(v):
        return (tuple(quadratic_residues(v)),)
    raise DesignError(
        f"no full-orbit cyclic difference family known for (v={v}, k={k})"
    )


def known_family_design(v: int, k: int) -> BlockDesign:
    """Build (and validate) the registered family for ``(v, k)``.

    Raises
    ------
    KeyError
        If no family is registered for the parameters.
    """
    blocks, periods = KNOWN_FAMILIES[(v, k)]
    return cyclic_design(
        [list(block) for block in blocks],
        modulus=v,
        periods=list(periods) if periods is not None else None,
        name=f"family-{v}-{k}",
    )
