"""The six block designs from the paper's appendix.

The appendix gives designs for a 21-disk array with
``G = 3, 4, 5, 6, 10, 18`` (``alpha`` from 0.10 to 0.85) in Hall's
difference-method notation, plus a complete design for G=18.

Transcription notes
-------------------
The source scan of CMU-CS-92-130 contains OCR damage. Designs 2, 3, and
4 validate exactly as printed. Design 1's printed base blocks
``[0,1,3]; [0,4,10]; [0,16,19]`` do **not** form a (21,3,1) difference
family (differences 2, 3, 18, 19 are covered twice and 8, 9, 12, 13
never); we substitute the classical family ``[0,1,3]; [0,4,12];
[0,5,11]`` with the same short orbit ``[0,7,14] period 7``, which yields
exactly the advertised parameters (b=70, v=21, k=3, r=10, lam=1).
Design 5's printed symmetric (43,21,10) base block validates exactly as
printed and its derived design is taken exactly as the appendix
prescribes (b=42, v=21, k=10, r=20, lam=9). Every design, substituted
or not, is checked against the paper's stated parameters at
construction time.
"""

from __future__ import annotations

import typing

from repro.designs.complete import complete_design
from repro.designs.derived import derived_design
from repro.designs.design import BlockDesign, DesignError
from repro.designs.difference import cyclic_design

#: Parity stripe sizes the paper simulates on its 21-disk array, mapped
#: to the declustering ratio alpha = (G-1)/(C-1) each produces.
PAPER_DESIGN_ALPHAS: typing.Dict[int, float] = {
    3: 0.10,
    4: 0.15,
    5: 0.20,
    6: 0.25,
    10: 0.45,
    18: 0.85,
    21: 1.00,  # RAID 5: no block design needed, G = C
}

#: The paper's stated (b, v, k, r, lam) for each appendix design.
PAPER_DESIGN_PARAMETERS: typing.Dict[int, typing.Tuple[int, int, int, int, int]] = {
    3: (70, 21, 3, 10, 1),
    4: (105, 21, 4, 20, 3),
    5: (21, 21, 5, 5, 1),
    6: (42, 21, 6, 12, 3),
    10: (42, 21, 10, 20, 9),
    18: (1330, 21, 18, 1140, 969),
}


def _check_parameters(design: BlockDesign, g: int) -> BlockDesign:
    expected = PAPER_DESIGN_PARAMETERS[g]
    actual = (design.b, design.v, design.k, design.r, design.lam)
    if actual != expected:
        raise DesignError(
            f"paper design for G={g} has parameters {actual}, expected {expected}"
        )
    design.validate()
    return design


def paper_design(g: int) -> BlockDesign:
    """The appendix design for parity stripe size ``g`` on 21 disks.

    Raises
    ------
    DesignError
        If ``g`` is not one of the paper's simulated sizes, or ``g=21``
        (RAID 5 uses the left-symmetric layout, not a block design).
    """
    if g == 3:
        # Block Design 1 (alpha = 0.10); corrected family, see module docstring.
        design = cyclic_design(
            [[0, 1, 3], [0, 4, 12], [0, 5, 11], [0, 7, 14]],
            modulus=21,
            periods=[None, None, None, 7],
            name="paper-bd1",
        )
    elif g == 4:
        # Block Design 2 (alpha = 0.15), exactly as printed.
        design = cyclic_design(
            [[0, 2, 3, 7], [0, 3, 5, 9], [0, 1, 7, 11], [0, 2, 8, 11], [0, 1, 9, 14]],
            modulus=21,
            name="paper-bd2",
        )
    elif g == 5:
        # Block Design 3 (alpha = 0.20), exactly as printed.
        design = cyclic_design([[3, 6, 7, 12, 14]], modulus=21, name="paper-bd3")
    elif g == 6:
        # Block Design 4 (alpha = 0.25), exactly as printed.
        design = cyclic_design(
            [[0, 2, 10, 15, 19, 20], [0, 3, 7, 9, 10, 16]],
            modulus=21,
            name="paper-bd4",
        )
    elif g == 10:
        # Block Design 5 (alpha = 0.45): derived design of the printed
        # symmetric (43, 21, 10) design.
        symmetric = cyclic_design(
            [[0, 3, 5, 8, 9, 10, 12, 13, 14, 15, 16, 20, 22, 23, 24, 30, 34, 35, 37, 39, 40]],
            modulus=43,
            name="paper-sym43",
        )
        design = derived_design(symmetric, name="paper-bd5")
    elif g == 18:
        # Block Design 6 (alpha = 0.85): the paper used a complete design.
        design = complete_design(21, 18)
        design = BlockDesign(v=design.v, tuples=design.tuples, name="paper-bd6")
    else:
        raise DesignError(
            f"the paper has no appendix design for G={g}; simulated sizes "
            f"are {sorted(PAPER_DESIGN_PARAMETERS)}"
        )
    return _check_parameters(design, g)
