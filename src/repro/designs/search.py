"""Backtracking search for balanced incomplete block designs.

The paper relies on Hall's published tables and notes that direct
construction "is a difficult problem for general C and G". For small
parameters, however, exhaustive backtracking is perfectly practical and
lets the library *find* designs instead of merely looking them up —
useful when an array's (C, G) falls outside every known family.

The search places tuples in lexicographic order, tracking per-object
replication and per-pair co-occurrence counts, and prunes any partial
assignment that exceeds ``r`` or ``lam``. Feasibility is pre-checked
with the counting identities (``bk = vr``, ``r(k-1) = lam(v-1)``) and
Fisher's inequality (``b >= v`` for incomplete designs).
"""

from __future__ import annotations

import itertools
import typing

from repro.designs.design import BlockDesign, DesignError


def design_parameters(v: int, k: int, lam: int) -> typing.Tuple[int, int]:
    """``(b, r)`` implied by ``(v, k, lam)``.

    Raises
    ------
    DesignError
        If the counting identities make the parameters non-integral.
    """
    if not 2 <= k <= v:
        raise DesignError(f"need 2 <= k <= v, got k={k}, v={v}")
    if lam < 1:
        raise DesignError(f"lam must be >= 1, got {lam}")
    r_numerator = lam * (v - 1)
    if r_numerator % (k - 1) != 0:
        raise DesignError(
            f"r = lam(v-1)/(k-1) = {r_numerator}/{k - 1} is not an integer"
        )
    r = r_numerator // (k - 1)
    if (v * r) % k != 0:
        raise DesignError(f"b = vr/k = {v * r}/{k} is not an integer")
    return (v * r) // k, r


def is_feasible(v: int, k: int, lam: int) -> bool:
    """Necessary conditions: integral (b, r) and Fisher's inequality."""
    try:
        b, _r = design_parameters(v, k, lam)
    except DesignError:
        return False
    if k < v and b < v:  # Fisher's inequality for incomplete designs
        return False
    return True


class _SearchState:
    """Mutable counts for the backtracking search."""

    def __init__(self, v: int, r: int, lam: int):
        self.v = v
        self.r = r
        self.lam = lam
        self.replication = [0] * v
        self.pairs = [[0] * v for _ in range(v)]

    def can_place(self, tup: typing.Tuple[int, ...]) -> bool:
        for obj in tup:
            if self.replication[obj] >= self.r:
                return False
        for a, b in itertools.combinations(tup, 2):
            if self.pairs[a][b] >= self.lam:
                return False
        return True

    def place(self, tup: typing.Tuple[int, ...]) -> None:
        for obj in tup:
            self.replication[obj] += 1
        for a, b in itertools.combinations(tup, 2):
            self.pairs[a][b] += 1

    def remove(self, tup: typing.Tuple[int, ...]) -> None:
        for obj in tup:
            self.replication[obj] -= 1
        for a, b in itertools.combinations(tup, 2):
            self.pairs[a][b] -= 1


def find_design(
    v: int,
    k: int,
    lam: int = 1,
    max_nodes: int = 2_000_000,
) -> typing.Optional[BlockDesign]:
    """Search for a BIBD with the given parameters.

    Returns a validated design, or ``None`` if the search space is
    exhausted (or the node budget runs out) without finding one.
    Parameters failing the necessary conditions return ``None``
    immediately.

    The search is exact for the node budget given: a ``None`` under
    budget exhaustion is *inconclusive*, while a ``None`` with small
    parameters (where the space fits the budget) is a proof of
    non-existence — e.g. ``find_design(6, 3, 1)`` correctly fails.
    """
    if not is_feasible(v, k, lam):
        return None
    b, r = design_parameters(v, k, lam)
    candidates = list(itertools.combinations(range(v), k))
    state = _SearchState(v, r, lam)
    chosen: typing.List[typing.Tuple[int, ...]] = []
    budget = [max_nodes]

    def backtrack(start_index: int) -> bool:
        if len(chosen) == b:
            return True
        if budget[0] <= 0:
            return False
        # Symmetry reduction: tuples are chosen in nondecreasing
        # lexicographic order (repeats allowed only when lam > 1).
        for index in range(start_index, len(candidates)):
            tup = candidates[index]
            if not state.can_place(tup):
                continue
            budget[0] -= 1
            state.place(tup)
            chosen.append(tup)
            if backtrack(index if lam > 1 else index + 1):
                return True
            chosen.pop()
            state.remove(tup)
            if budget[0] <= 0:
                return False
        return False

    if not backtrack(0):
        return None
    design = BlockDesign(v=v, tuples=tuple(chosen), name=f"searched-{v}-{k}-{lam}")
    design.validate()
    return design
