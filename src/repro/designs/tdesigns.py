"""t-designs (t=3) and cyclic constructions for dual-syndrome layouts.

A BIBD balances *pairs* of objects, which makes single-failure
reconstruction load uniform (layout criterion 2). A dual-syndrome
array must also balance the load after a *pair* of failures: the
stripes touching both failed disks must spread their surviving units
evenly over the remaining disks. That is exactly the guarantee of a
``t = 3`` design ("Parity Declustering for Fault-Tolerant Storage
Systems via t-designs"): every *triple* of objects co-occurs in the
same number of tuples, so for any two failed disks the doubly-degraded
stripes hit every survivor equally often.

Two constructions are provided:

- :func:`boolean_quadruple_system` — the Steiner quadruple system
  ``SQS(2^m)``: all 4-subsets of ``GF(2)^m`` whose elements XOR to
  zero form a 3-(2^m, 4, 1) design. Smallest useful case ``m = 3``:
  14 tuples on 8 objects.
- :func:`cyclic_pq_design` — the cyclic-group construction ("An
  approach to RAID-6 based on cyclic groups of a prime order"): a
  planar (Singer) difference set developed under ``Z_v`` yields a
  ``lam = 1`` BIBD with O(1) arithmetic placement — tuple ``i`` is the
  base block shifted by ``i mod v``. These are 2-designs (the P+Q
  *code* supplies two-fault tolerance; the cyclic development supplies
  the declustering), while :func:`boolean_quadruple_system` and
  complete designs additionally balance pair-failure load.

Complete designs are t-balanced for every ``t <= k``, so they remain
the universal (if table-hungry) fallback.
"""

from __future__ import annotations

import itertools
import typing

from repro.designs.design import BlockDesign, DesignError
from repro.designs.difference import cyclic_design


# ----------------------------------------------------------------------
# t-subset balance checking
# ----------------------------------------------------------------------
def t_subset_counts(
    design: BlockDesign, t: int
) -> typing.Dict[typing.Tuple[int, ...], int]:
    """How many tuples each ``t``-subset of objects co-occurs in."""
    if not 1 <= t <= design.k:
        raise DesignError(f"need 1 <= t <= k={design.k}, got t={t}")
    counts: typing.Dict[typing.Tuple[int, ...], int] = {
        subset: 0 for subset in itertools.combinations(range(design.v), t)
    }
    for tup in design.tuples:
        for subset in itertools.combinations(sorted(tup), t):
            counts[subset] += 1
    return counts


def t_lambda(design: BlockDesign, t: int) -> int:
    """The constant ``lambda_t`` a t-balanced design must satisfy.

    By double counting, ``lambda_t = b * C(k, t) / C(v, t)``.
    """
    numerator = design.b
    for i in range(t):
        numerator *= design.k - i
    denominator = 1
    for i in range(t):
        denominator *= design.v - i
    if numerator % denominator:
        raise DesignError(
            f"b*C(k,{t}) = {numerator} not divisible by C(v,{t})*{t}! terms: "
            f"no integral lambda_{t} exists"
        )
    return numerator // denominator


def validate_t_design(design: BlockDesign, t: int = 3) -> int:
    """Check ``t``-subset balance; returns ``lambda_t`` or raises.

    A ``t``-balanced design is automatically ``s``-balanced for every
    ``s < t``, so ``validate_t_design(d, 3)`` subsumes BIBD pair
    balance.
    """
    lam_t = t_lambda(design, t)
    for subset, count in t_subset_counts(design, t).items():
        if count != lam_t:
            raise DesignError(
                f"{t}-subset {subset} co-occurs in {count} tuples, "
                f"expected lambda_{t} = {lam_t}"
            )
    return lam_t


def is_t_balanced(design: BlockDesign, t: int = 3) -> bool:
    """True when every ``t``-subset of objects co-occurs equally often."""
    try:
        validate_t_design(design, t)
    except DesignError:
        return False
    return True


# ----------------------------------------------------------------------
# Constructions
# ----------------------------------------------------------------------
def boolean_quadruple_system(m: int) -> BlockDesign:
    """The Steiner quadruple system ``SQS(2^m)``: a 3-(2^m, 4, 1) design.

    Objects are the vectors of ``GF(2)^m``; tuples are the 4-subsets
    whose elements XOR to zero (affine planes of AG(m, 2)). Any three
    distinct vectors determine the fourth uniquely, so every triple
    lies in exactly one tuple. Needs ``m >= 3`` (``m = 2`` degenerates
    to a single tuple of all four objects).
    """
    if m < 3:
        raise DesignError(f"boolean quadruple system needs m >= 3, got {m}")
    v = 1 << m
    tuples = []
    for a, b, c in itertools.combinations(range(v), 3):
        d = a ^ b ^ c
        if d > c:  # each 4-subset once, in sorted order
            tuples.append((a, b, c, d))
    return BlockDesign(v=v, tuples=tuple(tuples), name=f"sqs-{v}")


#: Planar (Singer) difference sets mod ``v = k^2 - k + 1`` for the
#: tuple sizes where one exists; developing under Z_v gives a lam = 1
#: cyclic BIBD whose placement is pure modular arithmetic.
PLANAR_DIFFERENCE_SETS: typing.Dict[int, typing.Tuple[int, typing.Tuple[int, ...]]] = {
    3: (7, (0, 1, 3)),
    4: (13, (0, 1, 3, 9)),
    5: (21, (3, 6, 7, 12, 14)),
    6: (31, (1, 5, 11, 24, 25, 27)),
}


def cyclic_pq_design(k: int) -> BlockDesign:
    """The cyclic-group P+Q design for tuple size ``k``.

    Develops the planar difference set for ``k`` under the cyclic group
    ``Z_v`` (``v = k^2 - k + 1``): ``v`` tuples, each the base block
    shifted by the tuple index — so stripe placement is O(1) modular
    arithmetic. The result is a symmetric ``lam = 1`` BIBD with one
    stripe through every disk pair, the declustered substrate for the
    P+Q syndrome code.
    """
    entry = PLANAR_DIFFERENCE_SETS.get(k)
    if entry is None:
        raise DesignError(
            f"no planar difference set for k={k}; "
            f"available: {sorted(PLANAR_DIFFERENCE_SETS)}"
        )
    v, base = entry
    return cyclic_design([base], modulus=v, name=f"cyclic-pq-{v}-{k}")
