"""Developer tooling that guards the reproduction's invariants.

Nothing in this package is imported by the simulator itself: these are
build-time checks (static analysis, CI gates) that keep the runtime
packages honest. The first citizen is :mod:`repro.devtools.simlint`,
the determinism and lock-discipline linter run by ``python -m repro
lint`` and by CI.
"""
