"""simlint — determinism & lock-discipline static analysis.

An AST-based, plugin-rule linter specialized to this codebase. The
paper's figures are only reproducible because every run of a
``ScenarioConfig`` replays the same event order, RNG stream, and lock
schedule; simlint enforces the coding invariants that property rests
on. Run it as ``python -m repro lint``; CI runs it with the checked-in
``simlint-baseline.json`` so pre-existing, justified findings don't
block the build while new violations do.

Public surface:

- :func:`lint_paths` / :func:`lint_source` — run the analysis
  (``lint_paths(..., project=True)`` adds the whole-program rules)
- :class:`Finding`, :class:`LintReport` — results
- :class:`Rule`, :class:`ProjectRule`, :class:`RuntimeRule`,
  :func:`register`, :func:`all_rules` — the plugin API
- :mod:`~repro.devtools.simlint.baseline` — accepted-findings file
- :mod:`~repro.devtools.simlint.project` — the cross-module analyses
  (module graph, call graph, taint, lock flow)
"""

from repro.devtools.simlint.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.engine import (
    LintUsageError,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.devtools.simlint.findings import Finding, LintReport
from repro.devtools.simlint.registry import (
    ProjectRule,
    Rule,
    RuntimeRule,
    all_rules,
    get_rules,
    register,
)
from repro.devtools.simlint.reporters import (
    format_github,
    format_json,
    format_sarif,
    format_text,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "LintReport",
    "LintUsageError",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "RuntimeRule",
    "all_rules",
    "format_github",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "write_baseline",
]
