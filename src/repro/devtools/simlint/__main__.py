"""Module entry point for ``python -m repro.devtools.simlint``."""

import sys

from repro.devtools.simlint.cli import main

sys.exit(main())
