"""Checked-in baseline: pre-existing findings that do not fail CI.

The baseline is a JSON document listing findings that were reviewed
and deliberately left in place, each with a human reason. CI fails on
any finding *not* in the baseline, so the debt is frozen: new
violations cannot ride in on old ones.

Entries match findings on ``(rule, path, symbol, snippet)`` — no line
numbers — so surrounding edits don't invalidate the baseline, while
editing the offending line itself resurfaces the finding.

Refresh with ``python -m repro lint --write-baseline`` after fixing
findings (stale entries are dropped, reasons of surviving entries are
preserved, new entries get a TODO reason that should be replaced
before committing).
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.devtools.simlint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "simlint-baseline.json"
TODO_REASON = "TODO: justify this baseline entry or fix the finding"


class BaselineError(ValueError):
    """The baseline file is malformed."""


def _normalize_path(path: str) -> str:
    """Identity-comparable form of a finding/entry path.

    Baselines store repo-relative paths; findings carry whatever path
    the caller passed (possibly absolute). Relativize against the
    working directory so ``lint /abs/repo/src`` still matches a
    baseline written as ``src/...``.
    """
    candidate = pathlib.Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.resolve().relative_to(pathlib.Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


class Baseline:
    """An in-memory baseline: identity -> entry dict."""

    def __init__(self, entries: typing.Optional[typing.List[dict]] = None):
        self.entries: typing.List[dict] = list(entries or [])
        self._by_identity: typing.Dict[tuple, dict] = {}
        for entry in self.entries:
            self._by_identity[self._identity(entry)] = entry
        self._matched: typing.Set[tuple] = set()

    @classmethod
    def _identity(cls, entry: dict) -> tuple:
        return (
            entry.get("rule", ""),
            _normalize_path(entry.get("path", "")),
            entry.get("symbol", ""),
            entry.get("snippet", ""),
        )

    @staticmethod
    def _finding_identity(finding: Finding) -> tuple:
        rule, path, symbol, snippet = finding.identity()
        return (rule, _normalize_path(path), symbol, snippet)

    def match(self, finding: Finding) -> typing.Optional[dict]:
        """The entry covering ``finding``, marking it used; else None."""
        identity = self._finding_identity(finding)
        entry = self._by_identity.get(identity)
        if entry is not None:
            self._matched.add(identity)
        return entry

    def stale_entries(self) -> typing.List[dict]:
        """Entries that matched nothing in the last run."""
        return [
            entry
            for entry in self.entries
            if self._identity(entry) not in self._matched
        ]

    def reason_for(self, finding: Finding) -> str:
        entry = self._by_identity.get(self._finding_identity(finding))
        return entry.get("reason", "") if entry else ""


def load_baseline(path: typing.Union[str, pathlib.Path]) -> Baseline:
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(f"baseline {path} lacks an 'entries' list")
    entries = document["entries"]
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} 'entries' must be a list")
    for entry in entries:
        if not isinstance(entry, dict) or not entry.get("rule"):
            raise BaselineError(f"baseline {path} has a malformed entry: {entry!r}")
    return Baseline(entries)


def write_baseline(
    path: typing.Union[str, pathlib.Path],
    findings: typing.Iterable[Finding],
    previous: typing.Optional[Baseline] = None,
) -> int:
    """Write a fresh baseline covering ``findings``; returns entry count.

    Reasons are carried over from ``previous`` where the identity still
    matches; new entries get :data:`TODO_REASON` so a human has to
    write the justification before committing.
    """
    entries = []
    seen = set()
    for finding in sorted(findings, key=Finding.sort_key):
        if finding.identity() in seen:
            continue
        seen.add(finding.identity())
        reason = previous.reason_for(finding) if previous else ""
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "snippet": finding.snippet,
                "reason": reason or TODO_REASON,
            }
        )
    document = {"version": BASELINE_VERSION, "entries": entries}
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    pathlib.Path(path).write_text(text, encoding="utf-8")
    return len(entries)
