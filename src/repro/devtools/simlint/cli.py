"""``python -m repro lint`` — the simlint command line.

Exit codes: 0 clean (possibly via suppressions/baseline), 1 findings,
2 usage error. ``--write-baseline`` records the current findings as
the new baseline and exits 0; a human then fills in the TODO reasons.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing

from repro.devtools.simlint.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.devtools.simlint.engine import LintUsageError, lint_paths
from repro.devtools.simlint.registry import all_rules
from repro.devtools.simlint.reporters import (
    format_github,
    format_json,
    format_sarif,
    format_text,
)

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "simlint: determinism & lock-discipline static analysis for "
            "the simulator. Suppress a finding inline with "
            "'# simlint: disable=RULE (reason)'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif", "github"],
        default="text",
        help=(
            "report format (default: text); 'sarif' emits SARIF 2.1.0, "
            "'github' emits Actions problem annotations"
        ),
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "whole-program mode: build the cross-module project context "
            "and also run the interprocedural rules "
            "(DET010/DET011/LOCK010/LOCK011)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline of accepted findings (default: "
            f"{DEFAULT_BASELINE_NAME} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also report suppressed and baselined findings (text format)",
    )
    return parser


def _split_ids(text: typing.Optional[str]) -> typing.Optional[typing.List[str]]:
    if text is None:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _list_rules(stream: typing.TextIO) -> None:
    for rule in all_rules():
        stream.write(f"{rule.id}  [{rule.severity}, {rule.scope}]  {rule.title}\n")
        stream.write(f"    why:  {rule.rationale}\n")
        stream.write(f"    fix:  {rule.hint}\n")


def _resolve_baseline(
    args: argparse.Namespace,
) -> typing.Tuple[typing.Optional[Baseline], typing.Optional[pathlib.Path]]:
    if args.no_baseline and not args.write_baseline:
        return None, None
    if args.baseline is not None:
        path = pathlib.Path(args.baseline)
        if path.exists():
            return load_baseline(path), path
        if args.write_baseline:
            return None, path
        raise BaselineError(f"baseline file not found: {path}")
    default = pathlib.Path(DEFAULT_BASELINE_NAME)
    if default.exists():
        return load_baseline(default), default
    return None, default if args.write_baseline else None


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules(sys.stdout)
        return EXIT_OK

    try:
        baseline, baseline_path = _resolve_baseline(args)
    except BaselineError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    try:
        if args.write_baseline:
            # Baseline refresh wants the raw findings, unfiltered.
            report = lint_paths(
                args.paths,
                select=_split_ids(args.select),
                ignore=_split_ids(args.ignore),
                baseline=None,
                project=args.project,
            )
            target = baseline_path or pathlib.Path(DEFAULT_BASELINE_NAME)
            count = write_baseline(target, report.active, previous=baseline)
            print(f"simlint: wrote {count} entr{'y' if count == 1 else 'ies'} "
                  f"to {target}")
            return EXIT_OK
        report = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            baseline=baseline,
            project=args.project,
        )
    except LintUsageError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        sys.stdout.write(format_json(report))
    elif args.format == "sarif":
        sys.stdout.write(format_sarif(report))
    elif args.format == "github":
        sys.stdout.write(format_github(report))
    else:
        print(format_text(report, verbose=args.verbose))
    return EXIT_OK if report.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
