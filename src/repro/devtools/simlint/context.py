"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` wraps one parsed source file and
precomputes what rules keep asking for: import aliases (so
``np.random.rand`` resolves to ``numpy.random.rand``), parent links
(so a finding can name its enclosing ``Class.method``), and the
inline-suppression table parsed from comments.

Suppression syntax (reason is optional but encouraged)::

    x = time.time()  # simlint: disable=DET001 (wall-clock feeds a log label only)

    # simlint: disable-file=DET001 (this module is real-time orchestration)

A line-level ``disable`` covers its own line; when the comment stands
alone on its line it covers the next line too, so it can sit above a
long statement.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
import typing

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z][A-Z0-9_]*(?:\s*,\s*[A-Z][A-Z0-9_]*)*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)

#: Whole-program taint annotation: ``# simlint: assume=deterministic
#: (reason)`` on (or directly above) a ``def`` line forces the
#: function's taint summary clean; ``assume=nondeterministic`` marks it
#: as a source even though its body looks harmless. Used by the
#: interprocedural DET010/DET011 analysis (see
#: :mod:`repro.devtools.simlint.project.taint`).
_ASSUME_RE = re.compile(
    r"#\s*simlint:\s*assume\s*=\s*(?P<value>deterministic|nondeterministic)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


class Suppression(typing.NamedTuple):
    rules: typing.FrozenSet[str]
    reason: str


class Assumption(typing.NamedTuple):
    value: str  # "deterministic" | "nondeterministic"
    reason: str


def dotted_parts(node: ast.AST) -> typing.Optional[typing.List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: typing.List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class ModuleContext:
    """One source file, parsed and indexed for rule checks."""

    def __init__(self, path: str, source: str):
        #: Path as reported in findings (posix separators, repo-relative
        #: when the engine was given relative paths).
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: typing.Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._import_aliases: typing.Dict[str, str] = {}
        self._from_imports: typing.Dict[str, str] = {}
        self._collect_imports()
        self.line_suppressions: typing.Dict[int, Suppression] = {}
        self.file_suppressions: typing.Dict[str, str] = {}
        self.line_assumptions: typing.Dict[int, Assumption] = {}
        self._collect_suppressions()

    # ------------------------------------------------------------------
    # Imports and name resolution
    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self._import_aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self._import_aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._from_imports[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> typing.Optional[str]:
        """Canonical dotted name of a name/attribute chain.

        Aliases introduced by imports are unfolded: with ``import numpy
        as np``, ``np.random.rand`` resolves to ``numpy.random.rand``;
        with ``from datetime import datetime``, ``datetime.now``
        resolves to ``datetime.datetime.now``.
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        head = parts[0]
        if head in self._from_imports:
            parts[0:1] = self._from_imports[head].split(".")
        elif head in self._import_aliases:
            parts[0:1] = self._import_aliases[head].split(".")
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> typing.Optional[ast.AST]:
        return self._parents.get(node)

    def symbol_for(self, node: ast.AST) -> str:
        """Qualified name of the scope holding ``node`` (``Class.method``)."""
        names: typing.List[str] = []
        current: typing.Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(names)) or "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> typing.Optional[typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self._parents.get(current)
        return None

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _collect_suppressions(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            assume = _ASSUME_RE.search(token.string)
            if assume:
                line = token.start[0]
                entry = Assumption(
                    value=assume.group("value"),
                    reason=(assume.group("reason") or "").strip(),
                )
                self.line_assumptions[line] = entry
                text_before = self.lines[line - 1][: token.start[1]]
                if not text_before.strip():
                    # Standalone comment covers the following line, so it
                    # can sit above the def it annotates.
                    self.line_assumptions.setdefault(line + 1, entry)
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            rules = frozenset(
                rule.strip() for rule in match.group("rules").split(",")
            )
            reason = (match.group("reason") or "").strip()
            if match.group(1) == "disable-file":
                for rule in rules:
                    self.file_suppressions[rule] = reason
                continue
            line = token.start[0]
            self._add_line_suppression(line, rules, reason)
            # A comment alone on its line covers the following line.
            text_before = self.lines[line - 1][: token.start[1]]
            if not text_before.strip():
                self._add_line_suppression(line + 1, rules, reason)

    def _add_line_suppression(
        self, line: int, rules: typing.FrozenSet[str], reason: str
    ) -> None:
        existing = self.line_suppressions.get(line)
        if existing is not None:
            rules = rules | existing.rules
            reason = existing.reason or reason
        self.line_suppressions[line] = Suppression(rules=rules, reason=reason)

    def suppression_for(
        self, rule: str, line: int
    ) -> typing.Optional[str]:
        """The reason string if ``rule`` is suppressed at ``line``, else None."""
        if rule in self.file_suppressions:
            return self.file_suppressions[rule] or "(file-level)"
        entry = self.line_suppressions.get(line)
        if entry is not None and rule in entry.rules:
            return entry.reason or "(no reason given)"
        return None

    def assumption_for(self, line: int) -> typing.Optional[Assumption]:
        """The ``assume=`` annotation covering ``line`` (a def line), if any."""
        return self.line_assumptions.get(line)
