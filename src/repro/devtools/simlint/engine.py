"""The lint engine: walk files, run rules, apply suppressions/baseline.

File discovery is itself deterministic (paths sorted, duplicates
dropped) — the linter practices what it preaches, so two runs over the
same tree produce byte-identical reports.
"""

from __future__ import annotations

import pathlib
import typing

from repro.devtools.simlint.baseline import Baseline
from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.findings import Finding, LintReport
from repro.devtools.simlint.registry import Rule, get_rules


class LintUsageError(ValueError):
    """Bad invocation: unknown rule id, missing path, unreadable file."""


def iter_python_files(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]],
) -> typing.List[pathlib.Path]:
    """Every ``.py`` file under ``paths``, sorted, without duplicates.

    A directory is filtered to ``*.py``; a file named *explicitly* must
    be Python — silently skipping it would exit 0 without checking
    anything, which reads as a clean bill of health.
    """
    found: typing.Set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            if path.suffix != ".py":
                raise LintUsageError(f"not a Python file: {path}")
            found.add(path)
        elif path.is_dir():
            found.update(p for p in path.rglob("*.py") if p.is_file())
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(found)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: typing.Optional[typing.Sequence[Rule]] = None,
) -> typing.List[Finding]:
    """Lint one source string; the workhorse for tests and fixtures.

    Findings suppressed inline are still returned, flagged with
    ``suppressed=True``, so callers can distinguish "clean" from
    "suppressed".
    """
    ctx = ModuleContext(path, source)
    findings: typing.List[Finding] = []
    for rule in rules if rules is not None else get_rules():
        for finding in rule.check(ctx):
            reason = ctx.suppression_for(finding.rule, finding.line)
            if reason is not None:
                finding.suppressed = True
                finding.suppress_reason = reason
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]],
    select: typing.Optional[typing.Sequence[str]] = None,
    ignore: typing.Optional[typing.Sequence[str]] = None,
    baseline: typing.Optional[Baseline] = None,
    project: bool = False,
) -> LintReport:
    """Lint every file under ``paths`` and classify the findings.

    With ``project=True`` a :class:`ProjectContext` is built over the
    whole file set and whole-program rules (DET010/011, LOCK010/011)
    run in addition to the per-module ones; their findings flow through
    the same suppression and baseline machinery.
    """
    try:
        rules = get_rules(select=select, ignore=ignore, project=project)
    except KeyError as error:
        # str(KeyError) reprs its argument, adding spurious quotes.
        raise LintUsageError(error.args[0]) from error
    module_rules = [rule for rule in rules if rule.scope == "module"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    files = iter_python_files(paths)
    report = LintReport()

    def classify(finding: Finding) -> None:
        if finding.suppressed:
            report.suppressed.append(finding)
            return
        if baseline is not None:
            entry = baseline.match(finding)
            if entry is not None:
                finding.baselined = True
                finding.baseline_reason = entry.get("reason", "")
                report.baselined.append(finding)
                return
        report.active.append(finding)

    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise LintUsageError(f"cannot read {path}: {error}") from error
        try:
            findings = lint_source(source, path.as_posix(), module_rules)
        except SyntaxError as error:
            raise LintUsageError(f"cannot parse {path}: {error}") from error
        report.files_checked += 1
        for finding in findings:
            classify(finding)
    if project_rules:
        from repro.devtools.simlint.project.modules import ProjectContext

        try:
            project_ctx = ProjectContext(files)
        except SyntaxError as error:  # pragma: no cover - caught above
            raise LintUsageError(f"cannot parse project: {error}") from error
        project_findings: typing.List[Finding] = []
        for rule in project_rules:
            project_findings.extend(rule.check_project(project_ctx))
        project_findings.sort(key=Finding.sort_key)
        for finding in project_findings:
            ctx = project_ctx.contexts.get(finding.path)
            if ctx is not None:
                reason = ctx.suppression_for(finding.rule, finding.line)
                if reason is not None:
                    finding.suppressed = True
                    finding.suppress_reason = reason
            classify(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    report.active.sort(key=Finding.sort_key)
    return report
