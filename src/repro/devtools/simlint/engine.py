"""The lint engine: walk files, run rules, apply suppressions/baseline.

File discovery is itself deterministic (paths sorted, duplicates
dropped) — the linter practices what it preaches, so two runs over the
same tree produce byte-identical reports.
"""

from __future__ import annotations

import pathlib
import typing

from repro.devtools.simlint.baseline import Baseline
from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.findings import Finding, LintReport
from repro.devtools.simlint.registry import Rule, get_rules


class LintUsageError(ValueError):
    """Bad invocation: unknown rule id, missing path, unreadable file."""


def iter_python_files(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]],
) -> typing.List[pathlib.Path]:
    """Every ``.py`` file under ``paths``, sorted, without duplicates."""
    found: typing.Set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            found.add(path)
        elif path.is_dir():
            found.update(path.rglob("*.py"))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(p for p in found if p.suffix == ".py")


def lint_source(
    source: str,
    path: str = "<string>",
    rules: typing.Optional[typing.Sequence[Rule]] = None,
) -> typing.List[Finding]:
    """Lint one source string; the workhorse for tests and fixtures.

    Findings suppressed inline are still returned, flagged with
    ``suppressed=True``, so callers can distinguish "clean" from
    "suppressed".
    """
    ctx = ModuleContext(path, source)
    findings: typing.List[Finding] = []
    for rule in rules if rules is not None else get_rules():
        for finding in rule.check(ctx):
            reason = ctx.suppression_for(finding.rule, finding.line)
            if reason is not None:
                finding.suppressed = True
                finding.suppress_reason = reason
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]],
    select: typing.Optional[typing.Sequence[str]] = None,
    ignore: typing.Optional[typing.Sequence[str]] = None,
    baseline: typing.Optional[Baseline] = None,
) -> LintReport:
    """Lint every file under ``paths`` and classify the findings."""
    try:
        rules = get_rules(select=select, ignore=ignore)
    except KeyError as error:
        raise LintUsageError(str(error)) from error
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise LintUsageError(f"cannot read {path}: {error}") from error
        try:
            findings = lint_source(source, path.as_posix(), rules)
        except SyntaxError as error:
            raise LintUsageError(f"cannot parse {path}: {error}") from error
        report.files_checked += 1
        for finding in findings:
            if finding.suppressed:
                report.suppressed.append(finding)
                continue
            if baseline is not None:
                entry = baseline.match(finding)
                if entry is not None:
                    finding.baselined = True
                    finding.baseline_reason = entry.get("reason", "")
                    report.baselined.append(finding)
                    continue
            report.active.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    report.active.sort(key=Finding.sort_key)
    return report
