"""The unit of lint output: one finding at one source location.

A finding's *identity* deliberately excludes the line number: baselines
match on ``(rule, path, symbol, snippet)`` so that unrelated edits that
shift code up or down do not invalidate the baseline, while touching
the offending line itself (changing its text) surfaces the finding
again for a fresh look.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

#: Severities in increasing order of importance.
SEVERITIES = ("note", "warning", "error")


@dataclass
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    symbol: str = "<module>"
    snippet: str = ""
    hint: str = ""
    #: Set by the engine when an inline suppression covers the finding.
    suppressed: bool = False
    #: The inline suppression's stated reason, if any.
    suppress_reason: str = ""
    #: Set by the engine when a baseline entry covers the finding.
    baselined: bool = False
    baseline_reason: str = ""

    def identity(self) -> typing.Tuple[str, str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.symbol, self.snippet)

    def sort_key(self) -> typing.Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "symbol": self.symbol,
            "snippet": self.snippet,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """Everything one lint run produced, before and after filtering.

    ``active`` findings are the ones that fail the build; suppressed
    and baselined findings are kept for reporting (``--format json``
    emits their counts) but do not affect the exit code. ``stale``
    lists baseline entries that no longer match any finding — a nudge
    to refresh the baseline, never an error.
    """

    active: typing.List[Finding] = field(default_factory=list)
    suppressed: typing.List[Finding] = field(default_factory=list)
    baselined: typing.List[Finding] = field(default_factory=list)
    stale_baseline: typing.List[dict] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.active
