"""Whole-program analysis layer: module graph, call graph, flow analyses.

The per-module rules (DET001–004, LOCK001, …) see one file at a time;
everything in this package sees the whole tree at once:

- :mod:`~repro.devtools.simlint.project.modules` — the
  :class:`ProjectContext`: every module parsed, functions and classes
  indexed by qualified name, imports and lightweight type annotations
  resolved so ``self.controller._xor`` finds the method it names.
- :mod:`~repro.devtools.simlint.project.callgraph` — call sites
  resolved against that index into a project-wide call graph.
- :mod:`~repro.devtools.simlint.project.taint` — interprocedural
  nondeterminism taint (rules DET010/DET011).
- :mod:`~repro.devtools.simlint.project.lockflow` — interprocedural
  stripe-lock discipline and the acquired-while-holding lock-order
  graph (rules LOCK010/LOCK011).

Analyses are memoized on the :class:`ProjectContext`, so the rules
that share an analysis (and the simsan runtime cross-check) pay for it
once per lint run.
"""

from repro.devtools.simlint.project.callgraph import CallGraph, CallSite
from repro.devtools.simlint.project.modules import (
    ClassInfo,
    FunctionInfo,
    ProjectContext,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectContext",
]
