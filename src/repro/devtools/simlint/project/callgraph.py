"""The project call graph: call sites resolved to project functions.

Each resolvable :class:`ast.Call` inside a project function becomes a
:class:`CallSite`. Calls passed as the generator argument of an
env-like ``.process(...)`` spawn are tagged ``kind="spawn"`` — they
start a *concurrent* process, so flow analyses must not treat them as
inline control transfer (lock handoffs ride exactly this edge).
"""

from __future__ import annotations

import ast
import typing

from repro.devtools.simlint.context import dotted_parts
from repro.devtools.simlint.project.modules import (
    FunctionInfo,
    LocalTypes,
    ProjectContext,
)

ENVIRONMENT_CLASS_SUFFIX = ".Environment"


def is_env_chain(project: ProjectContext, types: LocalTypes, expr: ast.AST) -> bool:
    """Does ``expr`` name the simulation environment?

    Matches the codebase's spellings (``env``, ``self.env``,
    ``controller.env``) syntactically, plus anything whose inferred
    type is the kernel ``Environment``.
    """
    parts = dotted_parts(expr)
    if parts and parts[-1] == "env":
        return True
    inferred = types.type_of(expr)
    return inferred is not None and inferred.endswith(ENVIRONMENT_CLASS_SUFFIX)


class CallSite(typing.NamedTuple):
    """One resolved call from one project function to another."""

    caller: str        # caller qualname
    callee: str        # callee qualname
    node: ast.Call
    #: "call" for inline calls (incl. ``yield from``), "spawn" when the
    #: call's generator is handed to ``env.process(...)``.
    kind: str


class CallGraph:
    """Resolved call sites, indexed both ways."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.calls_from: typing.Dict[str, typing.List[CallSite]] = {}
        self.calls_to: typing.Dict[str, typing.List[CallSite]] = {}
        self.local_types: typing.Dict[str, LocalTypes] = {}
        for qualname in sorted(project.functions):
            self._scan(project.functions[qualname])

    def types_for(self, func: FunctionInfo) -> LocalTypes:
        if func.qualname not in self.local_types:
            self.local_types[func.qualname] = LocalTypes(self.project, func)
        return self.local_types[func.qualname]

    def _scan(self, func: FunctionInfo) -> None:
        types = self.types_for(func)
        spawned: typing.Set[int] = set()
        sites: typing.List[CallSite] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and is_env_chain(self.project, types, node.func.value)
            ):
                spawned.add(id(node.args[0]))
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            callee = types.resolve_call(node)
            if callee is None:
                continue
            kind = "spawn" if id(node) in spawned else "call"
            sites.append(CallSite(func.qualname, callee.qualname, node, kind))
        sites.sort(key=lambda s: (s.node.lineno, s.node.col_offset))
        self.calls_from[func.qualname] = sites
        for site in sites:
            self.calls_to.setdefault(site.callee, []).append(site)

    def argument_for(
        self, site: CallSite, param_index: int
    ) -> typing.Optional[ast.AST]:
        """The actual argument feeding ``param_index`` of the callee.

        Accounts for the bound-method offset: ``obj.m(a)`` feeds
        parameter 1 (after ``self``) with ``a``.
        """
        callee = self.project.functions.get(site.callee)
        if callee is None:
            return None
        offset = 0
        if callee.is_method and isinstance(site.node.func, ast.Attribute):
            parts = dotted_parts(site.node.func.value)
            # Class.method(self, ...) spelled through the class is the
            # one unbound form we'd mis-map; skip the offset for it.
            if not (parts and parts[-1] == callee.class_name):
                offset = 1
        position = param_index - offset
        if position < 0:
            # The receiver itself (e.g. ``self``).
            if isinstance(site.node.func, ast.Attribute):
                return site.node.func.value
            return None
        if position < len(site.node.args):
            arg = site.node.args[position]
            return None if isinstance(arg, ast.Starred) else arg
        params = callee.params
        if param_index < len(params):
            wanted = params[param_index].arg
            for keyword in site.node.keywords:
                if keyword.arg == wanted:
                    return keyword.value
        return None


def build_call_graph(project: ProjectContext) -> CallGraph:
    """Memoized construction via :meth:`ProjectContext.analysis`."""
    return typing.cast(
        CallGraph, project.analysis("callgraph", lambda: CallGraph(project))
    )
