"""Interprocedural stripe-lock discipline (LOCK010) and the
acquired-while-holding lock-order graph (LOCK011).

LOCK001 is local: *this* acquire must sit under *this* try/finally.
What it cannot see is ownership that crosses a function boundary — the
reconstruction piggyback path acquires a stripe lock in
``ArrayController._read_unit`` and hands the release to a spawned
``_piggyback_write`` process. A refactor that adds an early ``return``
to the releasing helper leaks the lock on exactly one path, deadlocks
the stripe under fault injection, and no per-module rule can tell.

The analysis walks every project function with an abstract "held
locks" state over the statement tree (both branches of an ``if``,
``finally`` applied to every exit, loop bodies twice so
acquired-while-holding edges inside loops are seen). Locks are keyed
by ``(base, argument text)`` — ``self.locks.acquire(stripe)`` holds
``(locks, stripe)``. Per-function summaries feed call sites:

- **closers** release a parameter-keyed lock they did not acquire
  (``_piggyback_write`` releasing ``stripe``). A closer is ``always``
  (every exit releases) or ``sometimes`` (an early return skips it —
  the LOCK010 bug class).
- **openers** acquire a parameter-keyed lock and hold it on every
  exit; the obligation transfers to the caller.

A held lock is discharged by a matching release, an ``always``-closer
call, or an ``always``-closer handed to ``env.process(...)``
(spawn-handoff — matched at function level because the
``handoff``-flag / conditional-release correlation is invisible to
branch-insensitive flow). Anything still held at a normal exit is a
LOCK010 leak; a call that reaches a ``sometimes``-closer while holding
the matching lock is a LOCK010 at the call site.

Every acquire observed while other locks are held adds an edge
``held-site -> new-site`` to the lock-order graph, including across
calls: caller-held locks propagate to callee entry to a fixed point.
Cycles in that graph are LOCK011 — two code paths that take the same
locks in opposite orders can deadlock under the right interleaving.
The runtime sanitizer (simsan) cross-checks this same graph against
orders actually observed in macro scenarios.
"""

from __future__ import annotations

import ast
import typing
from dataclasses import dataclass, field

from repro.devtools.simlint.project.callgraph import (
    CallGraph,
    CallSite,
    build_call_graph,
)
from repro.devtools.simlint.project.modules import FunctionInfo, ProjectContext
from repro.devtools.simlint.rules.locks import _lock_chain

_MAX_ROUNDS = 4
_MAX_STATES = 48

ALWAYS = "always"
SOMETIMES = "sometimes"


class LockSite(typing.NamedTuple):
    """One static acquire site, the node of the lock-order graph."""

    path: str
    line: int
    col: int
    label: str  # e.g. "locks.acquire(stripe)"

    def describe(self) -> str:
        return f"{self.label} at {self.path}:{self.line}"


class LockKey(typing.NamedTuple):
    base: str  # last chain component ("locks"); "*" matches any base
    arg: str   # source text of the stripe argument


def _keys_match(a: LockKey, b: LockKey) -> bool:
    if a.arg != b.arg:
        return False
    return a.base == b.base or "*" in (a.base, b.base)


@dataclass(frozen=True)
class Held:
    """One abstractly-held lock inside a flow state."""

    key: LockKey
    #: "local" (acquired in this function), "open" (acquired by a
    #: callee on our behalf), "entry" (held by a caller at our entry),
    #: "param" (synthetic probe for closer detection).
    origin: str
    site: typing.Optional[LockSite]
    param_index: int = -1
    node_id: int = -1  # id() of the acquire node, for finding anchors

    def sort_key(self) -> typing.Tuple:
        return (self.key, self.origin, self.site or LockSite("", 0, 0, ""))


State = typing.FrozenSet[Held]


@dataclass(frozen=True)
class OpenInfo:
    base: str
    site: LockSite


@dataclass
class LockSummary:
    """What a function does to parameter-keyed locks."""

    closes: typing.Dict[int, str] = field(default_factory=dict)   # index -> mode
    opens: typing.Dict[int, OpenInfo] = field(default_factory=dict)


@dataclass(frozen=True)
class LockLeak:
    """A LOCK010 candidate: where, and why the lock escapes."""

    func: FunctionInfo
    node_id: int
    message: str


@dataclass(frozen=True)
class LockCycle:
    """A LOCK011 candidate: acquire sites forming an order cycle."""

    sites: typing.Tuple[LockSite, ...]


def _state_sort_key(state: State) -> typing.Tuple:
    return tuple(sorted(held.sort_key() for held in state))


class _FunctionFlow:
    """One abstract walk of one function body."""

    def __init__(
        self,
        analysis: "LockFlowAnalysis",
        func: FunctionInfo,
        entry: typing.Iterable[Held],
        collect: bool,
    ):
        self.analysis = analysis
        self.func = func
        self.collect = collect
        self.entry = frozenset(entry)
        self.exit_states: typing.List[State] = []
        self.discharged_args: typing.Set[str] = set()
        self.local_nodes: typing.Dict[int, ast.Call] = {}
        self.site_index: typing.Dict[int, CallSite] = {
            id(site.node): site
            for site in analysis.graph.calls_from.get(func.qualname, ())
        }

    def run(self) -> None:
        out = self._block(self.func.node.body, {self.entry})
        self.exit_states.extend(out)
        if not self.exit_states:
            # Every path raises; treat entry state as the exit so closer
            # classification does not report phantom releases.
            self.exit_states.append(self.entry)

    # ------------------------------------------------------------------
    # Statement flow
    # ------------------------------------------------------------------
    def _cap(self, states: typing.Set[State]) -> typing.Set[State]:
        if len(states) <= _MAX_STATES:
            return states
        return set(sorted(states, key=_state_sort_key)[:_MAX_STATES])

    def _block(
        self, stmts: typing.Sequence[ast.stmt], states: typing.Set[State]
    ) -> typing.Set[State]:
        for stmt in stmts:
            states = self._cap(self._stmt(stmt, states))
            if not states:
                break
        return states

    def _stmt(
        self, stmt: ast.stmt, states: typing.Set[State]
    ) -> typing.Set[State]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states
        if isinstance(stmt, ast.If):
            states = self._apply_calls(stmt.test, states)
            return self._block(stmt.body, states) | self._block(stmt.orelse, states)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            states = self._apply_calls(stmt.iter, states)
            once = self._block(stmt.body, states)
            twice = self._block(stmt.body, once)
            merged = states | once | twice
            return self._block(stmt.orelse, merged) if stmt.orelse else merged
        if isinstance(stmt, ast.While):
            states = self._apply_calls(stmt.test, states)
            once = self._block(stmt.body, states)
            twice = self._block(stmt.body, once)
            merged = states | once | twice
            return self._block(stmt.orelse, merged) if stmt.orelse else merged
        if isinstance(stmt, ast.Try):
            return self._try(stmt, states)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                states = self._apply_calls(stmt.value, states)
            self.exit_states.extend(states)
            return set()
        if isinstance(stmt, ast.Raise):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    states = self._apply_calls(child, states)
            # Exception paths are LOCK001's jurisdiction (try/finally
            # around yields); they are not normal exits here.
            return set()
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                states = self._apply_calls(item.context_expr, states)
            return self._block(stmt.body, states)
        # Simple statements (Expr, Assign, AugAssign, Assert, ...).
        return self._apply_calls(stmt, states)

    def _try(self, stmt: ast.Try, states: typing.Set[State]) -> typing.Set[State]:
        returns_before = len(self.exit_states)
        body_out = self._block(stmt.body, states)
        handler_out: typing.Set[State] = set()
        for handler in stmt.handlers:
            handler_out |= self._block(handler.body, states | body_out)
        if stmt.orelse:
            body_out = self._block(stmt.orelse, body_out)
        merged = body_out | handler_out
        if stmt.finalbody:
            # Returns recorded inside the try exit *through* finally.
            escaped = self.exit_states[returns_before:]
            del self.exit_states[returns_before:]
            for state in escaped:
                self.exit_states.extend(self._block(stmt.finalbody, {state}))
            merged = self._block(stmt.finalbody, merged)
        return merged

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _calls_in(self, node: ast.AST) -> typing.List[ast.Call]:
        calls = []
        stack: typing.List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(current, ast.Call):
                calls.append(current)
            stack.extend(ast.iter_child_nodes(current))
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def _apply_calls(
        self, node: ast.AST, states: typing.Set[State]
    ) -> typing.Set[State]:
        for call in self._calls_in(node):
            states = self._apply_call(call, states)
        return states

    def _apply_call(
        self, call: ast.Call, states: typing.Set[State]
    ) -> typing.Set[State]:
        acquire_chain = _lock_chain(call, "acquire")
        if acquire_chain is not None:
            return self._acquire(call, acquire_chain, states)
        release_chain = _lock_chain(call, "release")
        if release_chain is not None:
            return self._release(call, release_chain, states)
        site = self.site_index.get(id(call))
        if site is not None:
            return self._project_call(site, call, states)
        return states

    def _lock_key(self, chain: str, call: ast.Call) -> LockKey:
        base = chain.split(".")[-1]
        arg = ast.unparse(call.args[0]) if call.args else "?"
        return LockKey(base, arg)

    def _acquire(
        self, call: ast.Call, chain: str, states: typing.Set[State]
    ) -> typing.Set[State]:
        key = self._lock_key(chain, call)
        site = LockSite(
            self.func.ctx.path,
            call.lineno,
            call.col_offset,
            f"{key.base}.acquire({key.arg})",
        )
        self.analysis.site_nodes.setdefault(site, (self.func, call))
        held = Held(key, "local", site, node_id=id(call))
        self.local_nodes[id(call)] = call
        out = set()
        for state in states:
            for prior in state:
                if prior.site is not None:
                    self.analysis.edges.setdefault(prior.site, set()).add(site)
            out.add(state | {held})
        return out

    def _release(
        self, call: ast.Call, chain: str, states: typing.Set[State]
    ) -> typing.Set[State]:
        key = self._lock_key(chain, call)
        out = set()
        for state in states:
            matching = [h for h in state if _keys_match(h.key, key)]
            locals_ = [h for h in matching if h.origin in ("local", "open")]
            # A release matches the lock *this* function acquired first;
            # only a release with no local acquisition to pair with
            # discharges a caller-side obligation (closer behaviour).
            dropped = set(locals_) if locals_ else set(matching)
            out.add(frozenset(h for h in state if h not in dropped))
        return out

    def _project_call(
        self, site: CallSite, call: ast.Call, states: typing.Set[State]
    ) -> typing.Set[State]:
        callee = self.analysis.project.functions.get(site.callee)
        if callee is None:
            return states
        # Caller-held locks are live at callee entry: propagate for the
        # lock-order graph (spawned processes run concurrently with the
        # holder, so spawn edges propagate too).
        carried = {
            held
            for state in states
            for held in state
            if held.site is not None
        }
        if carried:
            self.analysis.record_entry(site.callee, carried)
        summary = self.analysis.summaries.get(site.callee)
        if summary is None:
            return states
        for param_index, mode in sorted(summary.closes.items()):
            actual = self.analysis.graph.argument_for(site, param_index)
            if actual is None:
                continue
            arg_text = ast.unparse(actual)
            matched = any(
                held.key.arg == arg_text for state in states for held in state
            )
            if not matched:
                continue
            if mode == SOMETIMES and self.collect:
                verb = "spawned closer" if site.kind == "spawn" else "callee"
                self.analysis.leaks.append(
                    LockLeak(
                        self.func,
                        id(call),
                        f"lock keyed by {arg_text!r} is handed to "
                        f"{callee.name}(), but that {verb} releases it on "
                        "only some paths (an early return skips the "
                        "release) — the stripe deadlocks on the others",
                    )
                )
                self.local_nodes[id(call)] = call
            if site.kind == "spawn":
                # The spawn may sit on a different branch than the
                # conditional release correlated with it; forgive the
                # key function-wide rather than per-state.
                self.discharged_args.add(arg_text)
            out = set()
            for state in states:
                out.add(
                    frozenset(h for h in state if h.key.arg != arg_text)
                )
            states = out
        for param_index, info in sorted(summary.opens.items()):
            if site.kind == "spawn":
                continue
            actual = self.analysis.graph.argument_for(site, param_index)
            if actual is None:
                continue
            arg_text = ast.unparse(actual)
            held = Held(
                LockKey(info.base, arg_text), "open", info.site, node_id=id(call)
            )
            self.local_nodes[id(call)] = call
            states = {state | {held} for state in states}
        return states


class LockFlowAnalysis:
    """Whole-program lock flow: summaries, leaks, and the order graph."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.graph: CallGraph = build_call_graph(project)
        self.summaries: typing.Dict[str, LockSummary] = {}
        self.entries: typing.Dict[str, typing.Set[Held]] = {}
        self._next_entries: typing.Dict[str, typing.Set[Held]] = {}
        self.edges: typing.Dict[LockSite, typing.Set[LockSite]] = {}
        self.site_nodes: typing.Dict[
            LockSite, typing.Tuple[FunctionInfo, ast.Call]
        ] = {}
        self.leaks: typing.List[LockLeak] = []
        self.leak_nodes: typing.Dict[int, ast.Call] = {}
        self._run()
        self.cycles: typing.List[LockCycle] = self._find_cycles()

    # ------------------------------------------------------------------
    def record_entry(self, callee: str, helds: typing.Iterable[Held]) -> None:
        bucket = self._next_entries.setdefault(callee, set())
        for held in helds:
            bucket.add(
                Held(held.key, "entry", held.site, node_id=held.node_id)
            )

    def _entry_for(self, func: FunctionInfo) -> typing.Set[Held]:
        entry = set(self.entries.get(func.qualname, ()))
        for index, param in enumerate(func.params):
            entry.add(
                Held(LockKey("*", param.arg), "param", None, param_index=index)
            )
        return entry

    def _run(self) -> None:
        for qualname in self.project.functions:
            self.summaries[qualname] = LockSummary()
        for round_index in range(_MAX_ROUNDS):
            collect = round_index == _MAX_ROUNDS - 1
            self.edges = {}
            self.leaks = []
            self.leak_nodes = {}
            changed = False
            for qualname in sorted(self.project.functions):
                func = self.project.functions[qualname]
                flow = _FunctionFlow(self, func, self._entry_for(func), collect)
                flow.run()
                summary = self._summarize(func, flow, collect)
                if summary != self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
                self.leak_nodes.update(flow.local_nodes)
            entries_changed = False
            for callee, helds in self._next_entries.items():
                known = self.entries.setdefault(callee, set())
                if not helds <= known:
                    known |= helds
                    entries_changed = True
            self._next_entries = {}
            if collect:
                break
            if not changed and not entries_changed:
                # Converged early: one more pass, collecting findings.
                self._collect_final()
                break
        self.leaks.sort(
            key=lambda leak: (
                leak.func.ctx.path,
                self.leak_nodes[leak.node_id].lineno,
                leak.message,
            )
        )

    def _collect_final(self) -> None:
        self.edges = {}
        self.leaks = []
        self.leak_nodes = {}
        for qualname in sorted(self.project.functions):
            func = self.project.functions[qualname]
            flow = _FunctionFlow(self, func, self._entry_for(func), collect=True)
            flow.run()
            self._summarize(func, flow, collect=True)
            self.leak_nodes.update(flow.local_nodes)
        self._next_entries = {}

    # ------------------------------------------------------------------
    def _summarize(
        self, func: FunctionInfo, flow: _FunctionFlow, collect: bool
    ) -> LockSummary:
        summary = LockSummary()
        exits = flow.exit_states
        param_names = {param.arg: index for index, param in enumerate(func.params)}
        for index, param in enumerate(func.params):
            present = sum(
                1
                for state in exits
                if any(
                    held.origin == "param" and held.param_index == index
                    for held in state
                )
            )
            if present == 0:
                summary.closes[index] = ALWAYS
            elif present < len(exits):
                summary.closes[index] = SOMETIMES
        # Locally-acquired (or callee-opened) locks still held at exits.
        held_counts: typing.Dict[Held, int] = {}
        for state in exits:
            for held in state:
                if held.origin in ("local", "open"):
                    held_counts[held] = held_counts.get(held, 0) + 1
        for held in sorted(held_counts, key=Held.sort_key):
            count = held_counts[held]
            if held.key.arg in flow.discharged_args:
                continue
            param_index = param_names.get(held.key.arg)
            if param_index is not None and count == len(exits):
                # Held on *every* exit and keyed by our own parameter:
                # a deliberate opener; the obligation moves to callers.
                if held.site is not None and held.origin == "local":
                    summary.opens[param_index] = OpenInfo(held.key.base, held.site)
                continue
            if not collect:
                continue
            if count == len(exits):
                why = "every normal exit"
            else:
                why = f"{count} of {len(exits)} normal exit paths"
            origin = (
                "acquired here"
                if held.origin == "local"
                else f"opened by a callee ({held.site.describe()})"
                if held.site is not None
                else "opened by a callee"
            )
            self.leaks.append(
                LockLeak(
                    func,
                    held.node_id,
                    f"stripe lock {held.key.base}({held.key.arg}) "
                    f"{origin} is still held on {why}, and no release, "
                    "always-releasing callee, or spawned closer discharges "
                    "it — later requests on the stripe deadlock",
                )
            )
        return summary

    # ------------------------------------------------------------------
    # Lock-order cycles (Tarjan SCC over the site graph)
    # ------------------------------------------------------------------
    def _find_cycles(self) -> typing.List[LockCycle]:
        sites = sorted(
            set(self.edges) | {s for targets in self.edges.values() for s in targets}
        )
        index_of: typing.Dict[LockSite, int] = {}
        lowlink: typing.Dict[LockSite, int] = {}
        on_stack: typing.Set[LockSite] = set()
        stack: typing.List[LockSite] = []
        counter = [0]
        components: typing.List[typing.List[LockSite]] = []

        def strongconnect(root: LockSite) -> None:
            work = [(root, iter(sorted(self.edges.get(root, ()))))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.edges.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for site in sites:
            if site not in index_of:
                strongconnect(site)

        cycles = []
        for component in components:
            ordered = tuple(sorted(component))
            if len(ordered) > 1:
                cycles.append(LockCycle(ordered))
            elif ordered[0] in self.edges.get(ordered[0], ()):
                cycles.append(LockCycle(ordered))
        cycles.sort(key=lambda cycle: cycle.sites)
        return cycles


def lockflow_analysis(project: ProjectContext) -> LockFlowAnalysis:
    """Memoized :class:`LockFlowAnalysis` for one lint run."""
    return typing.cast(
        LockFlowAnalysis,
        project.analysis("lockflow", lambda: LockFlowAnalysis(project)),
    )
