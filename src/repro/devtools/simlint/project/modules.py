"""The project context: every module parsed and cross-indexed.

Name resolution here is deliberately *lightweight*: it resolves what
this codebase actually writes — module functions reached through
imports, ``self.method`` calls, and attribute chains whose types are
recoverable from constructor assignments and annotations — and returns
``None`` for anything dynamic. A ``None`` resolution makes the flow
analyses *less* precise, never wrong, so the whole layer stays sound
for its purpose (finding bugs, not proving their absence).
"""

from __future__ import annotations

import ast
import pathlib
import typing

from repro.devtools.simlint.context import ModuleContext, dotted_parts

FunctionNode = typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]


class FunctionInfo:
    """One function or method definition, addressable project-wide."""

    def __init__(
        self,
        qualname: str,
        module: str,
        ctx: ModuleContext,
        node: FunctionNode,
        class_name: typing.Optional[str] = None,
    ):
        #: ``repro.array.controller.ArrayController._write_unit``
        self.qualname = qualname
        self.module = module
        self.ctx = ctx
        self.node = node
        self.class_name = class_name

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def params(self) -> typing.List[ast.arg]:
        args = self.node.args
        return list(args.posonlyargs) + list(args.args)

    def param_index(self, name: str) -> typing.Optional[int]:
        for index, arg in enumerate(self.params):
            if arg.arg == name:
                return index
        return None

    def span(self) -> typing.Tuple[int, int]:
        """(first, last) source line of the definition."""
        end = getattr(self.node, "end_lineno", None) or self.node.lineno
        return self.node.lineno, end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One class definition plus what we can infer about its attributes."""

    def __init__(
        self, qualname: str, module: str, ctx: ModuleContext, node: ast.ClassDef
    ):
        self.qualname = qualname
        self.module = module
        self.ctx = ctx
        self.node = node
        self.methods: typing.Dict[str, FunctionInfo] = {}
        #: Base-class qualnames resolved to project classes (others dropped).
        self.bases: typing.List[str] = []
        #: Attribute name -> class qualname, inferred from ``self.x =
        #: Ctor(...)``, annotated assignments, and annotated parameters.
        self.attr_types: typing.Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.qualname}>"


def _module_name(path: pathlib.Path) -> str:
    """Dotted module name of ``path``, by walking up through packages."""
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


class ProjectContext:
    """Every module of one lint run, parsed and cross-indexed.

    Flow analyses (taint, lock discipline) are memoized here so rules
    that share one pay for it once.
    """

    def __init__(self, files: typing.Sequence[pathlib.Path]):
        #: path string (as reported in findings) -> ModuleContext
        self.contexts: typing.Dict[str, ModuleContext] = {}
        #: dotted module name -> ModuleContext
        self.modules: typing.Dict[str, ModuleContext] = {}
        self.functions: typing.Dict[str, FunctionInfo] = {}
        self.classes: typing.Dict[str, ClassInfo] = {}
        self._module_of_ctx: typing.Dict[str, str] = {}
        self._analyses: typing.Dict[str, object] = {}
        for path in files:
            source = path.read_text(encoding="utf-8")
            ctx = ModuleContext(path.as_posix(), source)
            module = _module_name(path)
            self.contexts[ctx.path] = ctx
            self.modules[module] = ctx
            self._module_of_ctx[ctx.path] = module
        for module in sorted(self.modules):
            self._index_module(module, self.modules[module])
        for module in sorted(self.modules):
            self._infer_class_attrs(module, self.modules[module])

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def module_of(self, ctx: ModuleContext) -> str:
        return self._module_of_ctx[ctx.path]

    def _index_module(self, module: str, ctx: ModuleContext) -> None:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(f"{module}.{stmt.name}", module, ctx, stmt)
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(f"{module}.{stmt.name}", module, ctx, stmt)
                self.classes[cls.qualname] = cls
                for base in stmt.bases:
                    resolved = ctx.resolve(base)
                    if resolved is None:
                        continue
                    candidate = self._class_qualname(module, resolved)
                    if candidate is not None:
                        cls.bases.append(candidate)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            f"{cls.qualname}.{item.name}",
                            module,
                            ctx,
                            item,
                            class_name=stmt.name,
                        )
                        cls.methods[item.name] = info
                        self.functions[info.qualname] = info

    def _class_qualname(self, module: str, dotted: str) -> typing.Optional[str]:
        """Project class named by ``dotted`` as seen from ``module``."""
        if dotted in self.classes:
            return dotted
        local = f"{module}.{dotted}"
        if local in self.classes:
            return local
        return None

    def _annotation_class(
        self, module: str, ctx: ModuleContext, annotation: typing.Optional[ast.AST]
    ) -> typing.Optional[str]:
        """Project class a type annotation names, unwrapping Optional."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            # String annotation (import-cycle guard idiom): parse and recurse.
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            # Optional[T] / typing.Optional[T]: look inside.
            base = dotted_parts(annotation.value)
            if base and base[-1] == "Optional":
                return self._annotation_class(module, ctx, annotation.slice)
            return None
        resolved = ctx.resolve(annotation)
        if resolved is None:
            return None
        return self._class_qualname(module, resolved)

    def _infer_class_attrs(self, module: str, ctx: ModuleContext) -> None:
        for cls_qualname in sorted(self.classes):
            cls = self.classes[cls_qualname]
            if cls.module != module:
                continue
            for item in cls.node.body:
                # Dataclass / annotated class attributes: ``x: T``.
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    inferred = self._annotation_class(module, ctx, item.annotation)
                    if inferred is not None:
                        cls.attr_types[item.target.id] = inferred
            for method in cls.methods.values():
                param_types = {
                    arg.arg: self._annotation_class(module, ctx, arg.annotation)
                    for arg in method.params
                }
                for node in ast.walk(method.node):
                    target = None
                    value = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if isinstance(node, ast.AnnAssign):
                        inferred = self._annotation_class(module, ctx, node.annotation)
                    elif isinstance(value, ast.Call):
                        resolved = ctx.resolve(value.func)
                        inferred = (
                            self._class_qualname(module, resolved)
                            if resolved
                            else None
                        )
                    elif isinstance(value, ast.Name):
                        inferred = param_types.get(value.id)
                    else:
                        inferred = None
                    if inferred is not None:
                        cls.attr_types.setdefault(target.attr, inferred)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def class_of(self, func: FunctionInfo) -> typing.Optional[ClassInfo]:
        if func.class_name is None:
            return None
        return self.classes.get(f"{func.module}.{func.class_name}")

    def method_on(
        self, cls: typing.Optional[ClassInfo], name: str
    ) -> typing.Optional[FunctionInfo]:
        """``name`` looked up on ``cls`` then depth-first on its bases."""
        seen: typing.Set[str] = set()
        stack = [cls] if cls is not None else []
        while stack:
            current = stack.pop(0)
            if current is None or current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            stack.extend(self.classes.get(base) for base in current.bases)
        return None

    def attr_type(
        self, cls: typing.Optional[ClassInfo], name: str
    ) -> typing.Optional[str]:
        """Class qualname of attribute ``name``, searching base classes."""
        seen: typing.Set[str] = set()
        stack = [cls] if cls is not None else []
        while stack:
            current = stack.pop(0)
            if current is None or current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.attr_types:
                return current.attr_types[name]
            stack.extend(self.classes.get(base) for base in current.bases)
        return None

    def analysis(self, key: str, build: typing.Callable[[], object]) -> object:
        """Memoized analysis result shared by rules and the sanitizer."""
        if key not in self._analyses:
            self._analyses[key] = build()
        return self._analyses[key]


class LocalTypes:
    """Per-function variable-to-class typing, from annotations & ctors.

    One pass over the function body collects ``x = Ctor(...)``,
    ``x = self.attr``, ``x = other_var``, and annotated parameters; a
    second pass closes simple alias chains.
    """

    def __init__(self, project: ProjectContext, func: FunctionInfo):
        self.project = project
        self.func = func
        self.ctx = func.ctx
        self.module = func.module
        self._cls = project.class_of(func)
        self.types: typing.Dict[str, str] = {}
        for arg in func.params:
            inferred = project._annotation_class(
                self.module, self.ctx, arg.annotation
            )
            if inferred is not None:
                self.types[arg.arg] = inferred
        pending: typing.List[typing.Tuple[str, ast.AST]] = []
        for node in ast.walk(func.node):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if isinstance(target, ast.Name):
                    inferred = project._annotation_class(
                        self.module, self.ctx, node.annotation
                    )
                    if inferred is not None:
                        self.types[target.id] = inferred
                        continue
            if isinstance(target, ast.Name) and value is not None:
                pending.append((target.id, value))
        for _ in range(2):  # two passes close x = y; y = self.attr chains
            for name, value in pending:
                if name in self.types:
                    continue
                inferred = self.type_of(value)
                if inferred is not None:
                    self.types[name] = inferred

    def type_of(self, expr: ast.AST) -> typing.Optional[str]:
        """Project-class qualname of ``expr``, or None when unknowable."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self._cls is not None:
                return self._cls.qualname
            return self.types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is not None:
                return self.project.attr_type(
                    self.project.classes.get(base), expr.attr
                )
            return None
        if isinstance(expr, ast.Call):
            resolved = self.ctx.resolve(expr.func)
            if resolved is not None:
                return self.project._class_qualname(self.module, resolved)
        return None

    def resolve_call(self, call: ast.Call) -> typing.Optional[FunctionInfo]:
        """The project function/method a call names, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.ctx.resolve(func)
            if resolved is not None:
                found = self.project.functions.get(resolved)
                if found is not None:
                    return found
                found = self.project.functions.get(f"{self.module}.{resolved}")
                if found is not None:
                    return found
            return None
        if isinstance(func, ast.Attribute):
            # Fully-dotted spellings first (module.func, Class.method).
            resolved = self.ctx.resolve(func)
            if resolved is not None and resolved in self.project.functions:
                return self.project.functions[resolved]
            base_type = self.type_of(func.value)
            if base_type is not None:
                return self.project.method_on(
                    self.project.classes.get(base_type), func.attr
                )
        return None
