"""Interprocedural nondeterminism taint (rules DET010/DET011).

The per-module rules flag *direct* nondeterminism (``time.time()`` on
this line); this analysis follows it across function boundaries. Every
project function gets a summary, computed to a fixed point:

- ``returns``: taints its return value carries — a wall-clock read,
  a global-random draw, directory order, ``id()``, or a call to
  another function whose summary is tainted;
- ``param_flow``: parameter indices that flow into the return value
  (so a caller's taint rides through a clean helper);
- ``param_kernel``: parameter indices that reach the event kernel
  (``env.timeout``/``schedule``/``run``/``process`` or an event's
  ``succeed``/``fail``) inside the function or its callees.

Taint *kinds* matter: ``sorted(...)`` pins iteration order, so it
kills ``order`` taint (the canonical DET004 fix) while ``value`` taint
(an actual wall-clock number) passes through.

Seeding respects the human record: a source whose line carries a
``# simlint: disable=`` for its intraprocedural rule (or for
DET010/DET011) is *not* a seed — orchestration code that already
justified its wall-clock read does not taint its callers. A
``# simlint: assume=deterministic (reason)`` on a def forces the
summary clean; ``assume=nondeterministic`` forces it tainted.
"""

from __future__ import annotations

import ast
import typing
from dataclasses import dataclass

from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.project.callgraph import (
    CallGraph,
    build_call_graph,
    is_env_chain,
)
from repro.devtools.simlint.project.modules import FunctionInfo, ProjectContext
from repro.devtools.simlint.rules.determinism import (
    UNSEEDED_RANDOM_ALLOWED,
    WALL_CLOCK_CALLS,
    _is_hash_ordered,
)

#: Calls whose result depends on filesystem enumeration order.
DIRECTORY_ORDER_CALLS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)

#: Other per-run-unique value sources.
UNIQUE_VALUE_CALLS = frozenset(
    {
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getpid",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "secrets.randbelow",
    }
)

#: Environment methods that put work on the event queue.
KERNEL_SCHEDULING_METHODS = frozenset({"timeout", "schedule", "run", "process"})
#: Event-completion methods (any receiver: events are kernel objects).
EVENT_COMPLETION_METHODS = frozenset({"succeed", "fail"})

_MAX_ITERATIONS = 25
#: Longest reported call chain; prepending stops past this so summaries
#: reach a fixed point even through call cycles.
_MAX_STEPS = 6


@dataclass(frozen=True)
class SourceTaint:
    """A concrete nondeterminism source, with the call chain to it."""

    kind: str                          # "value" | "order"
    steps: typing.Tuple[str, ...]      # outermost call first, source last

    def describe(self) -> str:
        return " -> ".join(self.steps)


@dataclass(frozen=True)
class ParamTaint:
    """Marker: the value derives from the function's own parameter."""

    index: int


TaintSet = typing.Set[object]


@dataclass(frozen=True)
class TaintSummary:
    returns: typing.FrozenSet[SourceTaint]
    param_flow: typing.FrozenSet[int]
    param_kernel: typing.FrozenSet[int]


EMPTY_SUMMARY = TaintSummary(frozenset(), frozenset(), frozenset())


@dataclass(frozen=True)
class KernelHit:
    """One tainted value observed reaching the event kernel."""

    func: FunctionInfo
    node: ast.Call
    taint: SourceTaint
    via: str  # "env.timeout(...)" or "helper(delay=...)"


@dataclass(frozen=True)
class TaintedCall:
    """One call site returning transitive nondeterminism (DET010)."""

    func: FunctionInfo
    node: ast.Call
    callee: FunctionInfo
    taint: SourceTaint


def _first(taints: typing.Iterable[SourceTaint]) -> SourceTaint:
    """Deterministic representative: shortest chain, then lexicographic."""
    return sorted(taints, key=lambda t: (len(t.steps), t.steps))[0]


#: Tooling trees whose code never runs inside a simulation; ``id()`` as
#: an AST-node dict key and wall-clock stopwatches are idiomatic there.
TOOLING_PATH_FRAGMENT = "repro/devtools/"


def source_at(ctx: ModuleContext, call: ast.Call) -> typing.Optional[SourceTaint]:
    """The nondeterminism source ``call`` is, if any — suppression-aware."""
    if TOOLING_PATH_FRAGMENT in ctx.path:
        return None
    line = call.lineno

    def live(*rules: str) -> bool:
        for rule in rules + ("DET010", "DET011"):
            if ctx.suppression_for(rule, line) is not None:
                return False
        return True

    name = ctx.resolve(call.func)
    where = f"{ctx.path}:{line}"
    if name in WALL_CLOCK_CALLS:
        if live("DET001"):
            return SourceTaint("value", (f"{name}() [wall clock] at {where}",))
        return None
    if name is not None:
        parts = name.split(".")
        if (
            parts[0] == "random"
            and len(parts) > 1
            and not ctx.path.endswith(UNSEEDED_RANDOM_ALLOWED)
            and live("DET002")
        ):
            return SourceTaint("value", (f"{name}() [global random] at {where}",))
        if name in DIRECTORY_ORDER_CALLS and live("DET004"):
            return SourceTaint("order", (f"{name}() [directory order] at {where}",))
        if name in UNIQUE_VALUE_CALLS and live():
            return SourceTaint("value", (f"{name}() [per-run unique] at {where}",))
    if (
        isinstance(call.func, ast.Name)
        and call.func.id == "id"
        and len(call.args) == 1
        and live("DET003")
    ):
        return SourceTaint("value", (f"id() [memory address] at {where}",))
    if (
        isinstance(call.func, ast.Name)
        and call.func.id in ("list", "tuple")
        and len(call.args) == 1
        and not call.keywords
        and _is_hash_ordered(call.args[0])
        and live("DET004")
    ):
        return SourceTaint(
            "order", (f"{call.func.id}() of a hash-ordered collection at {where}",)
        )
    return None


class _FunctionEval:
    """One abstract evaluation of one function body against summaries."""

    def __init__(self, analysis: "TaintAnalysis", func: FunctionInfo):
        self.analysis = analysis
        self.func = func
        self.ctx = func.ctx
        self.types = analysis.graph.types_for(func)
        self.tainted: typing.Dict[str, TaintSet] = {
            param.arg: {ParamTaint(index)}
            for index, param in enumerate(func.params)
        }
        self.returns: TaintSet = set()
        self.param_kernel: typing.Set[int] = set()
        self.kernel_hits: typing.Dict[
            typing.Tuple[int, SourceTaint], KernelHit
        ] = {}
        # Expression-taint memo, cleared per statement (the statement is
        # the unit that mutates variable state); without it the repeated
        # sub-expression visits in call handling go exponential.
        self._memo: typing.Dict[int, TaintSet] = {}

    def run(self) -> None:
        # Two passes so a variable assigned late still taints an
        # earlier loop-carried use.
        for _ in range(2):
            self._visit_block(self.func.node.body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _visit_block(self, stmts: typing.Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        self._memo.clear()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._expr(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            extra = self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.tainted.setdefault(stmt.target.id, set()).update(extra)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._expr(stmt.value)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._expr(stmt.iter))
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)
            return
        # Generic statement: evaluate child expressions, recurse blocks.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.withitem):
                taint = self._expr(child.context_expr)
                if child.optional_vars is not None:
                    self._bind(child.optional_vars, taint)
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field_name, None)
            if isinstance(block, list):
                self._visit_block(block)

    def _bind(self, target: ast.AST, taint: TaintSet) -> None:
        if isinstance(target, ast.Name):
            self.tainted[target.id] = set(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        # Attribute/subscript targets: cross-statement object state is
        # out of scope for this pass.

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr(self, expr: typing.Optional[ast.AST]) -> TaintSet:
        if expr is None:
            return set()
        if isinstance(expr, ast.Name):
            return set(self.tainted.get(expr.id, ()))
        if isinstance(expr, ast.Lambda):
            return set()
        cached = self._memo.get(id(expr))
        if cached is not None:
            return set(cached)
        if isinstance(expr, ast.Call):
            result = self._call(expr)
            self._memo[id(expr)] = set(result)
            return result
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in expr.generators:
                self._bind(generator.target, self._expr(generator.iter))
                for condition in generator.ifs:
                    self._expr(condition)
            result: TaintSet = set()
            for field_name in ("elt", "key", "value"):
                part = getattr(expr, field_name, None)
                if part is not None:
                    result |= self._expr(part)
            for generator in expr.generators:
                result |= self._expr(generator.iter)
            self._memo[id(expr)] = set(result)
            return result
        result = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                result |= self._expr(child)
            elif isinstance(child, ast.keyword):
                result |= self._expr(child.value)
        self._memo[id(expr)] = set(result)
        return result

    def _call_args_taint(self, call: ast.Call) -> TaintSet:
        result: TaintSet = set()
        for arg in call.args:
            result |= self._expr(arg)
        for keyword in call.keywords:
            result |= self._expr(keyword.value)
        return result

    def _call(self, call: ast.Call) -> TaintSet:
        result: TaintSet = set()
        source = source_at(self.ctx, call)
        if source is not None:
            result.add(source)
        self._check_kernel_feed(call)
        if isinstance(call.func, ast.Name) and call.func.id == "sorted":
            inner = self._call_args_taint(call)
            return result | {
                taint
                for taint in inner
                if not (isinstance(taint, SourceTaint) and taint.kind == "order")
            }
        callee = self.types.resolve_call(call)
        if callee is not None:
            summary = self.analysis.summaries.get(callee.qualname, EMPTY_SUMMARY)
            where = f"{self.ctx.path}:{call.lineno}"
            for taint in summary.returns:
                if len(taint.steps) >= _MAX_STEPS:
                    result.add(taint)
                else:
                    result.add(
                        SourceTaint(
                            taint.kind,
                            (f"{callee.name}() at {where}",) + taint.steps,
                        )
                    )
            arg_taints = self._mapped_arg_taints(call, callee)
            for index in summary.param_flow:
                for taint in arg_taints.get(index, ()):
                    result.add(taint)
            for index in summary.param_kernel:
                for taint in arg_taints.get(index, ()):
                    if isinstance(taint, SourceTaint):
                        self._record_kernel_hit(
                            call,
                            taint,
                            f"{callee.name}(…) "
                            f"[parameter {callee.params[index].arg!r} reaches "
                            "the kernel]",
                        )
                    elif isinstance(taint, ParamTaint):
                        self.param_kernel.add(taint.index)
            # Still evaluate raw argument expressions for nested calls.
            self._call_args_taint(call)
            return result
        # Unknown callee: taint flows through arguments and receiver.
        result |= self._call_args_taint(call)
        if isinstance(call.func, ast.Attribute):
            result |= self._expr(call.func.value)
        return result

    def _mapped_arg_taints(
        self, call: ast.Call, callee: FunctionInfo
    ) -> typing.Dict[int, TaintSet]:
        """Taint of each actual argument, keyed by callee parameter index."""
        offset = 0
        if callee.is_method and isinstance(call.func, ast.Attribute):
            offset = 1
        mapped: typing.Dict[int, TaintSet] = {}
        if offset == 1 and isinstance(call.func, ast.Attribute):
            mapped[0] = self._expr(call.func.value)
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            mapped[position + offset] = self._expr(arg)
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            index = callee.param_index(keyword.arg)
            if index is not None:
                mapped[index] = self._expr(keyword.value)
        return mapped

    def _check_kernel_feed(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in KERNEL_SCHEDULING_METHODS:
            if not is_env_chain(self.analysis.project, self.types, func.value):
                return
            via = f"env.{func.attr}(…)"
        elif func.attr in EVENT_COMPLETION_METHODS:
            via = f"<event>.{func.attr}(…)"
        else:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Starred):
                arg = arg.value
            for taint in self._expr(arg):
                if isinstance(taint, SourceTaint):
                    self._record_kernel_hit(call, taint, via)
                elif isinstance(taint, ParamTaint):
                    self.param_kernel.add(taint.index)

    def _record_kernel_hit(
        self, call: ast.Call, taint: SourceTaint, via: str
    ) -> None:
        key = (id(call), taint)
        if key not in self.kernel_hits:
            self.kernel_hits[key] = KernelHit(self.func, call, taint, via)


class TaintAnalysis:
    """Whole-program taint: summaries to fixed point, then findings."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.graph: CallGraph = build_call_graph(project)
        self.summaries: typing.Dict[str, TaintSummary] = {
            qualname: EMPTY_SUMMARY for qualname in project.functions
        }
        self._fixed_point()
        self.tainted_calls: typing.List[TaintedCall] = []
        self.kernel_hits: typing.List[KernelHit] = []
        self._collect_findings()

    def _summarize(self, func: FunctionInfo) -> TaintSummary:
        assumption = func.ctx.assumption_for(func.node.lineno)
        if assumption is not None:
            if assumption.value == "deterministic":
                return EMPTY_SUMMARY
            reason = assumption.reason or "annotated"
            return TaintSummary(
                frozenset(
                    {
                        SourceTaint(
                            "value",
                            (
                                f"{func.name}() [assume=nondeterministic: "
                                f"{reason}] at {func.ctx.path}:{func.node.lineno}",
                            ),
                        )
                    }
                ),
                frozenset(),
                frozenset(),
            )
        evaluation = _FunctionEval(self, func)
        evaluation.run()
        # One representative chain per taint kind keeps summaries (and
        # therefore the fixed point) bounded.
        by_kind: typing.Dict[str, typing.List[SourceTaint]] = {}
        for taint in evaluation.returns:
            if isinstance(taint, SourceTaint):
                by_kind.setdefault(taint.kind, []).append(taint)
        returns_sources = frozenset(
            _first(taints) for taints in by_kind.values()
        )
        param_flow = frozenset(
            taint.index
            for taint in evaluation.returns
            if isinstance(taint, ParamTaint)
        )
        return TaintSummary(
            returns_sources, param_flow, frozenset(evaluation.param_kernel)
        )

    def _fixed_point(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for qualname in sorted(self.project.functions):
                func = self.project.functions[qualname]
                updated = self._summarize(func)
                if updated != self.summaries[qualname]:
                    self.summaries[qualname] = updated
                    changed = True
            if not changed:
                return

    def _collect_findings(self) -> None:
        for qualname in sorted(self.project.functions):
            func = self.project.functions[qualname]
            evaluation = _FunctionEval(self, func)
            evaluation.run()
            self.kernel_hits.extend(evaluation.kernel_hits.values())
            for site in self.graph.calls_from.get(qualname, ()):
                summary = self.summaries.get(site.callee, EMPTY_SUMMARY)
                if not summary.returns:
                    continue
                callee = self.project.functions[site.callee]
                self.tainted_calls.append(
                    TaintedCall(func, site.node, callee, _first(summary.returns))
                )
        self.tainted_calls.sort(
            key=lambda item: (item.func.ctx.path, item.node.lineno, item.node.col_offset)
        )
        self.kernel_hits.sort(
            key=lambda item: (
                item.func.ctx.path,
                item.node.lineno,
                item.node.col_offset,
                item.taint.steps,
            )
        )


def taint_analysis(project: ProjectContext) -> TaintAnalysis:
    """Memoized :class:`TaintAnalysis` for one lint run."""
    return typing.cast(
        TaintAnalysis, project.analysis("taint", lambda: TaintAnalysis(project))
    )
