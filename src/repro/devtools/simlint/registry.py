"""Rule base class and the global rule registry.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.devtools.simlint.rules` imports every rule module, so
``all_rules()`` is complete as soon as the package is imported. Rule
IDs are stable public API: baselines, suppressions, and CI logs refer
to them, so an ID is never renamed or reused.
"""

from __future__ import annotations

import ast
import typing

from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.findings import SEVERITIES, Finding


class Rule:
    """One invariant, checked over one module at a time.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings via :meth:`finding` so location, symbol, and
    snippet are filled in uniformly.
    """

    #: Stable identifier (e.g. ``DET001``). Never renamed.
    id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the invariant exists, shown by ``--list-rules``.
    rationale: str = ""
    #: How to fix a finding (the autofix hint).
    hint: str = ""
    severity: str = "error"
    #: "module" rules see one file; "project" rules see the whole tree
    #: (run only under ``--project``); "runtime" rules are emitted by
    #: the simsan sanitizer, never by the engine — they are registered
    #: so ``--list-rules`` documents them and suppressions/baselines
    #: can target them.
    scope: str = "module"

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
            symbol=ctx.symbol_for(node),
            snippet=ctx.snippet(node),
            hint=self.hint,
        )


class ProjectRule(Rule):
    """A whole-program rule: sees every module at once.

    Implements :meth:`check_project` against a
    :class:`~repro.devtools.simlint.project.modules.ProjectContext`;
    :meth:`finding` still anchors each finding in one module's
    :class:`ModuleContext`, so suppressions and baselines work
    unchanged.
    """

    scope = "project"

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        raise NotImplementedError(
            f"{self.id} is a project-scope rule; use check_project()"
        )

    def check_project(self, project: typing.Any) -> typing.Iterator[Finding]:
        raise NotImplementedError


class RuntimeRule(Rule):
    """A sanitizer rule: findings come from simsan at runtime.

    The engine never runs these; registration gives them stable IDs,
    ``--list-rules`` documentation, and suppression/baseline support.
    """

    scope = "runtime"

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        return iter(())


_REGISTRY: typing.Dict[str, Rule] = {}


def register(cls: typing.Type[Rule]) -> typing.Type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id} has unknown severity {cls.severity!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> typing.List[Rule]:
    """Every registered rule, sorted by ID."""
    import repro.devtools.simlint.rules  # noqa: F401  (registers on import)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(
    select: typing.Optional[typing.Iterable[str]] = None,
    ignore: typing.Optional[typing.Iterable[str]] = None,
    project: bool = False,
) -> typing.List[Rule]:
    """The enabled subset: ``select`` narrows, then ``ignore`` removes.

    Module rules always run; project rules only under ``project=True``.
    Selecting a rule the current mode cannot run is a usage error with
    a pointed message rather than a silently-empty run.
    """
    rules = all_rules()
    by_id = {rule.id: rule for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in by_id:
            raise KeyError(f"unknown rule id {requested!r}")
    if select:
        for requested in select:
            scope = by_id[requested].scope
            if scope == "runtime":
                raise KeyError(
                    f"rule {requested!r} is a runtime sanitizer rule; it is "
                    "emitted by `repro simsan`, not by the lint engine"
                )
            if scope == "project" and not project:
                raise KeyError(
                    f"rule {requested!r} is a whole-program rule; "
                    "run with --project to enable it"
                )
    scopes = {"module", "project"} if project else {"module"}
    rules = [rule for rule in rules if rule.scope in scopes]
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules
