"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
import typing

from repro.devtools.simlint.findings import LintReport

REPORT_VERSION = 1


def format_text(report: LintReport, verbose: bool = False) -> str:
    """The human report: one block per finding plus a summary line."""
    lines: typing.List[str] = []
    for finding in report.active:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.severity}: {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if verbose:
        for finding in report.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} suppressed "
                f"inline: {finding.suppress_reason}"
            )
        for finding in report.baselined:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} baselined: "
                f"{finding.baseline_reason}"
            )
    for entry in report.stale_baseline:
        lines.append(
            f"note: stale baseline entry {entry.get('rule')} at "
            f"{entry.get('path')}:{entry.get('symbol')} matches nothing — "
            "refresh with --write-baseline"
        )
    lines.append(
        f"simlint: {len(report.active)} finding(s) in "
        f"{report.files_checked} file(s) "
        f"({len(report.suppressed)} suppressed inline, "
        f"{len(report.baselined)} baselined, "
        f"{len(report.stale_baseline)} stale baseline entr"
        f"{'y' if len(report.stale_baseline) == 1 else 'ies'})"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """The machine report: stable key order, newline-terminated."""
    document = {
        "version": REPORT_VERSION,
        "findings": [finding.to_dict() for finding in report.active],
        "suppressed": [
            dict(finding.to_dict(), reason=finding.suppress_reason)
            for finding in report.suppressed
        ],
        "baselined": [
            dict(finding.to_dict(), reason=finding.baseline_reason)
            for finding in report.baselined
        ],
        "stale_baseline": report.stale_baseline,
        "summary": {
            "files_checked": report.files_checked,
            "active": len(report.active),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "ok": report.ok,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0, the interchange format code-scanning UIs ingest.

    Active findings only: suppressed and baselined findings are
    accepted by a human with a reason, and uploading them would just
    re-litigate that decision in another UI.
    """
    from repro.devtools.simlint.registry import all_rules

    levels = {"note": "note", "warning": "warning", "error": "error"}
    rules_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": levels.get(rule.severity, "warning")
            },
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": levels.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    },
                    "logicalLocations": [{"fullyQualifiedName": finding.symbol}],
                }
            ],
        }
        for finding in report.active
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def format_github(report: LintReport) -> str:
    """GitHub Actions workflow commands: one problem annotation per
    finding, so findings surface inline on the pull-request diff."""
    commands = {"note": "notice", "warning": "warning", "error": "error"}
    lines = [
        f"::{commands.get(finding.severity, 'error')} "
        f"file={finding.path},line={max(finding.line, 1)},"
        f"col={finding.col + 1},title=simlint {finding.rule}::"
        # Workflow commands are line-oriented: escape message newlines.
        + finding.message.replace("%", "%25").replace("\n", "%0A")
        for finding in report.active
    ]
    lines.append(
        f"simlint: {len(report.active)} finding(s) in "
        f"{report.files_checked} file(s)"
    )
    return "\n".join(lines) + "\n"
