"""Rule modules. Importing this package registers every rule.

Rule inventory (IDs are stable public API):

Per-module (always run):

- ``DET001`` — no wall-clock reads in simulation code
- ``DET002`` — no module-level or unseeded random draws
- ``DET003`` — no id()-based ordering
- ``DET004`` — no iteration over hash-ordered collections
- ``LOCK001`` — stripe-lock acquire must release in try/finally
- ``TIME001`` — no ==/!= between float simulated timestamps
- ``MUT001`` — no mutation of frozen configs outside constructors
- ``ERR001`` — no broad except that can swallow DataLossError

Whole-program (``repro lint --project``):

- ``DET010`` — call returns transitive nondeterminism
- ``DET011`` — nondeterministic value reaches the event kernel
- ``LOCK010`` — stripe lock escapes its cross-function release protocol
- ``LOCK011`` — lock acquisition sites form an order cycle

Runtime sanitizer (``repro simsan``):

- ``SAN001``–``SAN006`` — lock-protocol violations observed while a
  macro scenario actually runs (see
  :mod:`repro.devtools.simsan.monitor`)
"""

from repro.devtools.simlint.rules import (
    determinism,
    errors,
    hygiene,
    interprocedural,
    locks,
)

__all__ = ["determinism", "errors", "hygiene", "interprocedural", "locks"]
