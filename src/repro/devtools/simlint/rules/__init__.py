"""Rule modules. Importing this package registers every rule.

Rule inventory (IDs are stable public API):

- ``DET001`` — no wall-clock reads in simulation code
- ``DET002`` — no module-level or unseeded random draws
- ``DET003`` — no id()-based ordering
- ``DET004`` — no iteration over hash-ordered collections
- ``LOCK001`` — stripe-lock acquire must release in try/finally
- ``TIME001`` — no ==/!= between float simulated timestamps
- ``MUT001`` — no mutation of frozen configs outside constructors
- ``ERR001`` — no broad except that can swallow DataLossError
"""

from repro.devtools.simlint.rules import determinism, errors, hygiene, locks

__all__ = ["determinism", "errors", "hygiene", "locks"]
