"""Determinism rules: DET001-DET004.

The simulator's contract is that one :class:`ScenarioConfig` replays
bit-identically: the sweep cache is content-addressed on the config, so
any nondeterminism silently corrupts cache reuse and figure parity.
These rules flag the classic ways Python code goes nondeterministic:
reading the wall clock, drawing from a global RNG, ordering by ``id()``,
and iterating hash-ordered collections.
"""

from __future__ import annotations

import ast
import typing

from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.findings import Finding
from repro.devtools.simlint.registry import Rule, register

#: Functions whose return value depends on the host's clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Files allowed to touch the stdlib ``random`` machinery directly:
#: the stream factory itself and the fault model, whose documented
#: contract is "draws only from an injected ``random.Random``".
UNSEEDED_RANDOM_ALLOWED = (
    "repro/sim/rng.py",
    "repro/faults/profile.py",
    "repro/faults/state.py",
)

#: RNG constructors that are fine when given an explicit seed.
SEEDABLE_CONSTRUCTORS = frozenset(
    {"Random", "SystemRandom", "default_rng", "Generator", "SeedSequence",
     "PCG64", "Philox", "MT19937"}
)


@register
class WallClockRule(Rule):
    id = "DET001"
    title = "no wall-clock reads in simulation code"
    rationale = (
        "simulated time is Environment.now; a wall-clock read makes two "
        "runs of the same ScenarioConfig diverge, breaking cache keys "
        "and figure parity"
    )
    hint = (
        "use the simulated clock (env.now) for anything that feeds results; "
        "suppress with a reason only in real-time orchestration code "
        "(progress display, worker timeouts)"
    )

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node, f"wall-clock call {name}() in simulation code"
                )


@register
class UnseededRandomRule(Rule):
    id = "DET002"
    title = "no module-level or unseeded random draws"
    rationale = (
        "the module-level random functions share one hidden global stream; "
        "any new caller perturbs every existing consumer and the replayed "
        "event order with it"
    )
    hint = (
        "draw from a named stream: RandomStreams.stream(name) in "
        "repro.sim.rng, or accept an injected random.Random"
    )

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        if ctx.path.endswith(UNSEEDED_RANDOM_ALLOWED):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "random" and len(parts) > 1:
                if parts[-1] in SEEDABLE_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx, node,
                            f"{name}() constructed without an explicit seed",
                        )
                else:
                    yield self.finding(
                        ctx, node,
                        f"{name}() draws from the global random stream",
                    )
            elif len(parts) > 2 and parts[0] == "numpy" and parts[1] == "random":
                if parts[-1] in SEEDABLE_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx, node,
                            f"{name}() constructed without an explicit seed",
                        )
                else:
                    yield self.finding(
                        ctx, node,
                        f"{name}() draws from numpy's global random stream",
                    )


def _contains_id_call(node: ast.AST) -> typing.Optional[ast.Call]:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "id"
        ):
            return child
    return None


@register
class IdOrderingRule(Rule):
    id = "DET003"
    title = "no id()-based ordering"
    rationale = (
        "id() is a memory address: it changes run to run, so any order "
        "derived from it replays differently every time"
    )
    hint = "order by a stable domain key (disk number, stripe index, name)"

    _ORDERED_CALLS = frozenset({"sorted", "min", "max"})
    _ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                is_sorter = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDERED_CALLS
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if not is_sorter:
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "key":
                        continue
                    if isinstance(keyword.value, ast.Name) and keyword.value.id == "id":
                        yield self.finding(
                            ctx, node, "sort key is id() — memory-address ordering"
                        )
                    elif _contains_id_call(keyword.value) is not None:
                        yield self.finding(
                            ctx, node, "sort key calls id() — memory-address ordering"
                        )
            elif isinstance(node, ast.Compare):
                if not any(isinstance(op, self._ORDER_OPS) for op in node.ops):
                    continue
                for operand in [node.left] + list(node.comparators):
                    if _contains_id_call(operand) is not None:
                        yield self.finding(
                            ctx, node,
                            "ordering comparison on id() — memory-address ordering",
                        )
                        break


def _is_hash_ordered(node: ast.AST) -> bool:
    """Does ``node`` evaluate to a hash-ordered iterable (set, dict.keys())?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_hash_ordered(node.left) or _is_hash_ordered(node.right)
    return False


@register
class UnorderedIterationRule(Rule):
    id = "DET004"
    title = "no iteration over hash-ordered collections"
    rationale = (
        "set iteration order depends on insertion history and hash "
        "randomization; feeding it into event scheduling, tuples, or "
        "hashes makes replays diverge"
    )
    hint = "wrap the expression in sorted(...) to pin the order"

    _MATERIALIZERS = frozenset({"tuple", "list", "enumerate", "iter"})

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_hash_ordered(node.iter):
                    yield self.finding(
                        ctx, node.iter,
                        "for-loop iterates a hash-ordered collection",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if _is_hash_ordered(generator.iter):
                        yield self.finding(
                            ctx, generator.iter,
                            "comprehension iterates a hash-ordered collection",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._MATERIALIZERS
                    and len(node.args) == 1
                    and not node.keywords
                    and _is_hash_ordered(node.args[0])
                ):
                    yield self.finding(
                        ctx, node,
                        f"{node.func.id}() materializes a hash-ordered "
                        "collection in hash order",
                    )
