"""Error-hygiene rule: ERR001.

:class:`~repro.array.faults.DataLossError` is the simulator's "the
array just lost data" signal. It must reach the accounting layer (or
the operator) — a broad ``except`` that catches and discards it turns
a measured data-loss event into a silent wrong answer. The rule flags
bare/broad handlers unless they visibly re-raise or a more specific
``DataLossError`` handler runs first.
"""

from __future__ import annotations

import ast
import typing

from repro.devtools.simlint.context import ModuleContext, dotted_parts
from repro.devtools.simlint.findings import Finding
from repro.devtools.simlint.registry import Rule, register

_BROAD = frozenset({"Exception", "BaseException"})


def _exception_names(type_node: typing.Optional[ast.expr]) -> typing.List[str]:
    """Terminal names of the exception types one handler catches."""
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names = []
    for node in nodes:
        parts = dotted_parts(node)
        if parts:
            names.append(parts[-1])
    return names


def _contains_raise(stmts: typing.Sequence[ast.stmt]) -> bool:
    stack: typing.List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class BroadExceptRule(Rule):
    id = "ERR001"
    title = "no broad except that can swallow DataLossError"
    rationale = (
        "DataLossError is a measured result, not a flake: a broad "
        "handler that discards it turns an accounted data-loss event "
        "into a silently wrong answer"
    )
    hint = (
        "catch the specific exceptions you can handle, add an `except "
        "DataLossError` arm before the broad one, or re-raise"
    )

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            data_loss_handled = False
            for handler in node.handlers:
                names = _exception_names(handler.type)
                if "DataLossError" in names:
                    data_loss_handled = True
                    continue
                broad = handler.type is None or any(
                    name in _BROAD for name in names
                )
                if not broad:
                    continue
                if data_loss_handled:
                    continue
                if _contains_raise(handler.body):
                    continue
                label = "bare except:" if handler.type is None else (
                    f"broad except {' / '.join(names)}"
                )
                yield self.finding(
                    ctx, handler,
                    f"{label} can swallow DataLossError without re-raising",
                )
