"""Sim-time and frozen-config hygiene rules: TIME001, MUT001.

Simulated timestamps are floats accumulated through arithmetic
(seek + rotation + transfer, retry backoff doublings...), so exact
``==``/``!=`` between two of them is brittle: a refactor that changes
the order of float additions flips the comparison without changing the
physics. State machines should track phase explicitly or compare with
inequalities.

Frozen configs (``ScenarioConfig``, ``FaultProfile``) are hashed into
cache keys; mutating one after construction desynchronizes the object
from the key it was cached under.
"""

from __future__ import annotations

import ast
import typing

from repro.devtools.simlint.context import ModuleContext
from repro.devtools.simlint.findings import Finding
from repro.devtools.simlint.registry import Rule, register

#: Terminal attribute/variable names treated as simulated timestamps.
_TIMESTAMP_SUFFIXES = ("_ms",)
_TIMESTAMP_NAMES = frozenset({"now"})

#: Frozen config types whose instances must never be mutated in place.
FROZEN_CONFIG_TYPES = ("FaultProfile", "ScenarioConfig")

#: Methods allowed to call object.__setattr__ (frozen-dataclass
#: construction and unpickling).
_CONSTRUCTOR_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__setstate__"}
)


def _is_timestamp(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        terminal = node.attr
    elif isinstance(node, ast.Name):
        terminal = node.id
    else:
        return False
    return terminal in _TIMESTAMP_NAMES or terminal.endswith(_TIMESTAMP_SUFFIXES)


@register
class SimTimeEqualityRule(Rule):
    id = "TIME001"
    title = "no ==/!= between float simulated timestamps"
    rationale = (
        "simulated timestamps are accumulated floats; exact equality "
        "flips under refactors that reorder additions, silently changing "
        "replayed behaviour"
    )
    hint = (
        "compare with <=/>= (or an explicit tolerance), or track the "
        "state transition explicitly instead of re-deriving it from time"
    )

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(_is_timestamp(operand) for operand in operands):
                yield self.finding(
                    ctx, node,
                    "exact ==/!= comparison involving a simulated timestamp",
                )


@register
class FrozenConfigMutationRule(Rule):
    id = "MUT001"
    title = "no mutation of frozen configs outside constructors"
    rationale = (
        "ScenarioConfig/FaultProfile are hashed into content-addressed "
        "cache keys; in-place mutation desynchronizes the object from "
        "the key it was cached under"
    )
    hint = "derive a new config with dataclasses.replace(...) instead"

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_setattr(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_attribute_stores(ctx, node)

    def _check_setattr(
        self, ctx: ModuleContext, node: ast.Call
    ) -> typing.Iterator[Finding]:
        if ctx.resolve(node.func) != "object.__setattr__":
            return
        function = ctx.enclosing_function(node)
        if function is not None and function.name in _CONSTRUCTOR_METHODS:
            return
        yield self.finding(
            ctx, node,
            "object.__setattr__ outside a constructor defeats frozen "
            "dataclass protection",
        )

    def _check_attribute_stores(
        self,
        ctx: ModuleContext,
        function: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> typing.Iterator[Finding]:
        frozen_names = self._frozen_annotated_names(function)
        if not frozen_names:
            return
        for node in ast.walk(function):
            targets: typing.List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in frozen_names
                ):
                    yield self.finding(
                        ctx, node,
                        f"assignment to attribute of frozen config "
                        f"{target.value.id!r} "
                        f"({frozen_names[target.value.id]})",
                    )

    @staticmethod
    def _frozen_annotated_names(
        function: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> typing.Dict[str, str]:
        """Parameter/variable names annotated with a frozen config type."""
        names: typing.Dict[str, str] = {}

        def note(name: str, annotation: typing.Optional[ast.expr]) -> None:
            if annotation is None:
                return
            try:
                text = ast.unparse(annotation)
            except (ValueError, AttributeError):  # pragma: no cover - malformed
                return
            for frozen_type in FROZEN_CONFIG_TYPES:
                if frozen_type in text:
                    names[name] = frozen_type

        args = function.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            note(arg.arg, arg.annotation)
        for node in ast.walk(function):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                note(node.target.id, node.annotation)
        return names
