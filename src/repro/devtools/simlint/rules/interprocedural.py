"""Whole-program rules: DET010/DET011, LOCK010/LOCK011, and the
runtime sanitizer rule IDs (SAN001–SAN006).

These run only under ``repro lint --project``: they need the
:class:`~repro.devtools.simlint.project.modules.ProjectContext` (every
module parsed and cross-linked) rather than one file at a time. The
SAN rules carry no static check at all — simsan emits them while a
macro scenario runs — but registering them here gives them stable IDs,
``--list-rules`` documentation, and the same suppression/baseline
machinery as everything else.
"""

from __future__ import annotations

import typing

from repro.devtools.simlint.findings import Finding
from repro.devtools.simlint.registry import ProjectRule, RuntimeRule, register

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.project.modules import ProjectContext

# The flow analyses import helpers from sibling rule modules
# (rules.determinism, rules.locks); importing them lazily inside each
# check keeps this module importable during package initialisation.


@register
class TransitiveNondeterminismRule(ProjectRule):
    id = "DET010"
    title = "call returns transitive nondeterminism"
    rationale = (
        "a helper that launders time.time()/random through two return "
        "statements defeats the per-module DET rules; its callers feed "
        "irreproducible values into the simulation without any flagged "
        "line in their own file"
    )
    hint = (
        "thread the value from the sim clock/seeded RNG instead, or mark "
        "the source with an inline justification "
        "(`# simlint: disable=DET001 (...)`) so the taint dies there; "
        "`# simlint: assume=deterministic (reason)` on the def overrides "
        "the summary"
    )
    severity = "error"

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Finding]:
        from repro.devtools.simlint.project.taint import taint_analysis

        analysis = taint_analysis(project)
        for call in analysis.tainted_calls:
            yield self.finding(
                call.func.ctx,
                call.node,
                f"{call.callee.name}() returns a value tainted by "
                f"{call.taint.kind}-nondeterminism: {call.taint.describe()}",
            )


@register
class TaintedKernelFeedRule(ProjectRule):
    id = "DET011"
    title = "nondeterministic value reaches the event kernel"
    rationale = (
        "a wall-clock or unseeded-random value used as a timeout, "
        "schedule time, or event payload perturbs the event order and "
        "breaks bit-identical replay — the property every golden-trace "
        "test and the sweep cache depend on"
    )
    hint = (
        "derive delays from env.now and parameters from the seeded "
        "ScenarioConfig; if the value is deliberately external, justify "
        "the source inline so the taint is discharged there"
    )
    severity = "error"

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Finding]:
        from repro.devtools.simlint.project.taint import taint_analysis

        analysis = taint_analysis(project)
        for hit in analysis.kernel_hits:
            yield self.finding(
                hit.func.ctx,
                hit.node,
                f"{hit.taint.kind}-nondeterministic value flows into "
                f"{hit.via}: {hit.taint.describe()}",
            )


@register
class InterproceduralLockLeakRule(ProjectRule):
    id = "LOCK010"
    title = "stripe lock escapes its cross-function release protocol"
    rationale = (
        "lock ownership that crosses a function boundary (the "
        "reconstruction piggyback handoff) is invisible to LOCK001; an "
        "early return added to the releasing helper leaks the lock on "
        "one path and deadlocks the stripe under fault injection"
    )
    hint = (
        "make the releasing helper unconditional (release in "
        "try/finally on every path), or release in the caller before "
        "branching; suppress with a reason only for protocols verified "
        "by a simsan scenario"
    )
    severity = "error"

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Finding]:
        from repro.devtools.simlint.project.lockflow import lockflow_analysis

        analysis = lockflow_analysis(project)
        for leak in analysis.leaks:
            node = analysis.leak_nodes.get(leak.node_id)
            if node is None:  # pragma: no cover - defensive
                continue
            yield self.finding(leak.func.ctx, node, leak.message)


@register
class LockOrderCycleRule(ProjectRule):
    id = "LOCK011"
    title = "lock acquisition sites form an order cycle"
    rationale = (
        "two code paths taking the same locks in opposite orders can "
        "deadlock under exactly the concurrent interleaving that "
        "degraded-mode reconstruction creates; the cycle is a property "
        "of the whole call graph, not any one function"
    )
    hint = (
        "impose a global acquisition order (e.g. ascending stripe "
        "index) or collapse the nested acquire into a single critical "
        "section; simsan verifies the order actually holds at runtime"
    )
    severity = "warning"

    def check_project(
        self, project: "ProjectContext"
    ) -> typing.Iterator[Finding]:
        from repro.devtools.simlint.project.lockflow import lockflow_analysis

        analysis = lockflow_analysis(project)
        for cycle in analysis.cycles:
            anchor_site = cycle.sites[0]
            anchored = analysis.site_nodes.get(anchor_site)
            if anchored is None:  # pragma: no cover - defensive
                continue
            func, node = anchored
            chain = " -> ".join(site.describe() for site in cycle.sites)
            yield self.finding(
                func.ctx,
                node,
                f"potential deadlock: acquired-while-holding edges form "
                f"a cycle: {chain} -> {cycle.sites[0].label}",
            )


def _runtime_rule(
    rule_id: str, rule_title: str, rule_rationale: str, rule_hint: str
) -> None:
    @register
    class _SanRule(RuntimeRule):
        id = rule_id
        title = rule_title
        rationale = rule_rationale
        hint = rule_hint
        severity = "error"

    _SanRule.__name__ = f"SanRule{rule_id}"


_runtime_rule(
    "SAN001",
    "process re-requests a stripe lock it already holds",
    "the kernel mutex is not reentrant: the second acquire waits on "
    "the first forever — a guaranteed self-deadlock",
    "release before re-acquiring, or widen the critical section",
)
_runtime_rule(
    "SAN002",
    "stripe locks acquired in inconsistent order at runtime",
    "an observed ABBA order over concrete stripes is one unlucky "
    "interleaving away from a deadlock the static graph only suspects",
    "acquire stripes in ascending order everywhere",
)
_runtime_rule(
    "SAN003",
    "release of a stripe lock nobody holds",
    "a double release corrupts the FIFO waiter queue: some later "
    "process is woken without the lock actually being free",
    "pair every release with exactly one acquire (try/finally)",
)
_runtime_rule(
    "SAN004",
    "lock released by a process that did not acquire it",
    "cross-process release outside a declared closer is an ownership "
    "handoff the static analysis cannot see — either undeclared "
    "protocol or a stripe-key collision",
    "route the handoff through a closer function (one that releases a "
    "parameter-keyed lock) so LOCK010 can track it",
)
_runtime_rule(
    "SAN005",
    "stripe locks still held at end of scenario",
    "a lock held at drain means some request path exited without "
    "releasing — the runtime twin of LOCK010",
    "find the exit path that skips the release; simsan reports the "
    "acquire site",
)
_runtime_rule(
    "SAN006",
    "runtime lock-order edge missing from the static graph",
    "simsan observed an acquired-while-holding pair the LOCK011 graph "
    "does not contain, so the static analysis has a blind spot "
    "(dynamic dispatch, getattr, or a lock object aliased past "
    "name-based matching)",
    "add type annotations or rename the alias so the static pass can "
    "see the lock; the runtime edge is the ground truth",
)
