"""Lock-discipline rule: LOCK001.

A poor-man's race detector for the discrete-event simulator. Stripe
locks (:mod:`repro.array.locks`) are acquired inside generator
processes; any ``yield`` between acquire and release is a point where
a simulated-fault exception can be thrown *into* the generator
(``generator.throw`` — see :mod:`repro.sim.process`). If the release
is not guaranteed by a ``try/finally``, that exception leaks the
stripe lock and every later request on the stripe deadlocks — a bug
that only manifests under fault injection, long after the code merged.

The rule checks every generator function: a statement that acquires a
stripe lock (``<chain>.locks.acquire(...)``, or any ``.acquire()`` on
an object whose name ends in ``locks``/``lock_table``) must either be
immediately followed by a ``try`` whose ``finally`` releases the same
lock object, or already sit inside such a ``try``. Lock-ownership
handoffs (release happens in another process) are legitimate but rare
enough to demand an explicit inline suppression with a reason.
"""

from __future__ import annotations

import ast
import typing

from repro.devtools.simlint.context import ModuleContext, dotted_parts
from repro.devtools.simlint.findings import Finding
from repro.devtools.simlint.registry import Rule, register

#: Final component of the object a lock method is called on.
LOCK_BASES = ("locks", "lock_table", "stripe_locks")


def _lock_chain(call: ast.Call, method: str) -> typing.Optional[str]:
    """``"self.locks"`` for ``self.locks.acquire(...)``; None otherwise."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == method):
        return None
    parts = dotted_parts(func.value)
    if not parts:
        return None
    if parts[-1] in LOCK_BASES or parts[-1].endswith("_locks"):
        return ".".join(parts)
    return None


def _find_call(node: ast.AST, method: str) -> typing.Optional[typing.Tuple[ast.Call, str]]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            chain = _lock_chain(child, method)
            if chain is not None:
                return child, chain
    return None


def _is_generator(func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    """Does ``func`` itself (not a nested def) contain a yield?"""
    stack: typing.List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _releases_in(stmts: typing.Sequence[ast.stmt], chain: str) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _lock_chain(node, "release") == chain:
                return True
    return False


_BLOCK_FIELDS = ("body", "orelse", "finalbody")


@register
class LockReleaseRule(Rule):
    id = "LOCK001"
    title = "stripe-lock acquire must release in try/finally"
    rationale = (
        "a simulated-fault exception thrown into a generator between "
        "acquire and release leaks the stripe lock and deadlocks every "
        "later request on that stripe"
    )
    hint = (
        "follow `yield locks.acquire(s)` immediately with try/finally "
        "releasing the same lock; suppress with a reason for deliberate "
        "ownership handoffs"
    )

    def check(self, ctx: ModuleContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(node):
                continue
            yield from self._check_block(ctx, node.body, guarded=frozenset())

    def _check_block(
        self,
        ctx: ModuleContext,
        stmts: typing.Sequence[ast.stmt],
        guarded: typing.FrozenSet[str],
    ) -> typing.Iterator[Finding]:
        """Scan one statement list; ``guarded`` holds lock chains whose
        release is already guaranteed by an enclosing finally."""
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            compound = any(
                getattr(stmt, fieldname, None) for fieldname in _BLOCK_FIELDS
            ) or bool(getattr(stmt, "handlers", None))
            # Only simple statements are judged here; acquires inside a
            # compound statement's blocks are judged by the recursion,
            # against their own sibling list and guard set.
            if not compound:
                acquire = _find_call(stmt, "acquire")
                if acquire is not None:
                    call, chain = acquire
                    if chain not in guarded and not self._next_is_guarding_try(
                        stmts, index, chain
                    ):
                        yield self.finding(
                            ctx, call,
                            f"{chain}.acquire() on a yield-containing path is "
                            "not guarded by try/finally release",
                        )
            # Recurse into nested blocks with updated guards.
            if isinstance(stmt, ast.Try):
                inner = guarded
                for chain in self._released_chains(stmt.finalbody):
                    inner = inner | {chain}
                yield from self._check_block(ctx, stmt.body, inner)
                for handler in stmt.handlers:
                    yield from self._check_block(ctx, handler.body, inner)
                yield from self._check_block(ctx, stmt.orelse, inner)
                yield from self._check_block(ctx, stmt.finalbody, guarded)
            else:
                for fieldname in _BLOCK_FIELDS:
                    inner_stmts = getattr(stmt, fieldname, None)
                    if inner_stmts:
                        yield from self._check_block(ctx, inner_stmts, guarded)

    @staticmethod
    def _released_chains(finalbody: typing.Sequence[ast.stmt]) -> typing.List[str]:
        chains = []
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    chain = _lock_chain(node, "release")
                    if chain is not None:
                        chains.append(chain)
        return chains

    @staticmethod
    def _next_is_guarding_try(
        stmts: typing.Sequence[ast.stmt], index: int, chain: str
    ) -> bool:
        if index + 1 >= len(stmts):
            return False
        nxt = stmts[index + 1]
        return isinstance(nxt, ast.Try) and _releases_in(nxt.finalbody, chain)
