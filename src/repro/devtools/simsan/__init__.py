"""simsan: the runtime lock-order sanitizer.

The static layer (``repro lint --project``) proves what it can about
stripe-lock protocols from the source; simsan watches the protocols
actually execute. A :class:`~repro.devtools.simsan.monitor.LockMonitor`
hangs off :class:`~repro.array.locks.StripeLockTable` (opt-in, None in
every normal run, observation only — an instrumented scenario is
bit-identical to an uninstrumented one) and records who acquires which
stripe from where, in what order, and who releases it. Violations
(SAN001–SAN006) come out as ordinary simlint findings, honouring the
same inline suppressions, and the observed lock-order graph is
cross-checked against the static LOCK011 graph so each layer audits
the other's blind spots.

Run it with ``python -m repro simsan``.
"""

from repro.devtools.simsan.monitor import LockMonitor, StaticLockModel

__all__ = ["LockMonitor", "StaticLockModel"]
