"""``python -m repro.devtools.simsan`` — direct sanitizer entry point."""

import sys

from repro.devtools.simsan.cli import main

if __name__ == "__main__":
    sys.exit(main())
