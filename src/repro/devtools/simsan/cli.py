"""``python -m repro simsan`` — run sanitizer-instrumented scenarios.

Each named scenario is a macro simulation chosen to exercise a lock
protocol the static analysis reasons about:

- ``recon`` — reconstruction with the redirect+piggyback algorithm
  under a mixed user workload: the cross-process lock handoff
  (``_read_unit`` → spawned ``_piggyback_write``) that motivated
  LOCK010 runs thousands of times.
- ``degraded`` — degraded-mode operation (failed disk, no
  replacement): every read of the failed disk takes stripe locks for
  on-the-fly reconstruction.
- ``pq-campaign`` — a dual-syndrome (P+Q) fault campaign at micro
  scale: stochastic failures force rebuilds while a second failure is
  outstanding, the hardest locking regime the array supports.

Exit codes mirror simlint: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing

from repro.devtools.simlint.findings import LintReport
from repro.devtools.simlint.reporters import format_json, format_text
from repro.devtools.simsan.monitor import LockMonitor, StaticLockModel

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _recon_config():
    from repro.experiments.runner import ScenarioConfig
    from repro.recon.algorithms import algorithm_by_name

    return ScenarioConfig(
        stripe_size=5,
        user_rate_per_s=60.0,
        read_fraction=0.6,
        mode="recon",
        algorithm=algorithm_by_name("redirect+piggyback"),
        recon_workers=2,
        scale="tiny",
    )


def _degraded_config():
    from repro.experiments.runner import ScenarioConfig

    return ScenarioConfig(
        stripe_size=5,
        user_rate_per_s=60.0,
        read_fraction=0.6,
        mode="degraded",
        scale="tiny",
    )


def _pq_campaign_config():
    from repro.experiments.campaign import (
        MICRO,
        REPLACEMENT_DELAY_MS,
        campaign_profile,
    )
    from repro.experiments.runner import ScenarioConfig
    from repro.faults.profile import MS_PER_HOUR

    return ScenarioConfig(
        stripe_size=6,
        user_rate_per_s=0.0,
        read_fraction=0.5,
        mode="campaign",
        recon_workers=8,
        scale=MICRO,
        spares=512,
        replacement_delay_ms=REPLACEMENT_DELAY_MS,
        mission_ms=4.0 * MS_PER_HOUR,
        fault_profile=campaign_profile(1992),
        syndromes=2,
    )


#: name -> (config factory, expect locks drained at end of scenario).
#: A campaign is cut off at mission end with operations legitimately in
#: flight, so SAN005 (held-at-end) is not meaningful there.
SCENARIOS: typing.Dict[str, typing.Tuple[typing.Callable, bool]] = {
    "recon": (_recon_config, True),
    "degraded": (_degraded_config, True),
    "pq-campaign": (_pq_campaign_config, False),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro simsan",
        description=(
            "simsan: runtime stripe-lock sanitizer. Runs macro scenarios "
            "with an instrumented lock table (observation only — results "
            "stay bit-identical) and reports SAN001-SAN006 violations, "
            "cross-checked against the static LOCK011 lock-order graph."
        ),
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        default=[],
        help=f"scenarios to run (default: all of {', '.join(SCENARIOS)})",
    )
    parser.add_argument(
        "--no-static",
        action="store_true",
        help=(
            "skip the static lock-flow cross-check (SAN004 closer spans "
            "and the SAN006 graph comparison need it)"
        ),
    )
    parser.add_argument(
        "--src",
        default="src/repro",
        help="source tree for the static cross-check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--measure-overhead",
        action="store_true",
        help="time each scenario with and without the monitor attached",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also report suppressed findings (text format)",
    )
    return parser


def _static_model(src: str) -> typing.Optional[StaticLockModel]:
    from repro.devtools.simlint.project.modules import ProjectContext

    root = pathlib.Path(src)
    if not root.is_dir():
        return None
    files = sorted(root.rglob("*.py"))
    return StaticLockModel.from_project(ProjectContext(files))


def run_scenarios(
    names: typing.Sequence[str],
    static: typing.Optional[StaticLockModel],
    measure_overhead: bool = False,
    stream: typing.Optional[typing.TextIO] = None,
) -> LintReport:
    """Run each scenario instrumented; pool violations into one report."""
    from repro.experiments.runner import run_scenario

    if stream is None:
        # Resolved at call time: binding sys.stderr as the default
        # would pin whatever stream was installed at import.
        stream = sys.stderr
    report = LintReport()
    for name in names:
        factory, expect_drained = SCENARIOS[name]
        monitor = LockMonitor(static=static, expect_drained=expect_drained)
        config = factory()
        if measure_overhead:
            # Wall-clock cost of the sanitizer itself: tooling
            # measurement, nothing here feeds simulation state.
            import time

            t0 = time.perf_counter()  # simlint: disable=DET001 (overhead stopwatch)
            run_scenario(config, collect_metrics=False)
            t_plain = time.perf_counter() - t0  # simlint: disable=DET001 (overhead stopwatch)
            t0 = time.perf_counter()  # simlint: disable=DET001 (overhead stopwatch)
            run_scenario(config, collect_metrics=False, lock_monitor=monitor)
            t_instr = time.perf_counter() - t0  # simlint: disable=DET001 (overhead stopwatch)
            overhead = (t_instr / t_plain - 1.0) * 100.0 if t_plain > 0 else 0.0
            stream.write(
                f"simsan: {name}: plain {t_plain * 1000.0:.0f} ms, "
                f"instrumented {t_instr * 1000.0:.0f} ms "
                f"({overhead:+.1f}% overhead)\n"
            )
        else:
            run_scenario(config, collect_metrics=False, lock_monitor=monitor)
        monitor.finish()
        stream.write(
            f"simsan: {name}: {monitor.acquires} acquires, "
            f"{monitor.releases} releases, "
            f"{len(monitor.site_edges)} order edge(s), "
            f"{len(monitor.violations)} violation(s)\n"
        )
        report.files_checked += 1  # one scenario ~ one "file" in the summary
        for finding in monitor.findings():
            if finding.suppressed:
                report.suppressed.append(finding)
            else:
                report.active.append(finding)
    report.active.sort(key=lambda finding: finding.sort_key())
    return report


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = args.scenarios or list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"simsan: error: unknown scenario(s): {', '.join(unknown)}; "
            f"choose from {', '.join(SCENARIOS)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    static = None if args.no_static else _static_model(args.src)
    if static is None and not args.no_static:
        print(
            f"simsan: note: {args.src} not found, static cross-check off",
            file=sys.stderr,
        )
    report = run_scenarios(
        names, static, measure_overhead=args.measure_overhead
    )
    if args.format == "json":
        sys.stdout.write(format_json(report))
    else:
        print(format_text(report, verbose=args.verbose))
    return EXIT_OK if report.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
