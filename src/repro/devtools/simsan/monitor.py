"""The lock monitor: runtime observation of stripe-lock protocol.

Owner identity is the *generator frame* that called
``StripeLockTable.acquire``/``release``. The simulation kernel has no
current-process notion, but every lock operation in this codebase
happens inside a generator process whose frame object is stable for
the generator's whole life — so the frame is exactly the process, with
no kernel changes and no cooperation from the instrumented code.

The monitor is wired *before* the lock table mutates (see
``locks.py``), sees grants both immediate (``granted=True``) and by
FIFO handoff (the head waiter passed to ``on_release``), and never
touches lock state itself: with the monitor attached the simulation
must remain event-for-event identical, which the integration tests
assert against golden traces.
"""

from __future__ import annotations

import os
import sys
import typing
from dataclasses import dataclass, field

from repro.devtools.simlint.findings import Finding

#: Filenames whose frames are skipped when attributing a lock call.
_SKIP_SUFFIXES = ("/locks.py", "/monitor.py")


class Site(typing.NamedTuple):
    """Where a lock call happened, in simlint finding coordinates."""

    path: str
    line: int
    function: str

    def describe(self) -> str:
        return f"{self.function} ({self.path}:{self.line})"


@dataclass
class Hold:
    stripe: int
    site: Site
    owner: typing.Any  # the acquiring generator's frame object


@dataclass(frozen=True)
class Violation:
    rule: str
    site: Site
    message: str


@dataclass
class StaticLockModel:
    """What the static lock-flow analysis predicts, for cross-checking.

    ``edges`` is the LOCK011 acquired-while-holding graph projected to
    ``(path, line)`` pairs; ``closer_spans`` are the line spans of
    functions the analysis recognised as closers (they release a
    parameter-keyed lock on behalf of a caller), where a cross-process
    release is declared protocol rather than a SAN004 violation.
    """

    edges: typing.Set[
        typing.Tuple[typing.Tuple[str, int], typing.Tuple[str, int]]
    ] = field(default_factory=set)
    closer_spans: typing.List[typing.Tuple[str, int, int]] = field(
        default_factory=list
    )

    @classmethod
    def from_project(cls, project) -> "StaticLockModel":
        from repro.devtools.simlint.project.lockflow import lockflow_analysis

        analysis = lockflow_analysis(project)
        edges = {
            ((source.path, source.line), (target.path, target.line))
            for source, targets in analysis.edges.items()
            for target in targets
        }
        spans = []
        for qualname, summary in sorted(analysis.summaries.items()):
            if not summary.closes:
                continue
            func = project.functions[qualname]
            first, last = func.span()
            spans.append((func.ctx.path, first, last))
        return cls(edges=edges, closer_spans=spans)

    def in_closer_span(self, site: Site) -> bool:
        return any(
            site.path == path and first <= site.line <= last
            for path, first, last in self.closer_spans
        )


def _normalize(filename: str) -> str:
    path = filename.replace("\\", "/")
    try:
        relative = os.path.relpath(filename, os.getcwd()).replace("\\", "/")
    except ValueError:  # pragma: no cover - different drive on Windows
        return path
    return path if relative.startswith("..") else relative


class LockMonitor:
    """Observes one scenario's stripe-lock traffic; judges it at the end."""

    def __init__(
        self,
        static: typing.Optional[StaticLockModel] = None,
        expect_drained: bool = True,
    ):
        self.static = static
        #: Whether the scenario is expected to end with no locks held
        #: (recon/degraded drain; a campaign cut off mid-mission is not).
        self.expect_drained = expect_drained
        self.acquires = 0
        self.releases = 0
        #: id(event) -> (event, stripe, site, owner); the event object
        #: is pinned so ids cannot be reused while pending.
        self._pending: typing.Dict[int, typing.Tuple] = {}
        self._holders: typing.Dict[int, Hold] = {}
        #: (held_stripe, then_stripe) -> example (held_site, new_site).
        self._stripe_pairs: typing.Dict[
            typing.Tuple[int, int], typing.Tuple[Site, Site]
        ] = {}
        self.site_edges: typing.Set[
            typing.Tuple[typing.Tuple[str, int], typing.Tuple[str, int]]
        ] = set()
        self.violations: typing.List[Violation] = []
        self._path_cache: typing.Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _caller_site(self) -> typing.Tuple[Site, typing.Any]:
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            normalized = self._path_cache.get(filename)
            if normalized is None:
                normalized = _normalize(filename)
                self._path_cache[filename] = normalized
            if not normalized.endswith(_SKIP_SUFFIXES):
                return (
                    Site(normalized, frame.f_lineno, frame.f_code.co_name),
                    frame,
                )
            frame = frame.f_back
        raise RuntimeError("lock call with no attributable frame")

    # ------------------------------------------------------------------
    # Hooks (called by StripeLockTable)
    # ------------------------------------------------------------------
    def on_acquire(self, stripe: int, event, granted: bool) -> None:
        site, frame = self._caller_site()
        self.acquires += 1
        holder = self._holders.get(stripe)
        if holder is not None and holder.owner is frame:
            self.violations.append(
                Violation(
                    "SAN001",
                    site,
                    f"stripe {stripe} re-requested by the process that "
                    f"already holds it (acquired at {holder.site.describe()}) "
                    "— the FIFO mutex is not reentrant, this waits forever",
                )
            )
        self._pending[id(event)] = (event, stripe, site, frame)
        if granted:
            self._grant(event)

    def on_release(self, stripe: int, next_event) -> None:
        site, frame = self._caller_site()
        self.releases += 1
        hold = self._holders.pop(stripe, None)
        if hold is None:
            self.violations.append(
                Violation(
                    "SAN003",
                    site,
                    f"stripe {stripe} released but no process holds it — "
                    "double release or release of a never-acquired stripe",
                )
            )
        elif hold.owner is not frame and not (
            self.static is not None and self.static.in_closer_span(site)
        ):
            self.violations.append(
                Violation(
                    "SAN004",
                    site,
                    f"stripe {stripe} released by a different process than "
                    f"acquired it (acquired at {hold.site.describe()}), and "
                    "the release site is not inside any statically-declared "
                    "closer — an ownership handoff the lock-flow analysis "
                    "cannot see",
                )
            )
        if next_event is not None:
            self._grant(next_event)

    # ------------------------------------------------------------------
    def _grant(self, event) -> None:
        entry = self._pending.pop(id(event), None)
        if entry is None:  # pragma: no cover - defensive
            return
        _, stripe, site, frame = entry
        for other in self._holders.values():
            if other.owner is frame and other.stripe != stripe:
                self._record_edge(other, stripe, site)
        self._holders[stripe] = Hold(stripe, site, frame)

    def _record_edge(self, held: Hold, stripe: int, site: Site) -> None:
        self.site_edges.add(
            ((held.site.path, held.site.line), (site.path, site.line))
        )
        pair = (held.stripe, stripe)
        if pair in self._stripe_pairs:
            return
        self._stripe_pairs[pair] = (held.site, site)
        reverse = self._stripe_pairs.get((stripe, held.stripe))
        if reverse is not None:
            self.violations.append(
                Violation(
                    "SAN002",
                    site,
                    f"stripes {held.stripe} and {stripe} acquired in both "
                    f"orders: here {held.stripe} is held "
                    f"({held.site.describe()}) while taking {stripe}; "
                    f"earlier {stripe} was held ({reverse[0].describe()}) "
                    f"while taking {held.stripe} at {reverse[1].describe()} "
                    "— one unlucky interleaving deadlocks both",
                )
            )

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End-of-scenario checks; call once after the run completes."""
        if self.expect_drained:
            for stripe in sorted(self._holders):
                hold = self._holders[stripe]
                self.violations.append(
                    Violation(
                        "SAN005",
                        hold.site,
                        f"stripe {stripe} still held at end of scenario "
                        "(acquired here) — some exit path skipped the "
                        "release",
                    )
                )
        if self.static is not None:
            for edge in sorted(self.site_edges - self.static.edges):
                (src_path, src_line), (dst_path, dst_line) = edge
                self.violations.append(
                    Violation(
                        "SAN006",
                        Site(dst_path, dst_line, "<runtime>"),
                        "acquired-while-holding edge observed at runtime "
                        f"({src_path}:{src_line} -> {dst_path}:{dst_line}) "
                        "is missing from the static LOCK011 graph — the "
                        "static analysis has a blind spot here",
                    )
                )

    # ------------------------------------------------------------------
    # Reporting (simlint machinery)
    # ------------------------------------------------------------------
    def findings(self) -> typing.List[Finding]:
        """Violations as simlint findings, inline suppressions honoured."""
        from repro.devtools.simlint.context import ModuleContext
        from repro.devtools.simlint.registry import all_rules

        rules = {rule.id: rule for rule in all_rules()}
        contexts: typing.Dict[str, typing.Optional[ModuleContext]] = {}

        def context_for(path: str) -> typing.Optional[ModuleContext]:
            if path not in contexts:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        contexts[path] = ModuleContext(path, handle.read())
                except (OSError, SyntaxError, UnicodeDecodeError):
                    contexts[path] = None
            return contexts[path]

        results = []
        for violation in self.violations:
            rule = rules.get(violation.rule)
            ctx = context_for(violation.site.path)
            line = violation.site.line
            snippet = ""
            if ctx is not None and 1 <= line <= len(ctx.lines):
                snippet = ctx.lines[line - 1].strip()
            finding = Finding(
                rule=violation.rule,
                path=violation.site.path,
                line=line,
                col=0,
                message=violation.message,
                severity=rule.severity if rule is not None else "error",
                symbol=violation.site.function,
                snippet=snippet,
                hint=rule.hint if rule is not None else "",
            )
            if ctx is not None:
                reason = ctx.suppression_for(violation.rule, line)
                if reason is not None:
                    finding.suppressed = True
                    finding.suppress_reason = reason
            results.append(finding)
        results.sort(key=Finding.sort_key)
        return results
