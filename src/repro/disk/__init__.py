"""Sector-accurate magnetic disk model.

Models the aspects of a disk drive the paper identifies as decisive —
seek time as a function of cylinder distance, rotational position as a
function of wall-clock time, per-track sector layout with skew, and
head switches — so that sequential transfers are much faster than
random ones. This non-work-preserving behaviour is precisely what the
Muntz & Lui single-service-rate model misses and what drives the
paper's surprising reconstruction-algorithm results.

The reference drive is the IBM 0661 Model 370 "Lightning" from
Table 5-1(b); scaled-down variants with fewer cylinders (same track
geometry) keep tests and benchmarks fast.
"""

from repro.disk.specs import IBM_0661, DiskSpec, scaled_spec
from repro.disk.geometry import DiskGeometry, SectorRange
from repro.disk.seek import SeekModel
from repro.disk.drive import Disk, DiskRequest, DiskStats, service_components
from repro.disk.constant import ConstantRateDisk
from repro.disk.vectorized import kernel_mode, service_times

__all__ = [
    "ConstantRateDisk",
    "Disk",
    "DiskGeometry",
    "DiskRequest",
    "DiskSpec",
    "DiskStats",
    "IBM_0661",
    "SectorRange",
    "SeekModel",
    "kernel_mode",
    "scaled_spec",
    "service_components",
    "service_times",
]
