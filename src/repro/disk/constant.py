"""A work-preserving, constant-rate disk for the Muntz & Lui ablation.

The M&L analytic model prices every access — sequential or random — at
one fixed service time (``1/mu``). This drive realizes that assumption
inside the simulator: no seeks, no rotation, no benefit for sequential
access. Running the reconstruction experiments on it reproduces the
M&L *conclusions* (the redirecting algorithms always help), and
switching back to the real :class:`~repro.disk.drive.Disk` flips them,
which is exactly the paper's Section 8.3 argument.
"""

from __future__ import annotations

import typing

from repro.disk.drive import Disk
from repro.disk.specs import DiskSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Environment


class ConstantRateDisk(Disk):
    """A disk whose every access takes exactly ``1000 / rate_per_s`` ms."""

    def __init__(
        self,
        env: "Environment",
        spec: DiskSpec,
        disk_id: int = 0,
        scheduler=None,
        policy: str = "fifo",
        rate_per_s: float = 46.0,
    ):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.service_ms = 1000.0 / rate_per_s
        super().__init__(env, spec, disk_id=disk_id, scheduler=scheduler, policy=policy)

    def _service_time(self, request):
        # Fixed cost regardless of position; the head "moves" so the
        # inherited stats and scheduler interfaces stay meaningful.
        self.head_cylinder = self.geometry.cylinder_of(request.start_sector)
        return self.service_ms, 0.0, 0.0, self.service_ms
