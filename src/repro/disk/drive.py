"""The disk drive server process.

Each :class:`Disk` is a single server inside the event-driven
simulation: requests are submitted to its scheduler queue; the drive
process services one request at a time, advancing the clock by a
physically-computed service time (seek + rotational latency + transfer,
split per track with skew-aware head switches), then fires the
request's completion event.

The drive is deliberately *not* work-preserving: service time depends
on the head position left by the previous request and on the platter's
rotational phase at the moment service starts — the properties the
paper shows the Muntz & Lui analytic model cannot capture.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.disk.geometry import DiskGeometry
from repro.disk.scheduling.base import Scheduler, make_scheduler
from repro.disk.seek import SeekModel
from repro.disk.specs import DiskSpec
from repro.metrics.accumulators import WindowedDuration

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Environment

#: Request provenance tags used by the statistics and the paper's
#: user-vs-reconstruction accounting.
KIND_USER = "user"
KIND_RECON = "recon"


def service_components(
    runs: typing.Sequence,
    head_cylinder: int,
    direction: int,
    start_ms: float,
    seek_time: typing.Callable[[int], float],
    sector_time_ms: float,
    sectors_per_track: int,
    head_switch_ms: float,
) -> typing.Tuple[float, float, float, float, int, int]:
    """Pure scalar service-time math for one request's track runs.

    This is the **reference implementation** of the disk service-time
    kernel: the batch path in :mod:`repro.disk.vectorized` must
    reproduce its results bit-for-bit (pinned by the property tests in
    ``tests/disk/test_vectorized.py``), so any change to the arithmetic
    here — including operation *order*, which decides float rounding —
    must be mirrored there.

    Returns ``(service_ms, seek_ms, rotation_ms, transfer_ms,
    head_cylinder, direction)`` where the last two are the head state
    after the transfer.
    """
    clock = start_ms
    seek_ms = rotation_ms = transfer_ms = 0.0
    current_cylinder = head_cylinder
    for index, run in enumerate(runs):
        if run.cylinder != current_cylinder:
            this_seek = seek_time(abs(run.cylinder - current_cylinder))
            direction = 1 if run.cylinder > current_cylinder else -1
            current_cylinder = run.cylinder
            seek_ms += this_seek
            clock += this_seek
        elif index > 0:
            # Same cylinder, next head: pay the switch settle time.
            switch = head_switch_ms
            seek_ms += switch
            clock += switch
        position = (clock / sector_time_ms) % sectors_per_track
        slots_to_wait = (run.rotational_start - position) % sectors_per_track
        # Float round-off can turn an exact hit (wait 0) into a wait
        # of one full revolution minus epsilon; snap it back to zero.
        if slots_to_wait > sectors_per_track - 1e-6:
            slots_to_wait = 0.0
        wait = slots_to_wait * sector_time_ms
        rotation_ms += wait
        clock += wait
        transfer = run.count * sector_time_ms
        transfer_ms += transfer
        clock += transfer
    return (
        clock - start_ms,
        seek_ms,
        rotation_ms,
        transfer_ms,
        current_cylinder,
        direction,
    )


class DiskRequest:
    """One physical disk access.

    ``done`` fires with the completion time when the transfer finishes.

    A plain ``__slots__`` class rather than a dataclass: hundreds of
    thousands are allocated per scenario, and the per-instance dict is
    measurable. (``@dataclass(slots=True)`` needs Python 3.10; the CI
    matrix starts at 3.9.)
    """

    __slots__ = (
        "start_sector",
        "sector_count",
        "is_write",
        "kind",
        "done",
        "submit_ms",
        "start_service_ms",
        "complete_ms",
        "cylinder",
        "error",
    )

    def __init__(
        self,
        start_sector: int,
        sector_count: int,
        is_write: bool,
        kind: str = KIND_USER,
        done: object = None,
        submit_ms: float = 0.0,
        start_service_ms: float = 0.0,
        complete_ms: float = 0.0,
        cylinder: int = 0,
        error: typing.Optional[str] = None,
    ):
        self.start_sector = start_sector
        self.sector_count = sector_count
        self.is_write = is_write
        self.kind = kind
        self.done = done  # Event, attached at submit time
        self.submit_ms = submit_ms
        self.start_service_ms = start_service_ms
        self.complete_ms = complete_ms
        self.cylinder = cylinder  # cached for the scheduler
        #: Error outcome: None on success, else ``"media"`` / ``"timeout"``
        #: (see :mod:`repro.faults.state`). Only ever set when the disk
        #: carries a fault state.
        self.error = error

    def __repr__(self) -> str:
        op = "write" if self.is_write else "read"
        return (
            f"<DiskRequest {op} [{self.start_sector}, "
            f"{self.start_sector + self.sector_count}) kind={self.kind}>"
        )

    @property
    def queue_wait_ms(self) -> float:
        return self.start_service_ms - self.submit_ms

    @property
    def service_ms(self) -> float:
        return self.complete_ms - self.start_service_ms

    @property
    def response_ms(self) -> float:
        return self.complete_ms - self.submit_ms


@dataclass
class DiskStats:
    """Cumulative per-disk counters."""

    completed: int = 0
    completed_by_kind: typing.Dict[str, int] = field(default_factory=dict)
    buffer_hits: int = 0
    busy_ms: float = 0.0
    total_service_ms: float = 0.0
    total_queue_wait_ms: float = 0.0
    total_seek_ms: float = 0.0
    total_rotation_ms: float = 0.0
    total_transfer_ms: float = 0.0
    #: Busy time clipped to the measurement window: the controller sets
    #: ``busy_window.since_ms`` to the scenario's warmup boundary, so
    #: utilization excludes the warm-up ramp (``busy_ms`` above remains
    #: the raw whole-run total).
    busy_window: WindowedDuration = field(default_factory=WindowedDuration)

    def record(self, request: DiskRequest, seek_ms: float, rotation_ms: float,
               transfer_ms: float) -> None:
        self.completed += 1
        self.completed_by_kind[request.kind] = self.completed_by_kind.get(request.kind, 0) + 1
        service_ms = request.complete_ms - request.start_service_ms
        self.busy_ms += service_ms
        self.busy_window.add(request.start_service_ms, request.complete_ms)
        self.total_service_ms += service_ms
        self.total_queue_wait_ms += request.start_service_ms - request.submit_ms
        self.total_seek_ms += seek_ms
        self.total_rotation_ms += rotation_ms
        self.total_transfer_ms += transfer_ms

    def mean_service_ms(self) -> float:
        return self.total_service_ms / self.completed if self.completed else 0.0


class Disk:
    """One disk drive: queue, head state, and the server process."""

    def __init__(
        self,
        env: "Environment",
        spec: DiskSpec,
        disk_id: int = 0,
        scheduler: typing.Optional[Scheduler] = None,
        policy: str = "cvscan",
        track_buffer: bool = False,
        buffer_hit_ms: float = 0.5,
    ):
        self.env = env
        self.spec = spec
        self.disk_id = disk_id
        self.geometry = DiskGeometry(spec)
        self.seek_model = SeekModel.for_spec(spec)
        # DiskSpec derives these on every property read; the service-time
        # loop reads them per track run, so snapshot them once. The spec
        # is frozen, so the snapshot cannot go stale.
        self._sector_time_ms = spec.sector_time_ms
        self._sectors_per_track = spec.sectors_per_track
        self._head_switch_ms = spec.head_switch_ms
        self._cylinder_of = self.geometry.cylinder_of  # bound once for submit()
        self.scheduler = scheduler if scheduler is not None else make_scheduler(
            policy, spec.cylinders
        )
        # Position-aware policies (SPTF) price candidates off the live
        # drive state: give them the drive if they ask for it.
        bind = getattr(self.scheduler, "bind_disk", None)
        if bind is not None:
            bind(self)
        self.head_cylinder = 0
        self.direction = 1
        self.stats = DiskStats()
        #: Optional single-track read buffer (the 0661 had one). A read
        #: wholly inside the most recently read track is served from the
        #: buffer at ``buffer_hit_ms``; any write to that track
        #: invalidates it. Off by default — the paper's driver used no
        #: caching.
        self.track_buffer = track_buffer
        self.buffer_hit_ms = buffer_hit_ms
        self._buffered_track: typing.Optional[typing.Tuple[int, int]] = None
        #: Optional fault model (:class:`repro.faults.state.DiskFaultState`).
        #: None keeps the drive's behavior — timing and completions —
        #: bit-identical to a fault-free build.
        self.fault_state = None
        #: Optional waiting-queue depth gauge
        #: (:class:`repro.metrics.accumulators.TimeWeightedGauge`),
        #: attached by the controller when a metrics registry is in
        #: play. None keeps submit/pop free of any extra work.
        self.queue_gauge = None
        self._idle_wakeup = None
        self._process = env.process(self._run(), name=f"disk-{disk_id}")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: DiskRequest):
        """Queue a request; returns the request's completion event."""
        if request.sector_count < 1:
            raise ValueError("requests must transfer at least one sector")
        env = self.env
        request.done = env.event()
        request.submit_ms = env.now
        request.cylinder = self._cylinder_of(request.start_sector)
        self.scheduler.push(request)
        if self.queue_gauge is not None:
            self.queue_gauge.add(1, request.submit_ms)
        if self._idle_wakeup is not None and not self._idle_wakeup.triggered:
            self._idle_wakeup.succeed()
        return request.done

    def access(self, start_sector: int, sector_count: int, is_write: bool,
               kind: str = KIND_USER):
        """Convenience: build and submit a request, returning its event."""
        request = DiskRequest(
            start_sector=start_sector,
            sector_count=sector_count,
            is_write=is_write,
            kind=kind,
        )
        return self.submit(request)

    @property
    def queue_length(self) -> int:
        return len(self.scheduler)

    # ------------------------------------------------------------------
    # Server process
    # ------------------------------------------------------------------
    def _run(self):
        # env / scheduler / stats never change over the drive's life;
        # the loop runs once per serviced request, so bind them once.
        env = self.env
        scheduler = self.scheduler
        stats = self.stats
        service_time = self._service_time
        timeout = env.timeout
        while True:
            while not scheduler:
                self._idle_wakeup = env.event()
                yield self._idle_wakeup
            self._idle_wakeup = None
            request = scheduler.pop(self.head_cylinder, self.direction)
            request.start_service_ms = env.now
            if self.queue_gauge is not None:
                self.queue_gauge.add(-1, request.start_service_ms)
            service_ms, seek_ms, rotation_ms, transfer_ms = service_time(request)
            yield timeout(service_ms)
            if self.fault_state is not None:
                error, penalty_ms = self.fault_state.outcome_for(
                    request.start_sector, request.sector_count, request.is_write
                )
                if penalty_ms > 0:
                    yield env.timeout(penalty_ms)
                request.error = error
            request.complete_ms = env.now
            stats.record(request, seek_ms, rotation_ms, transfer_ms)
            request.done.succeed(request)

    # ------------------------------------------------------------------
    # Physical timing
    # ------------------------------------------------------------------
    def _rotational_position(self, at_ms: float) -> float:
        """Platter angle at an absolute time, in (fractional) sector slots."""
        return (at_ms / self._sector_time_ms) % self._sectors_per_track

    def _service_time(self, request: DiskRequest) -> typing.Tuple[float, float, float, float]:
        """Compute service time; updates head cylinder and direction."""
        runs = self.geometry.split_by_track(request.start_sector, request.sector_count)
        if self.track_buffer:
            tracks = {(run.cylinder, run.track) for run in runs}
            if (
                not request.is_write
                and len(tracks) == 1
                and next(iter(tracks)) == self._buffered_track
            ):
                # Whole read served from the track buffer: no mechanical work.
                self.stats.buffer_hits += 1
                return self.buffer_hit_ms, 0.0, 0.0, self.buffer_hit_ms
            if request.is_write and self._buffered_track in tracks:
                self._buffered_track = None
            elif not request.is_write:
                self._buffered_track = (runs[-1].cylinder, runs[-1].track)
        service_ms, seek_ms, rotation_ms, transfer_ms, cylinder, direction = (
            service_components(
                runs,
                self.head_cylinder,
                self.direction,
                self.env.now,
                self.seek_model.seek_time,
                self._sector_time_ms,
                self._sectors_per_track,
                self._head_switch_ms,
            )
        )
        self.head_cylinder = cylinder
        self.direction = direction
        return service_ms, seek_ms, rotation_ms, transfer_ms

    def __repr__(self) -> str:
        return (
            f"<Disk {self.disk_id} {self.spec.name} head@{self.head_cylinder} "
            f"queue={self.queue_length}>"
        )
