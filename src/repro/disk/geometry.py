"""Disk geometry: logical sector addresses ⇄ physical positions.

Logical sectors (LBA) number the disk cylinder-major: all sectors of
cylinder 0 (track by track), then cylinder 1, and so on. Track skew
offsets each successive track's sector 0 by ``track_skew_sectors``
rotational positions so that a sequential transfer crossing a track
boundary finds its next sector arriving under the head right after the
head switch completes.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.disk.specs import DiskSpec


@dataclass(frozen=True)
class SectorRange:
    """A contiguous run of sectors on a single track.

    ``rotational_start`` is the angular position (in sector slots,
    0..sectors_per_track-1) at which the run begins on the platter,
    after accounting for skew.
    """

    cylinder: int
    track: int
    rotational_start: int
    count: int


class DiskGeometry:
    """Address arithmetic for one disk spec.

    Stripe-unit-aligned workloads revisit the same few thousand
    ``(start_sector, count)`` transfer shapes constantly, so
    :meth:`split_by_track` memoizes its (immutable) decompositions; the
    spec-derived divisors are likewise snapshotted once because
    :class:`~repro.disk.specs.DiskSpec` recomputes them on every
    property read. Both are safe: the spec is frozen.
    """

    def __init__(self, spec: DiskSpec):
        self.spec = spec
        self._sectors_per_cylinder = spec.sectors_per_cylinder
        self._sectors_per_track = spec.sectors_per_track
        self._tracks_per_cylinder = spec.tracks_per_cylinder
        self._track_skew_sectors = spec.track_skew_sectors
        self._total_sectors = spec.total_sectors
        self._split_cache: typing.Dict[
            typing.Tuple[int, int], typing.Tuple[SectorRange, ...]
        ] = {}

    def locate(self, sector: int) -> typing.Tuple[int, int, int]:
        """``(cylinder, track, sector_in_track)`` of a logical sector."""
        if not 0 <= sector < self._total_sectors:
            raise ValueError(
                f"sector {sector} outside disk of {self._total_sectors} sectors"
            )
        cylinder, rest = divmod(sector, self._sectors_per_cylinder)
        track, within = divmod(rest, self._sectors_per_track)
        return cylinder, track, within

    def cylinder_of(self, sector: int) -> int:
        """Cylinder containing a logical sector."""
        if not 0 <= sector < self._total_sectors:
            raise ValueError(
                f"sector {sector} outside disk of {self._total_sectors} sectors"
            )
        return sector // self._sectors_per_cylinder

    def rotational_position(self, cylinder: int, track: int, sector_in_track: int) -> int:
        """Angular slot of a sector, applying cumulative track skew."""
        global_track = cylinder * self._tracks_per_cylinder + track
        skew = (global_track * self._track_skew_sectors) % self._sectors_per_track
        return (sector_in_track + skew) % self._sectors_per_track

    def split_by_track(
        self, start_sector: int, count: int
    ) -> typing.Sequence[SectorRange]:
        """Decompose a transfer into per-track contiguous runs, in order.

        The result is cached and shared between calls — treat it as
        immutable (it is a tuple of frozen dataclasses).
        """
        cached = self._split_cache.get((start_sector, count))
        if cached is not None:
            return cached
        if count < 1:
            raise ValueError(f"transfer needs at least one sector, got {count}")
        if start_sector + count > self._total_sectors:
            raise ValueError(
                f"transfer [{start_sector}, {start_sector + count}) exceeds disk "
                f"of {self._total_sectors} sectors"
            )
        sectors_per_track = self._sectors_per_track
        runs = []
        sector = start_sector
        remaining = count
        while remaining > 0:
            cylinder, track, within = self.locate(sector)
            on_this_track = min(remaining, sectors_per_track - within)
            runs.append(
                SectorRange(
                    cylinder=cylinder,
                    track=track,
                    rotational_start=self.rotational_position(cylinder, track, within),
                    count=on_this_track,
                )
            )
            sector += on_this_track
            remaining -= on_this_track
        result = tuple(runs)
        self._split_cache[(start_sector, count)] = result
        return result
