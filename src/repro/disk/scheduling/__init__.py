"""Disk head scheduling policies.

The per-disk server asks its scheduler which queued request to service
next, given the current head cylinder and travel direction. The paper's
arrays use CVSCAN (Geist & Daniel 1987); FIFO, SSTF, and LOOK/SCAN are
provided as baselines and for the scheduler ablation bench.
"""

from repro.disk.scheduling.base import Scheduler, make_scheduler
from repro.disk.scheduling.fifo import FifoScheduler
from repro.disk.scheduling.sstf import SstfScheduler
from repro.disk.scheduling.scan import LookScheduler
from repro.disk.scheduling.cvscan import CvscanScheduler

__all__ = [
    "CvscanScheduler",
    "FifoScheduler",
    "LookScheduler",
    "Scheduler",
    "SstfScheduler",
    "make_scheduler",
]
