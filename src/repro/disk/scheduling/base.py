"""Scheduler interface and factory."""

from __future__ import annotations

import typing


class Scheduler:
    """Chooses the next disk request to service.

    Implementations keep their own queue structure. ``pop`` receives the
    head's current cylinder and direction of travel (+1 toward higher
    cylinders, -1 toward lower) and must return one queued request.
    """

    def push(self, request) -> None:
        """Enqueue a request (its ``cylinder`` attribute must be set)."""
        raise NotImplementedError

    def pop(self, head_cylinder: int, direction: int):
        """Dequeue and return the request to service next."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


def make_scheduler(policy: str, cylinders: int) -> Scheduler:
    """Build a scheduler by policy name.

    Parameters
    ----------
    policy:
        One of ``"fifo"``, ``"sstf"``, ``"sptf"``, ``"look"``,
        ``"cvscan"``. SPTF prices every queued candidate's full
        physical service time through the batch kernel
        (:mod:`repro.disk.vectorized`) and needs a drive bound via
        ``bind_disk`` — :class:`~repro.disk.drive.Disk` does this
        automatically for any scheduler exposing the hook.
    cylinders:
        Disk size, used by CVSCAN to scale its directional bias.

    Suffixing a policy with ``+priority`` (e.g. ``"cvscan+priority"``)
    wraps it in the two-class user-priority discipline: user requests
    are always served before reconstruction requests.
    """
    from repro.disk.scheduling.cvscan import CvscanScheduler
    from repro.disk.scheduling.fifo import FifoScheduler
    from repro.disk.scheduling.priority import UserPriorityScheduler
    from repro.disk.scheduling.scan import LookScheduler
    from repro.disk.scheduling.sptf import SptfScheduler
    from repro.disk.scheduling.sstf import SstfScheduler

    policies: typing.Dict[str, typing.Callable[[], Scheduler]] = {
        "fifo": FifoScheduler,
        "sstf": SstfScheduler,
        "sptf": SptfScheduler,
        "look": LookScheduler,
        "cvscan": lambda: CvscanScheduler(cylinders=cylinders),
    }
    base_policy, _plus, modifier = policy.partition("+")
    if base_policy not in policies or modifier not in ("", "priority"):
        raise ValueError(
            f"unknown scheduling policy {policy!r}; choose from "
            f"{sorted(policies)} optionally suffixed with '+priority'"
        )
    if modifier == "priority":
        return UserPriorityScheduler(policies[base_policy](), policies[base_policy]())
    return policies[base_policy]()
