"""CVSCAN scheduling (Geist & Daniel 1987), used by the paper's arrays.

CVSCAN is a continuum between SSTF and SCAN: the next request is the
one minimizing head travel distance, but requests *behind* the current
direction of travel are penalized by a constant bias ``R``. ``R = 0``
degenerates to SSTF; ``R -> infinity`` degenerates to SCAN. Geist &
Daniel report that a small bias (a fraction of the total cylinder span)
captures most of SCAN's fairness while keeping SSTF's throughput; we
default the bias to 20 % of the cylinder count.
"""

from __future__ import annotations

from repro.disk.scheduling.base import Scheduler


class CvscanScheduler(Scheduler):
    """SSTF/SCAN continuum with directional bias ``R``.

    Parameters
    ----------
    cylinders:
        Disk size; the default bias is ``bias_fraction * cylinders``.
    bias_fraction:
        ``R`` as a fraction of the cylinder span.
    """

    def __init__(self, cylinders: int, bias_fraction: float = 0.2):
        if cylinders < 1:
            raise ValueError(f"cylinders must be positive, got {cylinders}")
        if bias_fraction < 0:
            raise ValueError(f"bias fraction must be >= 0, got {bias_fraction}")
        self.bias = bias_fraction * cylinders
        self._queue: list = []
        self._arrival = 0

    def push(self, request) -> None:
        self._queue.append((self._arrival, request))
        self._arrival += 1

    def pop(self, head_cylinder: int, direction: int):
        direction = 1 if direction >= 0 else -1

        def cost(item):
            arrival, request = item
            distance = abs(request.cylinder - head_cylinder)
            behind = (request.cylinder - head_cylinder) * direction < 0
            return (distance + (self.bias if behind else 0.0), arrival)

        best_index = min(range(len(self._queue)), key=lambda i: cost(self._queue[i]))
        return self._queue.pop(best_index)[1]

    def __len__(self) -> int:
        return len(self._queue)
