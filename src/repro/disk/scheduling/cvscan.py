"""CVSCAN scheduling (Geist & Daniel 1987), used by the paper's arrays.

CVSCAN is a continuum between SSTF and SCAN: the next request is the
one minimizing head travel distance, but requests *behind* the current
direction of travel are penalized by a constant bias ``R``. ``R = 0``
degenerates to SSTF; ``R -> infinity`` degenerates to SCAN. Geist &
Daniel report that a small bias (a fraction of the total cylinder span)
captures most of SCAN's fairness while keeping SSTF's throughput; we
default the bias to 20 % of the cylinder count.
"""

from __future__ import annotations

from repro.disk.scheduling.base import Scheduler


class CvscanScheduler(Scheduler):
    """SSTF/SCAN continuum with directional bias ``R``.

    Parameters
    ----------
    cylinders:
        Disk size; the default bias is ``bias_fraction * cylinders``.
    bias_fraction:
        ``R`` as a fraction of the cylinder span.
    """

    def __init__(self, cylinders: int, bias_fraction: float = 0.2):
        if cylinders < 1:
            raise ValueError(f"cylinders must be positive, got {cylinders}")
        if bias_fraction < 0:
            raise ValueError(f"bias fraction must be >= 0, got {bias_fraction}")
        self.bias = bias_fraction * cylinders
        self._queue: list = []
        self._arrival = 0

    def push(self, request) -> None:
        self._queue.append((self._arrival, request))
        self._arrival += 1

    def pop(self, head_cylinder: int, direction: int):
        # An open-coded argmin over (biased distance, arrival): this runs
        # once per serviced request over an O(queue) scan, and the
        # closure-based min(key=...) spelling showed up in profiles.
        direction = 1 if direction >= 0 else -1
        bias = self.bias
        queue = self._queue
        best_index = 0
        best_cost = None
        for index, (arrival, request) in enumerate(queue):
            delta = request.cylinder - head_cylinder
            distance = float(abs(delta))
            if delta * direction < 0:
                distance += bias
            cost = (distance, arrival)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        return queue.pop(best_index)[1]

    def __len__(self) -> int:
        return len(self._queue)
