"""First-come first-served scheduling."""

from __future__ import annotations

import collections

from repro.disk.scheduling.base import Scheduler


class FifoScheduler(Scheduler):
    """Service requests strictly in arrival order."""

    def __init__(self):
        self._queue = collections.deque()

    def push(self, request) -> None:
        self._queue.append(request)

    def pop(self, head_cylinder: int, direction: int):
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)
