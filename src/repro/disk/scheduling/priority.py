"""User-priority scheduling (the paper's future-work extension).

Section 9 proposes "a flexible prioritization scheme that reduces user
response time degradation without starving reconstruction". This
scheduler wraps any position-aware policy with a two-class discipline:
user requests are always scheduled first among themselves; requests
tagged as reconstruction traffic are only served when no user request
is waiting. Starvation is bounded because reconstruction workers issue
a finite number of outstanding accesses and user queues drain between
arrivals.

Pair this with one of the *user-writes* family of reconstruction
algorithms. Under the baseline algorithm a prioritized sweep can fail
to converge on a busy array: baseline folds writes to already-rebuilt
units into parity and marks them dirty for re-sweep, and a
de-prioritized sweep may rebuild units no faster than sustained user
writes re-dirty them — exactly the "starving reconstruction" failure
mode the paper's Section 9 warns a prioritization scheme must avoid.
The user-writes algorithms are immune: their user writes *advance*
reconstruction instead of undoing it.
"""

from __future__ import annotations

from repro.disk.drive import KIND_USER
from repro.disk.scheduling.base import Scheduler


class UserPriorityScheduler(Scheduler):
    """Two-class wrapper: user requests preempt reconstruction requests.

    Parameters
    ----------
    user_queue, recon_queue:
        The underlying single-class schedulers (any policy each).
    """

    def __init__(self, user_queue: Scheduler, recon_queue: Scheduler):
        self.user_queue = user_queue
        self.recon_queue = recon_queue

    def bind_disk(self, disk) -> None:
        """Forward drive binding to position-aware children (SPTF)."""
        for queue in (self.user_queue, self.recon_queue):
            bind = getattr(queue, "bind_disk", None)
            if bind is not None:
                bind(disk)

    def push(self, request) -> None:
        if request.kind == KIND_USER:
            self.user_queue.push(request)
        else:
            self.recon_queue.push(request)

    def pop(self, head_cylinder: int, direction: int):
        if self.user_queue:
            return self.user_queue.pop(head_cylinder, direction)
        return self.recon_queue.pop(head_cylinder, direction)

    def __len__(self) -> int:
        return len(self.user_queue) + len(self.recon_queue)
