"""LOOK (elevator) scheduling.

The head sweeps in one direction servicing requests in cylinder order
and reverses when no requests remain ahead of it (LOOK, the practical
variant of SCAN that does not travel to the physical edge).
"""

from __future__ import annotations

from repro.disk.scheduling.base import Scheduler


class LookScheduler(Scheduler):
    """Elevator scheduling with reversal at the last pending request."""

    def __init__(self):
        self._queue: list = []
        self._arrival = 0

    def push(self, request) -> None:
        self._queue.append((self._arrival, request))
        self._arrival += 1

    def pop(self, head_cylinder: int, direction: int):
        direction = 1 if direction >= 0 else -1
        ahead = [
            (i, arrival, req)
            for i, (arrival, req) in enumerate(self._queue)
            if (req.cylinder - head_cylinder) * direction >= 0
        ]
        if not ahead:
            # Reverse the sweep: everything is behind the head.
            ahead = [(i, arrival, req) for i, (arrival, req) in enumerate(self._queue)]
        index, _arrival, _req = min(
            ahead, key=lambda item: (abs(item[2].cylinder - head_cylinder), item[1])
        )
        return self._queue.pop(index)[1]

    def __len__(self) -> int:
        return len(self._queue)
