"""Shortest-positioning-time-first scheduling.

SSTF ranks candidates by cylinder distance alone; SPTF ranks them by
their full physical service time — seek *plus* rotational latency plus
transfer — evaluated from the drive's current head position and the
platter phase at the moment the head frees up. Rotational latency is
the same order of magnitude as a short seek on the paper's drives, so
SPTF finds wins SSTF cannot see (a slightly farther cylinder whose
target sector is about to rotate under the head).

Pricing the whole queue per pop is exactly the batch shape the
vectorized service-time kernel (:mod:`repro.disk.vectorized`) exists
for: every queued candidate is one lane of a single evaluation. The
scalar/vectorized switch (``REPRO_DISK_KERNEL``) changes wall-clock
only — both paths return bit-identical times, hence identical pops,
hence identical simulations.
"""

from __future__ import annotations

import typing

from repro.disk.scheduling.base import Scheduler
from repro.disk.vectorized import model_for, service_times


class SptfScheduler(Scheduler):
    """Service the queued request with the smallest physical service time.

    Ties break toward the earlier arrival: the queue is kept in arrival
    order and the scan below takes the first strict minimum — the same
    request either kernel path selects, since their times agree
    bit-for-bit. Requires :meth:`bind_disk` (the drive's spec, clock,
    and head state price the candidates); :class:`~repro.disk.drive.Disk`
    binds any scheduler that asks during construction.
    """

    def __init__(self):
        self._queue: typing.List = []
        self._disk = None
        self._model = None

    def bind_disk(self, disk) -> None:
        """Attach the drive whose physical state prices candidates."""
        self._disk = disk
        self._model = model_for(disk.spec)

    def push(self, request) -> None:
        self._queue.append(request)

    def pop(self, head_cylinder: int, direction: int):
        queue = self._queue
        if len(queue) == 1:
            return queue.pop()
        disk = self._disk
        if disk is None:
            raise RuntimeError(
                "SptfScheduler needs bind_disk() before pop() — construct it "
                "through make_scheduler()/Disk, which bind automatically"
            )
        times = service_times(self._model, head_cylinder, disk.env.now, queue)
        best = 0
        best_time = times[0]
        for index in range(1, len(queue)):
            candidate = times[index]
            if candidate < best_time:
                best = index
                best_time = candidate
        return queue.pop(best)

    def __len__(self) -> int:
        return len(self._queue)
