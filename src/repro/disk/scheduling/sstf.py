"""Shortest-seek-time-first scheduling."""

from __future__ import annotations

from repro.disk.scheduling.base import Scheduler


class SstfScheduler(Scheduler):
    """Service the queued request closest to the head.

    Ties break toward the earlier arrival (stable by insertion index),
    which avoids pathological starvation between two equidistant hot
    cylinders.
    """

    def __init__(self):
        self._queue: list = []
        self._arrival = 0

    def push(self, request) -> None:
        self._queue.append((self._arrival, request))
        self._arrival += 1

    def pop(self, head_cylinder: int, direction: int):
        best_index = min(
            range(len(self._queue)),
            key=lambda i: (abs(self._queue[i][1].cylinder - head_cylinder), self._queue[i][0]),
        )
        return self._queue.pop(best_index)[1]

    def __len__(self) -> int:
        return len(self._queue)
