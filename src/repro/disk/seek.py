"""Seek-time model calibrated to a spec's (min, avg, max) seek times.

Seek time as a function of cylinder distance ``d`` is modeled with the
standard two-regime-inspired curve

    t(d) = a + b * sqrt(d) + c * d      for d >= 1,     t(0) = 0

(square-root acceleration-limited region plus a linear coast term). The
three coefficients are solved from three constraints:

- ``t(1) = seek_min`` (single-cylinder seek),
- ``t(D) = seek_max`` (full stroke, ``D = cylinders - 1``),
- ``E[t(d) | d >= 1] = seek_avg`` under the distance distribution of
  uniformly random seeks, ``P(d) ∝ 2 * (N - d)`` for ``1 <= d < N``.

This matches how drive vendors quote "average seek" and gives a smooth,
monotonic curve hitting all three published numbers exactly.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from repro.disk.specs import DiskSpec


class SeekModel:
    """Seek time (ms) as a function of cylinder distance.

    The curve is evaluated once per possible distance at construction
    into a lookup table — ``seek_time`` on the service-time hot path is
    then a list index instead of a ``sqrt``. Models are immutable, so
    :meth:`for_spec` shares one instance per spec across all disks of an
    array (the curve fit solves a small linear system; doing it 21 times
    per scenario is pure waste).
    """

    def __init__(self, spec: DiskSpec):
        self.spec = spec
        n = spec.cylinders
        max_distance = n - 1
        if max_distance == 1:
            # Two-cylinder degenerate disk: min == the only seek.
            self._coefficients = (spec.seek_min_ms, 0.0, 0.0)
            self._table = [0.0, spec.seek_min_ms]
            return
        distances = np.arange(1, n, dtype=float)
        weights = 2.0 * (n - distances)
        weights /= weights.sum()
        mean_sqrt = float((weights * np.sqrt(distances)).sum())
        mean_linear = float((weights * distances).sum())
        matrix = np.array(
            [
                [1.0, 1.0, 1.0],
                [1.0, math.sqrt(max_distance), float(max_distance)],
                [1.0, mean_sqrt, mean_linear],
            ]
        )
        targets = np.array([spec.seek_min_ms, spec.seek_max_ms, spec.seek_avg_ms])
        a, b, c = np.linalg.solve(matrix, targets)
        self._coefficients = (float(a), float(b), float(c))
        # math.sqrt per element (not np.sqrt over the arange) so table
        # entries are bit-identical to what the formula previously
        # returned per call.
        self._table = [0.0] + [
            float(a) + float(b) * math.sqrt(d) + float(c) * d
            for d in range(1, n)
        ]

    @classmethod
    @functools.lru_cache(maxsize=None)
    def for_spec(cls, spec: DiskSpec) -> "SeekModel":
        """The shared (immutable) model for a spec."""
        return cls(spec)

    @property
    def coefficients(self) -> tuple:
        """The fitted ``(a, b, c)`` of ``t(d) = a + b*sqrt(d) + c*d``."""
        return self._coefficients

    @property
    def table(self) -> tuple:
        """The distance-indexed lookup table (``table[d]`` = seek ms).

        Exposed for the vectorized service-time kernel, which loads it
        into a numpy array once per spec — same floats, same bits.
        """
        return tuple(self._table)

    def seek_time(self, distance: int) -> float:
        """Seek time in ms for a move of ``distance`` cylinders."""
        if distance < 0:
            raise ValueError(f"negative seek distance {distance}")
        return self._table[distance]

    def average_over_random_seeks(self) -> float:
        """Mean of ``seek_time`` under the random-seek distance law.

        Should reproduce ``spec.seek_avg_ms`` up to float error; exposed
        for calibration tests.
        """
        n = self.spec.cylinders
        distances = np.arange(1, n, dtype=float)
        weights = 2.0 * (n - distances)
        weights /= weights.sum()
        times = np.array([self.seek_time(int(d)) for d in distances])
        return float((weights * times).sum())
