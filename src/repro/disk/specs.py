"""Disk drive specifications.

All times are in **milliseconds**, matching the simulation kernel's
convention. The reference spec reproduces Table 5-1(b) of the paper:
the IBM 0661 Model 370 (Lightning) 320 MB 3.5-inch drive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DiskSpec:
    """Geometry and timing parameters of one disk drive."""

    name: str
    cylinders: int
    tracks_per_cylinder: int
    sectors_per_track: int
    bytes_per_sector: int
    revolution_ms: float
    seek_min_ms: float   # single-cylinder seek
    seek_avg_ms: float   # average over uniformly random seeks
    seek_max_ms: float   # full-stroke seek
    track_skew_sectors: int

    def __post_init__(self):
        if min(self.cylinders, self.tracks_per_cylinder, self.sectors_per_track) < 1:
            raise ValueError(f"degenerate geometry in {self.name!r}")
        if not 0 < self.seek_min_ms <= self.seek_avg_ms <= self.seek_max_ms:
            raise ValueError(
                f"seek times must satisfy 0 < min <= avg <= max in {self.name!r}"
            )
        if not 0 <= self.track_skew_sectors < self.sectors_per_track:
            raise ValueError(f"track skew must be < sectors per track in {self.name!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sectors_per_cylinder(self) -> int:
        return self.tracks_per_cylinder * self.sectors_per_track

    @property
    def total_sectors(self) -> int:
        return self.cylinders * self.sectors_per_cylinder

    @property
    def total_tracks(self) -> int:
        return self.cylinders * self.tracks_per_cylinder

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * self.bytes_per_sector

    @property
    def sector_time_ms(self) -> float:
        """Time for one sector to pass under the head."""
        return self.revolution_ms / self.sectors_per_track

    @property
    def head_switch_ms(self) -> float:
        """Head-switch settle time, provisioned by the track skew.

        The 0661's 4-sector skew exists so that after a head switch the
        next logical sector is just arriving; we therefore model the
        switch itself as taking the skew's worth of rotation.
        """
        return self.track_skew_sectors * self.sector_time_ms

    def full_scan_min_ms(self) -> float:
        """Lower bound to read the whole disk: one revolution per track.

        The paper cites "the three minutes it takes to read all sectors
        on our disks" — this is that number for the configured spec.
        """
        return self.total_tracks * self.revolution_ms


#: Table 5-1(b): IBM 0661 Model 370 (Lightning).
IBM_0661 = DiskSpec(
    name="IBM-0661-370",
    cylinders=949,
    tracks_per_cylinder=14,
    sectors_per_track=48,
    bytes_per_sector=512,
    revolution_ms=13.9,
    seek_min_ms=2.0,
    seek_avg_ms=12.5,
    seek_max_ms=25.0,
    track_skew_sectors=4,
)


def scaled_spec(cylinders: int, base: DiskSpec = IBM_0661) -> DiskSpec:
    """A spec identical to ``base`` but with fewer cylinders.

    Used by the ``tiny``/``small`` experiment scales: reconstruction
    time scales roughly linearly with units per disk, while per-access
    timing behaviour (the thing response-time results depend on) is
    preserved because track geometry and the seek curve's endpoints are
    unchanged.
    """
    if cylinders < 2:
        raise ValueError(f"need at least 2 cylinders, got {cylinders}")
    return replace(base, name=f"{base.name}-c{cylinders}", cylinders=cylinders)
