"""Vectorized disk service-time kernel: batch seek/rotation/transfer.

Evaluates the physical service time of *many* candidate requests of one
drive in a single numpy batch, every candidate measured independently
from the same head position and platter phase. The scalar loop in
:func:`repro.disk.drive.service_components` is the **reference
implementation**; this module reproduces its results **bit-for-bit**
(pinned by the exact-equality property tests in
``tests/disk/test_vectorized.py``), which requires mirroring not just
the formulas but the floating-point *operation order*:

- per run, the clock takes the seek (or head-switch) add first, then
  the rotational wait add, then the transfer add — three separate
  float64 additions, never fused;
- a lane whose first run does not move the head adds an exact ``+0.0``
  (seek-table entry zero); lanes that have run out of runs take no
  operations at all — the ragged tail gathers only still-live lanes;
- ``%`` is ``numpy.remainder``, which matches Python's float ``%``
  (fmod plus sign-of-divisor adjustment) bit-for-bit for the
  non-negative divisors used here.

Consumers: the SPTF scheduler
(:class:`repro.disk.scheduling.sptf.SptfScheduler`) prices its whole
queue per pop, and the ``disk.service_batch`` microbenchmark.

The kernel switch
-----------------
The active path is selected by the ``REPRO_DISK_KERNEL`` environment
variable (or an explicit ``mode=`` argument, which the bench CLI's
``--disk-kernel`` flag feeds through) — deliberately **not** part of
``ScenarioConfig``: both paths return bit-identical times, so the
switch cannot change any simulation result and therefore must not
fragment the sweep-cache key space.

- ``scalar``     — always the reference loop;
- ``vectorized`` — always the numpy batch;
- ``auto`` (default) — numpy at or above :data:`AUTO_THRESHOLD`
  candidates, scalar below it (a numpy call's fixed overhead dominates
  tiny batches). Safe because the two paths agree exactly.
"""

from __future__ import annotations

import functools
import os
import typing

import numpy as np

from repro.disk.drive import service_components
from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.disk.specs import DiskSpec

#: The process-wide switch read by :func:`kernel_mode`.
ENV_VAR = "REPRO_DISK_KERNEL"

MODES = ("auto", "scalar", "vectorized")

#: Below this many candidates ``auto`` stays scalar: the numpy batch
#: pays fixed per-call overhead (a dozen ufunc invocations plus column
#: gathers) that a short Python loop undercuts. The measured crossover
#: on the reference container sits near 128 candidates
#: (``disk.service_batch`` reports both paths' rates, so the trend job
#: tracks it); above it the batch wins by a growing margin — ~1.9x by a
#: thousand candidates. The exact value only moves wall-clock, never
#: results — both paths are bit-identical.
AUTO_THRESHOLD = 128


def kernel_mode(override: typing.Optional[str] = None) -> str:
    """Resolve the active kernel mode (``override`` beats the env var).

    Raises ``ValueError`` on an unknown mode name.
    """
    mode = override if override is not None else os.environ.get(ENV_VAR, "auto")
    mode = mode.strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"unknown disk kernel mode {mode!r} "
            f"(from ${ENV_VAR} or --disk-kernel); choose from {MODES}"
        )
    return mode


class VectorizedServiceModel:
    """Per-spec constants for batch evaluation, built once per spec.

    Snapshots the seek lookup table into a float64 array and the
    spec-derived divisors into plain attributes (the spec recomputes
    them on every property read). The spec is frozen, so nothing here
    can go stale; share instances via :func:`model_for`.
    """

    def __init__(self, spec: DiskSpec):
        self.spec = spec
        self.geometry = DiskGeometry(spec)
        self.seek_model = SeekModel.for_spec(spec)
        self.seek_table = np.asarray(self.seek_model.table, dtype=np.float64)
        self.sector_time_ms = spec.sector_time_ms
        self.sectors_per_track = spec.sectors_per_track
        self.head_switch_ms = spec.head_switch_ms


@functools.lru_cache(maxsize=None)
def model_for(spec: DiskSpec) -> VectorizedServiceModel:
    """The shared (immutable) batch model for a spec."""
    return VectorizedServiceModel(spec)


def service_times_scalar(
    model: VectorizedServiceModel,
    head_cylinder: int,
    start_ms: float,
    requests: typing.Sequence,
) -> typing.List[float]:
    """Reference path: one scalar evaluation per candidate.

    Every candidate is priced independently from the same
    ``(head_cylinder, start_ms)`` state — the counterfactual "what if
    this one were serviced next", exactly what a positioning-aware
    scheduler needs.
    """
    split = model.geometry.split_by_track
    seek_time = model.seek_model.seek_time
    sector_time_ms = model.sector_time_ms
    sectors_per_track = model.sectors_per_track
    head_switch_ms = model.head_switch_ms
    return [
        service_components(
            split(request.start_sector, request.sector_count),
            head_cylinder,
            1,
            start_ms,
            seek_time,
            sector_time_ms,
            sectors_per_track,
            head_switch_ms,
        )[0]
        for request in requests
    ]


def service_times_vectorized(
    model: VectorizedServiceModel,
    head_cylinder: int,
    start_ms: float,
    requests: typing.Sequence,
) -> np.ndarray:
    """Numpy path: all candidates in one batch, bit-identical to scalar.

    The chain *within* one request is sequential (each run's rotational
    wait depends on the clock left by the previous run), so the batch
    axis is the request axis: a short loop over run index with validity
    masks, vector math across requests. Real transfers split into very
    few runs (one or two tracks), so the loop body executes a handful
    of times regardless of batch size.
    """
    count = len(requests)
    if count == 0:
        return np.empty(0, dtype=np.float64)
    split = model.geometry.split_by_track
    batch = [split(r.start_sector, r.sector_count) for r in requests]
    lengths = [len(runs) for runs in batch]
    max_runs = max(lengths)
    min_runs = min(lengths)
    table = model.seek_table
    sector_time_ms = model.sector_time_ms
    sectors_per_track = model.sectors_per_track
    head_switch_ms = model.head_switch_ms
    snap_threshold = sectors_per_track - 1e-6
    clock = np.full(count, start_ms, dtype=np.float64)
    current = np.full(count, head_cylinder, dtype=np.int64)
    for r in range(max_runs):
        if r < min_runs:
            # Dense prefix: every lane still has a run here, so no
            # validity masking — columns are plain list-comprehension
            # gathers, the cheapest way to feed numpy from namedtuples.
            column = [runs[r] for runs in batch]
            cylinder = np.array([run.cylinder for run in column], dtype=np.int64)
            rotational = np.array(
                [run.rotational_start for run in column], dtype=np.float64
            )
            counts = np.array([run.count for run in column], dtype=np.float64)
            delta = cylinder - current
            head_move = table[np.abs(delta)]
            if r > 0:
                # Same cylinder, next head: the switch settle time.
                head_move = np.where(delta != 0, head_move, head_switch_ms)
            clock += head_move
            current = cylinder
            position = (clock / sector_time_ms) % sectors_per_track
            slots_to_wait = (rotational - position) % sectors_per_track
            # Same snap-to-zero guard as the scalar loop, same constant.
            slots_to_wait = np.where(
                slots_to_wait > snap_threshold, 0.0, slots_to_wait
            )
            clock += slots_to_wait * sector_time_ms
            clock += counts * sector_time_ms
        else:
            # Ragged tail (r >= min_runs): exhausted lanes take no adds
            # at all in the scalar loop, so instead of masking the full
            # batch, gather the still-live lanes into a subarray, price
            # the run there, and scatter the clocks back. Typically only
            # a small fraction of lanes reach this branch (multi-track
            # transfers), so both the Python gather and the numpy ops
            # shrink to that fraction.
            live = [index for index, length in enumerate(lengths) if length > r]
            if not live:
                break
            column = [batch[index][r] for index in live]
            idx = np.array(live, dtype=np.intp)
            cylinder = np.array([run.cylinder for run in column], dtype=np.int64)
            rotational = np.array(
                [run.rotational_start for run in column], dtype=np.float64
            )
            counts = np.array([run.count for run in column], dtype=np.float64)
            delta = cylinder - current[idx]
            head_move = table[np.abs(delta)]
            if r > 0:
                # Same cylinder, next head: the switch settle time.
                head_move = np.where(delta != 0, head_move, head_switch_ms)
            sub_clock = clock[idx] + head_move
            current[idx] = cylinder
            position = (sub_clock / sector_time_ms) % sectors_per_track
            slots_to_wait = (rotational - position) % sectors_per_track
            slots_to_wait = np.where(
                slots_to_wait > snap_threshold, 0.0, slots_to_wait
            )
            sub_clock = sub_clock + slots_to_wait * sector_time_ms
            sub_clock = sub_clock + counts * sector_time_ms
            clock[idx] = sub_clock
    return clock - start_ms


def service_times(
    model: VectorizedServiceModel,
    head_cylinder: int,
    start_ms: float,
    requests: typing.Sequence,
    mode: typing.Optional[str] = None,
) -> typing.Sequence[float]:
    """Batch service times, honoring the kernel switch.

    Returns a list (scalar path) or a float64 array (vectorized path);
    element values are bit-identical either way, so callers may index
    and compare without caring which path ran.
    """
    resolved = kernel_mode(mode)
    if resolved == "vectorized" or (
        resolved == "auto" and len(requests) >= AUTO_THRESHOLD
    ):
        return service_times_vectorized(model, head_cylinder, start_ms, requests)
    return service_times_scalar(model, head_cylinder, start_ms, requests)
