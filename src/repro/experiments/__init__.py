"""Experiment harness: one runner per table/figure of the paper.

Each experiment module exposes ``run(scale) -> rows`` returning plain
dict rows and ``format_rows(rows) -> str`` printing the same axes the
paper reports. The CLI (``python -m repro``) and the benchmark suite
are thin wrappers over these.

Scales
------
The paper's simulations rebuild a full IBM 0661 (79,716 stripe units
per disk) — hours of simulated time per point. The ``tiny`` and
``small`` presets shrink the cylinder count (track geometry, seek
curve endpoints, and rates unchanged), which shortens reconstruction
proportionally while preserving per-access timing behaviour; ``paper``
is the full-size configuration.
"""

from repro.experiments.scales import SCALES, ScalePreset, get_scale
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.builders import build_layout, design_for

__all__ = [
    "SCALES",
    "ScalePreset",
    "ScenarioConfig",
    "ScenarioResult",
    "build_layout",
    "design_for",
    "get_scale",
    "run_scenario",
]
