"""Layout and array construction shared by all experiments."""

from __future__ import annotations

from repro.designs.catalog import default_catalog
from repro.designs.design import BlockDesign
from repro.designs.tdesigns import (
    PLANAR_DIFFERENCE_SETS,
    boolean_quadruple_system,
    cyclic_pq_design,
)
from repro.layout.base import ParityLayout
from repro.layout.declustered import DeclusteredLayout
from repro.layout.dual import CyclicDualRaid6Layout, DualDeclusteredLayout
from repro.layout.raid5 import LeftSymmetricRaid5Layout

#: The paper's array width (Table 5-1(c)).
PAPER_NUM_DISKS = 21

#: The paper's parity stripe sizes and the alphas they induce on C=21.
PAPER_STRIPE_SIZES = (3, 4, 5, 6, 10, 18, 21)


def design_for(num_disks: int, stripe_size: int) -> BlockDesign:
    """The block design backing a declustered layout for (C, G).

    Uses the shared catalog (paper appendix designs first, then
    programmatic families, then small complete designs, then the
    closest feasible alpha).
    """
    return default_catalog().select(num_disks, stripe_size)


def dual_design_for(num_disks: int, stripe_size: int) -> BlockDesign:
    """The block design backing a *dual-syndrome* layout for (C, G).

    Prefers triple-balanced families (uniform rebuild load across
    failed *pairs*): the boolean Steiner quadruple systems for G=4 on
    power-of-two widths, then the cyclic planar-difference-set designs,
    then whatever the shared catalog offers (correct placement, merely
    without the pair-balance guarantee).
    """
    if stripe_size == 4 and num_disks >= 8 and num_disks & (num_disks - 1) == 0:
        return boolean_quadruple_system(num_disks.bit_length() - 1)
    if (
        stripe_size in PLANAR_DIFFERENCE_SETS
        and num_disks == stripe_size * (stripe_size - 1) + 1
    ):
        return cyclic_pq_design(stripe_size)
    return design_for(num_disks, stripe_size)


def build_layout(
    num_disks: int, stripe_size: int, syndromes: int = 1
) -> ParityLayout:
    """A parity layout for ``G`` on ``C`` disks (RAID 5 when G == C).

    ``syndromes=2`` selects the dual (P+Q) variants: the cyclic RAID-6
    rotation when G == C, the block-design dual layout otherwise.
    """
    if syndromes == 2:
        if stripe_size == num_disks:
            return CyclicDualRaid6Layout(num_disks)
        return DualDeclusteredLayout(dual_design_for(num_disks, stripe_size))
    if stripe_size == num_disks:
        return LeftSymmetricRaid5Layout(num_disks)
    return DeclusteredLayout(design_for(num_disks, stripe_size))


def alpha_of(num_disks: int, stripe_size: int) -> float:
    """Declustering ratio of the (C, G) pair."""
    return (stripe_size - 1) / (num_disks - 1)
