"""Layout and array construction shared by all experiments."""

from __future__ import annotations

from repro.designs.catalog import default_catalog
from repro.designs.complete import complete_design_size
from repro.designs.design import BlockDesign, DesignError
from repro.designs.families import is_prime
from repro.designs.known_families import full_orbit_family
from repro.designs.tdesigns import (
    PLANAR_DIFFERENCE_SETS,
    boolean_quadruple_system,
    cyclic_pq_design,
)
from repro.layout.arithmetic import CyclicArithmeticLayout, PermutationStripingLayout
from repro.layout.base import LayoutError, ParityLayout
from repro.layout.criteria import SAMPLING_THRESHOLD_DISKS
from repro.layout.declustered import DeclusteredLayout
from repro.layout.dual import CyclicDualRaid6Layout, DualDeclusteredLayout
from repro.layout.raid5 import LeftSymmetricRaid5Layout

#: The paper's array width (Table 5-1(c)).
PAPER_NUM_DISKS = 21

#: The paper's parity stripe sizes and the alphas they induce on C=21.
PAPER_STRIPE_SIZES = (3, 4, 5, 6, 10, 18, 21)

#: Layout selection strategies a scenario may name. "auto" (the
#: default) preserves the historical table-based selection wherever the
#: design catalog serves the requested (C, G) itself — so every
#: pre-existing configuration is bit-identical — and switches to an
#: arithmetic layout when the catalog could only substitute a different
#: stripe size (the closest-feasible-alpha policy), which at large C
#: would mean a near-complete design whose validation is intractable.
#: The explicit names force one family and fail loudly if it does not
#: fit.
LAYOUT_CHOICES = ("auto", "table", "prime", "cyclic")


def design_for(num_disks: int, stripe_size: int) -> BlockDesign:
    """The block design backing a declustered layout for (C, G).

    Uses the shared catalog (paper appendix designs first, then
    programmatic families, then small complete designs, then the
    closest feasible alpha).
    """
    return default_catalog().select(num_disks, stripe_size)


def dual_design_for(num_disks: int, stripe_size: int) -> BlockDesign:
    """The block design backing a *dual-syndrome* layout for (C, G).

    Prefers triple-balanced families (uniform rebuild load across
    failed *pairs*): the boolean Steiner quadruple systems for G=4 on
    power-of-two widths, then the cyclic planar-difference-set designs,
    then whatever the shared catalog offers (correct placement, merely
    without the pair-balance guarantee).
    """
    if stripe_size == 4 and num_disks >= 8 and num_disks & (num_disks - 1) == 0:
        return boolean_quadruple_system(num_disks.bit_length() - 1)
    if (
        stripe_size in PLANAR_DIFFERENCE_SETS
        and num_disks == stripe_size * (stripe_size - 1) + 1
    ):
        return cyclic_pq_design(stripe_size)
    return design_for(num_disks, stripe_size)


def arithmetic_layout(
    num_disks: int, stripe_size: int, syndromes: int = 1, kind: str = "auto"
) -> ParityLayout:
    """A table-free layout for ``(C, G)``: permutation striping on prime
    widths, cyclic difference-family development where one is known.

    ``kind`` may force ``"prime"`` or ``"cyclic"``; ``"auto"`` prefers
    permutation striping (always available on a prime width) and falls
    back to a cyclic family.
    """
    if kind in ("auto", "prime") and is_prime(num_disks) and stripe_size < num_disks:
        return PermutationStripingLayout(
            num_disks, stripe_size, num_syndromes=syndromes
        )
    if kind == "prime":
        raise LayoutError(
            f"layout 'prime' needs a prime C with G < C, got C={num_disks} "
            f"G={stripe_size}"
        )
    try:
        blocks = full_orbit_family(num_disks, stripe_size)
    except DesignError as error:
        raise LayoutError(
            f"no arithmetic layout for C={num_disks} G={stripe_size}: {error}"
        ) from error
    return CyclicArithmeticLayout(blocks, num_disks, num_syndromes=syndromes)


def _catalog_serves_exact(num_disks: int, stripe_size: int, syndromes: int) -> bool:
    """Whether the table path can serve the *requested* (C, G) itself.

    When this is False the catalog's :meth:`select` would substitute
    the closest feasible alpha — a different stripe size entirely. At
    small C that substitution is the paper's own policy and stays; at
    large C the nearest feasible design is a near-complete one whose
    O(b * k**2) validation is intractable (v=1009 would pick k=1008 and
    spend ~1e9 operations in ``pair_counts``), so the auto path must
    not walk into it.
    """
    if stripe_size == num_disks:
        return True  # RAID 5 / cyclic RAID 6: no block design involved
    if syndromes == 2:
        if stripe_size == 4 and num_disks >= 8 and num_disks & (num_disks - 1) == 0:
            return True  # boolean Steiner quadruple system
        if (
            stripe_size in PLANAR_DIFFERENCE_SETS
            and num_disks == stripe_size * (stripe_size - 1) + 1
        ):
            return True  # cyclic planar P+Q design
    catalog = default_catalog()
    if catalog.exact(num_disks, stripe_size) is not None:
        return True
    return complete_design_size(num_disks, stripe_size) <= catalog.max_table_tuples


def _table_layout(
    num_disks: int, stripe_size: int, syndromes: int
) -> ParityLayout:
    """The historical table-based selection (RAID 5 when G == C)."""
    if syndromes == 2:
        if stripe_size == num_disks:
            return CyclicDualRaid6Layout(num_disks)
        return DualDeclusteredLayout(dual_design_for(num_disks, stripe_size))
    if stripe_size == num_disks:
        return LeftSymmetricRaid5Layout(num_disks)
    return DeclusteredLayout(design_for(num_disks, stripe_size))


def build_layout(
    num_disks: int, stripe_size: int, syndromes: int = 1, layout: str = "auto"
) -> ParityLayout:
    """A parity layout for ``G`` on ``C`` disks (RAID 5 when G == C).

    ``syndromes=2`` selects the dual (P+Q) variants: the cyclic RAID-6
    rotation when G == C, the block-design dual layout otherwise.

    ``layout`` picks the implementation family (:data:`LAYOUT_CHOICES`):
    ``"auto"`` keeps the historical table-based selection wherever the
    catalog serves the requested geometry itself, prefers an arithmetic
    layout with the *requested* G when the catalog could only
    substitute a neighboring alpha, and keeps the paper's substitution
    policy below :data:`SAMPLING_THRESHOLD_DISKS` when no arithmetic
    construction fits either; ``"table"`` forces the table path;
    ``"prime"`` / ``"cyclic"`` force the corresponding arithmetic
    construction.
    """
    if layout not in LAYOUT_CHOICES:
        raise LayoutError(
            f"unknown layout {layout!r}; choose from {LAYOUT_CHOICES}"
        )
    if layout == "prime" or layout == "cyclic":
        return arithmetic_layout(num_disks, stripe_size, syndromes, kind=layout)
    if layout == "table":
        return _table_layout(num_disks, stripe_size, syndromes)
    if _catalog_serves_exact(num_disks, stripe_size, syndromes):
        try:
            return _table_layout(num_disks, stripe_size, syndromes)
        except DesignError:
            return arithmetic_layout(num_disks, stripe_size, syndromes)
    try:
        return arithmetic_layout(num_disks, stripe_size, syndromes)
    except LayoutError as error:
        if num_disks >= SAMPLING_THRESHOLD_DISKS:
            # A closest-alpha substitute at this width would be a
            # near-complete design: intractable to validate and nothing
            # like the requested geometry. Fail instead of hanging.
            raise LayoutError(
                f"no layout for C={num_disks} G={stripe_size}: the catalog "
                f"has no design at this width and no arithmetic "
                f"construction fits ({error})"
            ) from error
        return _table_layout(num_disks, stripe_size, syndromes)


def alpha_of(num_disks: int, stripe_size: int) -> float:
    """Declustering ratio of the (C, G) pair."""
    return (stripe_size - 1) / (num_disks - 1)
