"""Layout and array construction shared by all experiments."""

from __future__ import annotations

from repro.designs.catalog import default_catalog
from repro.designs.design import BlockDesign
from repro.layout.base import ParityLayout
from repro.layout.declustered import DeclusteredLayout
from repro.layout.raid5 import LeftSymmetricRaid5Layout

#: The paper's array width (Table 5-1(c)).
PAPER_NUM_DISKS = 21

#: The paper's parity stripe sizes and the alphas they induce on C=21.
PAPER_STRIPE_SIZES = (3, 4, 5, 6, 10, 18, 21)


def design_for(num_disks: int, stripe_size: int) -> BlockDesign:
    """The block design backing a declustered layout for (C, G).

    Uses the shared catalog (paper appendix designs first, then
    programmatic families, then small complete designs, then the
    closest feasible alpha).
    """
    return default_catalog().select(num_disks, stripe_size)


def build_layout(num_disks: int, stripe_size: int) -> ParityLayout:
    """A parity layout for ``G`` on ``C`` disks (RAID 5 when G == C)."""
    if stripe_size == num_disks:
        return LeftSymmetricRaid5Layout(num_disks)
    return DeclusteredLayout(design_for(num_disks, stripe_size))


def alpha_of(num_disks: int, stripe_size: int) -> float:
    """Declustering ratio of the (C, G) pair."""
    return (stripe_size - 1) / (num_disks - 1)
