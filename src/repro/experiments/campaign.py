"""Monte Carlo continuous-operation campaign: empirical MTTDL vs alpha.

The paper's reliability argument (Section 8, via [Patterson88]) is
analytic: MTTDL ≈ MTTF² / (C·(C−1)·MTTR), so shorter reconstructions
buy reliability. This experiment *measures* it: a
:class:`~repro.faults.injector.FaultInjector` drives an accelerated
life test — hours-scale disk MTTF, a spare pool repairing each failure
— against arrays of varying declustering ratio, and each trial runs
until a concurrent failure beyond the array's tolerance loses data or
the mission ends (the second failure for single-parity arrays, the
third for dual-syndrome P+Q ones). The empirical MTTDL (censored
exponential MLE: total observed time over observed losses) is then
cross-checked against the Markov approximation — the two-fault chain
when ``syndromes=2`` — fed with the campaign's own measured mean
repair time.

Campaigns always run on a micro-sized array: failure/repair statistics
need many repair cycles, not big disks, and per-access timing detail
is irrelevant at user rate 0. The CLI ``--scale`` therefore selects
the trial count, not the disk size.
"""

from __future__ import annotations

import typing

from repro.analysis.reliability import (
    ReliabilityInputs,
    data_loss_probability,
    mttdl_hours,
)
from repro.experiments.reporting import format_table
from repro.experiments.scales import ScalePreset
from repro.faults.profile import MS_PER_HOUR, FaultProfile
from repro.sweep import SweepOptions, SweepSpec, run_sweep

CAMPAIGN_STRIPE_SIZES = (4, 6, 10, 21)

#: Dual-syndrome (P+Q) campaign stripe sizes on C=21: G=5 is the cyclic
#: planar-difference-set design (triple-balanced), G=21 the cyclic
#: RAID-6 rotation, the rest catalog designs in the dual layout.
CAMPAIGN_PQ_STRIPE_SIZES = (5, 6, 10, 21)

#: Three cylinders ≈ a few hundred stripe units per disk: repairs take
#: seconds of simulated time, so one mission observes dozens of them.
MICRO = ScalePreset(
    name="campaign-micro",
    cylinders=3,
    steady_duration_ms=1_000.0,
    warmup_ms=0.0,
    note="fault-campaign size: a few hundred units/disk, fast repairs",
)

#: Accelerated life test: a 1-hour disk MTTF compresses years of array
#: lifetime into minutes of simulated time while keeping the
#: failure-vs-repair race (MTTR ≪ MTTF) in the realistic regime.
DISK_MTTF_HOURS = 1.0
#: Latent sector errors ride along to exercise the media-error paths;
#: they never fire the campaign's terminal double-disk-failure event,
#: so the MTTDL cross-check stays apples-to-apples with the Markov
#: model.
LATENT_ERRORS_PER_HOUR = 0.1
REPLACEMENT_DELAY_MS = 1_000.0
MISSION_HOURS = 12.0
#: Trials per stripe size, by CLI scale name.
TRIALS = {"tiny": 3, "small": 8, "paper": 16}


def campaign_profile(seed: int) -> FaultProfile:
    """The accelerated fault profile for one campaign trial."""
    return FaultProfile(
        disk_mttf_hours=DISK_MTTF_HOURS,
        latent_errors_per_hour=LATENT_ERRORS_PER_HOUR,
        seed=seed,
    )


def campaign_spec(
    scale: str = "tiny",
    stripe_sizes: typing.Sequence[int] = CAMPAIGN_STRIPE_SIZES,
    seed: int = 1992,
    trials: typing.Optional[int] = None,
    mission_hours: float = MISSION_HOURS,
    syndromes: int = 1,
) -> SweepSpec:
    """The campaign's sweep grid: ``trials`` missions per stripe size.

    Enumeration is row-major with stripe size slowest, so the trials of
    one stripe size are contiguous — the ordering contract
    :func:`rows_from_summaries` aggregates by. This is the same grid
    for the CLI run and the job service's trial-granular execution, so
    both address identical cache entries.
    """
    trials = trials if trials is not None else TRIALS.get(scale, 3)
    profiles = [campaign_profile(seed + trial) for trial in range(trials)]
    return SweepSpec(
        axes=[("stripe_size", tuple(stripe_sizes)), ("fault_profile", profiles)],
        base=dict(
            user_rate_per_s=0.0,  # pure reliability estimation
            read_fraction=0.5,
            mode="campaign",
            recon_workers=8,
            scale=MICRO,
            seed=seed,
            spares=512,
            replacement_delay_ms=REPLACEMENT_DELAY_MS,
            mission_ms=mission_hours * MS_PER_HOUR,
            syndromes=syndromes,
        ),
    )


def trial_summary(result) -> dict:
    """The JSON-safe per-trial facts campaign aggregation needs.

    Persisted verbatim in service checkpoints, so a resumed campaign
    aggregates finished trials from the checkpoint alone — no re-run,
    no cache read — and cannot drift from an uninterrupted run.
    """
    return {
        "g": result.config.stripe_size,
        "alpha": result.config.alpha,
        "num_disks": result.config.num_disks,
        "syndromes": result.config.syndromes,
        "data_lost": bool(result.fault_summary["data_lost"]),
        "simulated_ms": result.simulated_ms,
        "mean_repair_ms": result.fault_summary["mean_repair_ms"],
    }


def rows_from_summaries(
    summaries: typing.Sequence[dict],
    trials: int,
    mission_hours: float = MISSION_HOURS,
    disk_mttf_hours: float = DISK_MTTF_HOURS,
) -> typing.List[dict]:
    """Aggregate per-trial summaries (in grid order) into campaign rows."""
    rows = []
    # Row-major enumeration: trials of one stripe size are contiguous.
    for start in range(0, len(summaries), trials):
        group = summaries[start : start + trials]
        losses = sum(1 for s in group if s["data_lost"])
        observed_hours = sum(s["simulated_ms"] for s in group) / MS_PER_HOUR
        repair_samples = [
            s["mean_repair_ms"] for s in group if s["mean_repair_ms"] is not None
        ]
        mean_repair_ms = (
            sum(repair_samples) / len(repair_samples) if repair_samples else None
        )
        empirical_mttdl_h = observed_hours / losses if losses else float("inf")
        analytic_mttdl_h = None
        analytic_loss_p = None
        if mean_repair_ms is not None:
            # Old checkpoints predate the syndromes key: single-fault.
            inputs = ReliabilityInputs(
                num_disks=group[0]["num_disks"],
                disk_mttf_hours=disk_mttf_hours,
                repair_hours=mean_repair_ms / MS_PER_HOUR,
                fault_tolerance=group[0].get("syndromes", 1),
            )
            analytic_mttdl_h = mttdl_hours(inputs)
            analytic_loss_p = data_loss_probability(inputs, mission_hours)
        rows.append(
            {
                "g": group[0]["g"],
                "alpha": round(group[0]["alpha"], 3),
                "syndromes": group[0].get("syndromes", 1),
                "trials": trials,
                "losses": losses,
                "loss_fraction": round(losses / trials, 3),
                "mean_repair_s": (
                    round(mean_repair_ms / 1000.0, 2)
                    if mean_repair_ms is not None
                    else None
                ),
                "empirical_mttdl_h": (
                    round(empirical_mttdl_h, 3)
                    if empirical_mttdl_h != float("inf")
                    else None
                ),
                "analytic_mttdl_h": (
                    round(analytic_mttdl_h, 3)
                    if analytic_mttdl_h is not None
                    else None
                ),
                "mttdl_ratio": (
                    round(empirical_mttdl_h / analytic_mttdl_h, 2)
                    if analytic_mttdl_h is not None
                    and empirical_mttdl_h != float("inf")
                    else None
                ),
                "analytic_loss_probability": (
                    round(analytic_loss_p, 3) if analytic_loss_p is not None else None
                ),
            }
        )
    return rows


def run(
    scale: str = "tiny",
    stripe_sizes: typing.Optional[typing.Sequence[int]] = None,
    seed: int = 1992,
    trials: typing.Optional[int] = None,
    mission_hours: float = MISSION_HOURS,
    options: typing.Optional[SweepOptions] = None,
    syndromes: int = 1,
) -> typing.List[dict]:
    """Run the campaign grid; one row per stripe size."""
    if stripe_sizes is None:
        stripe_sizes = (
            CAMPAIGN_PQ_STRIPE_SIZES if syndromes == 2 else CAMPAIGN_STRIPE_SIZES
        )
    trials = trials if trials is not None else TRIALS.get(scale, 3)
    spec = campaign_spec(
        scale,
        stripe_sizes=stripe_sizes,
        seed=seed,
        trials=trials,
        mission_hours=mission_hours,
        syndromes=syndromes,
    )
    outcome = run_sweep(spec, options)
    summaries = [trial_summary(result) for result in outcome.results]
    return rows_from_summaries(summaries, trials, mission_hours)


def format_rows(rows: typing.Sequence[dict]) -> str:
    dual = bool(rows) and rows[0].get("syndromes", 1) == 2
    return format_table(
        headers=[
            "alpha", "G", "trials", "losses", "repair (s)",
            "MTTDL emp (h)", "MTTDL Markov (h)", "ratio", "P(loss) Markov",
        ],
        rows=[
            [
                r["alpha"], r["g"], r["trials"], r["losses"], r["mean_repair_s"],
                r["empirical_mttdl_h"], r["analytic_mttdl_h"], r["mttdl_ratio"],
                r["analytic_loss_probability"],
            ]
            for r in rows
        ],
        title=(
            ("P+Q fault campaign (two-fault Markov chain): "
             if dual else "Fault campaign: ")
            + "empirical vs Markov MTTDL "
            f"(C=21, accelerated disk MTTF {DISK_MTTF_HOURS:.0f} h, "
            f"{MISSION_HOURS:.0f} h missions, 8-way repair sweep)"
        ),
    )
