"""ASCII line charts for experiment output.

The paper's figures are xgraph plots; the CLI renders the same series
as monospace charts so the shapes — who wins, where curves cross — are
visible straight from a terminal, with no plotting dependency.
"""

from __future__ import annotations

import typing

#: Symbols assigned to successive series.
SERIES_MARKS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, round(position * (size - 1))))


def ascii_chart(
    series: typing.Mapping[str, typing.Sequence[typing.Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping of series name to its points; each series gets a mark
        from :data:`SERIES_MARKS` and a legend entry.
    width, height:
        Plot area size in characters.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:  # flat data still deserves a visible line
        y_low, y_high = y_low - 1.0, y_high + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        mark = SERIES_MARKS[index % len(SERIES_MARKS)]
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {y_high:g}, bottom {y_low:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_low:g} .. {x_high:g}")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)


def chart_rows(
    rows: typing.Sequence[dict],
    key_fields: typing.Sequence[str],
    x_field: str,
    y_field: str,
    **chart_kwargs,
) -> str:
    """Group experiment rows into series and chart them."""
    from repro.experiments.reporting import series_by

    grouped = series_by(rows, key_fields=key_fields, x_field=x_field, y_field=y_field)
    named = {
        " ".join(str(k) for k in key): points for key, points in sorted(grouped.items())
    }
    return ascii_chart(named, x_label=x_field, y_label=y_field, **chart_kwargs)
