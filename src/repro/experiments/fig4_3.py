"""Figure 4-3: scatter of known block designs.

The paper plots Hall's list of known designs as points in the
(number of objects v, tuples b) plane, annotated by tuple size. Our
catalog plays the role of Hall's list; this experiment emits one row
per catalog entry, which is the scatter's point set.
"""

from __future__ import annotations

import typing

from repro.designs.catalog import default_catalog
from repro.experiments.reporting import format_table


def run(scale: str = "tiny") -> typing.List[dict]:
    """One row per known design (the scale is irrelevant here)."""
    rows = []
    for entry in default_catalog().entries():
        rows.append(
            {
                "v": entry.v,
                "k": entry.k,
                "b": entry.b,
                "alpha": round(entry.alpha(), 3),
                "source": entry.source,
            }
        )
    return rows


def format_rows(rows: typing.Sequence[dict]) -> str:
    return format_table(
        headers=["v (disks)", "k (G)", "b (tuples)", "alpha", "source"],
        rows=[[r["v"], r["k"], r["b"], r["alpha"], r["source"]] for r in rows],
        title="Figure 4-3: known block designs (catalog scatter)",
    )
