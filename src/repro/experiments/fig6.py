"""Figures 6-1 and 6-2: fault-free and degraded response time vs alpha.

Figure 6-1 is 100 % reads at 105, 210, and 378 user accesses/s;
Figure 6-2 is 100 % writes at 105 and 210 (the array cannot sustain
378 writes/s — each write costs four accesses). Each figure carries
two curves per rate: fault-free and degraded (failed disk, no
replacement).

Expected shapes: fault-free response is flat in alpha (except the
G = 3 write optimization at alpha = 0.1); degraded response falls as
alpha falls, and degraded *writes* at small alpha can beat fault-free
thanks to write folding.

The grid is declared as a :class:`~repro.sweep.SweepSpec` and executed
by :func:`~repro.sweep.run_sweep`, so ``options`` buys parallelism and
result caching without touching the figure logic.
"""

from __future__ import annotations

import typing

from repro.experiments.builders import PAPER_NUM_DISKS, PAPER_STRIPE_SIZES, alpha_of
from repro.experiments.reporting import format_table
from repro.sweep import SweepOptions, SweepSpec, run_sweep

READ_RATES = (105.0, 210.0, 378.0)
WRITE_RATES = (105.0, 210.0)


def run_figure(
    read_fraction: float,
    rates: typing.Sequence[float],
    scale: str = "tiny",
    stripe_sizes: typing.Sequence[int] = PAPER_STRIPE_SIZES,
    seed: int = 1992,
    options: typing.Optional[SweepOptions] = None,
) -> typing.List[dict]:
    """Grid of (alpha, rate, mode) → mean user response time."""
    spec = SweepSpec(
        axes=[
            ("stripe_size", stripe_sizes),
            ("user_rate_per_s", [float(rate) for rate in rates]),
            ("mode", ("fault-free", "degraded")),
        ],
        base=dict(read_fraction=read_fraction, scale=scale, seed=seed),
    )
    outcome = run_sweep(spec, options)
    rows = []
    for result in outcome.results:
        config = result.config
        rows.append(
            {
                "g": config.stripe_size,
                "alpha": round(alpha_of(PAPER_NUM_DISKS, config.stripe_size), 3),
                "rate": config.user_rate_per_s,
                "mode": config.mode,
                "mean_response_ms": round(result.response.mean_ms, 2),
                "p90_ms": round(result.response.p90_ms, 2),
                "requests": result.requests_completed,
            }
        )
    return rows


def run_fig6_1(scale: str = "tiny", **kwargs) -> typing.List[dict]:
    """Figure 6-1: 100 % reads."""
    return run_figure(read_fraction=1.0, rates=READ_RATES, scale=scale, **kwargs)


def run_fig6_2(scale: str = "tiny", **kwargs) -> typing.List[dict]:
    """Figure 6-2: 100 % writes."""
    return run_figure(read_fraction=0.0, rates=WRITE_RATES, scale=scale, **kwargs)


def format_rows(rows: typing.Sequence[dict], title: str) -> str:
    return format_table(
        headers=["alpha", "G", "rate/s", "mode", "mean resp (ms)", "p90 (ms)", "requests"],
        rows=[
            [r["alpha"], r["g"], r["rate"], r["mode"], r["mean_response_ms"],
             r["p90_ms"], r["requests"]]
            for r in rows
        ],
        title=title,
    )
