"""Figures 8-1 through 8-4: reconstruction time and response time.

One simulation per (alpha, rate, algorithm, workers) point supplies
both the reconstruction-time figure and the response-time figure for
that worker count:

- Figures 8-1/8-2 — single-threaded sweep (workers = 1);
- Figures 8-3/8-4 — eight-way parallel sweep (workers = 8).

Workload: 50 % reads / 50 % writes at 105 and 210 user accesses/s.
The grid routes through :func:`~repro.sweep.run_sweep`, so ``options``
buys parallel execution and result caching.
"""

from __future__ import annotations

import typing

from repro.experiments.builders import PAPER_NUM_DISKS, PAPER_STRIPE_SIZES, alpha_of
from repro.experiments.reporting import format_table
from repro.recon.algorithms import ALGORITHMS, ReconAlgorithm
from repro.sweep import SweepOptions, SweepSpec, run_sweep

RECON_RATES = (105.0, 210.0)
READ_FRACTION = 0.5

#: The paper plots all its reconstruction figures over the full alpha
#: grid minus the G=3 point it sets aside for the small-stripe-write
#: discussion.
RECON_STRIPE_SIZES = tuple(g for g in PAPER_STRIPE_SIZES if g != 3)


def run_grid(
    workers: int,
    scale: str = "tiny",
    stripe_sizes: typing.Sequence[int] = RECON_STRIPE_SIZES,
    rates: typing.Sequence[float] = RECON_RATES,
    algorithms: typing.Sequence[ReconAlgorithm] = ALGORITHMS,
    seed: int = 1992,
    options: typing.Optional[SweepOptions] = None,
) -> typing.List[dict]:
    """Reconstruction grid → one row per simulation point."""
    spec = SweepSpec(
        axes=[
            ("stripe_size", stripe_sizes),
            ("user_rate_per_s", [float(rate) for rate in rates]),
            ("algorithm", algorithms),
        ],
        base=dict(
            read_fraction=READ_FRACTION,
            mode="recon",
            recon_workers=workers,
            scale=scale,
            seed=seed,
        ),
    )
    outcome = run_sweep(spec, options)
    rows = []
    for result in outcome.results:
        config = result.config
        recon = result.reconstruction
        rows.append(
            {
                "g": config.stripe_size,
                "alpha": round(alpha_of(PAPER_NUM_DISKS, config.stripe_size), 3),
                "rate": config.user_rate_per_s,
                "algorithm": config.algorithm.name,
                "workers": workers,
                "recon_time_s": round(result.reconstruction_time_s, 2),
                "recon_ms_per_unit": round(result.normalized_recon_ms_per_unit, 3),
                "mean_response_ms": round(result.response.mean_ms, 2),
                "user_built_units": recon.user_built_units,
                "total_units": recon.total_units,
            }
        )
    return rows


def run_single_thread(scale: str = "tiny", **kwargs) -> typing.List[dict]:
    """Figures 8-1 (reconstruction time) and 8-2 (response time)."""
    return run_grid(workers=1, scale=scale, **kwargs)


def run_parallel(scale: str = "tiny", **kwargs) -> typing.List[dict]:
    """Figures 8-3 (reconstruction time) and 8-4 (response time)."""
    return run_grid(workers=8, scale=scale, **kwargs)


def format_rows(rows: typing.Sequence[dict], title: str) -> str:
    return format_table(
        headers=[
            "alpha", "G", "rate/s", "algorithm", "workers",
            "recon time (s)", "ms/unit", "mean resp (ms)", "user-built",
        ],
        rows=[
            [r["alpha"], r["g"], r["rate"], r["algorithm"], r["workers"],
             r["recon_time_s"], r["recon_ms_per_unit"], r["mean_response_ms"],
             r["user_built_units"]]
            for r in rows
        ],
        title=title,
    )
