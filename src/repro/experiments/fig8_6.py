"""Figure 8-6: the Muntz & Lui analytic model vs simulation.

For each alpha, the M&L fluid model's predicted reconstruction time
(with the paper's input conversions and the 46 random-accesses/s
service rate) is placed next to the simulated reconstruction time of
the corresponding algorithm. The expected qualitative result is the
paper's: the model is significantly pessimistic, because it prices
every access — including the replacement's sequential reconstruction
writes — at the random-access rate.
"""

from __future__ import annotations

import typing

from repro.analysis.muntz_lui import MuntzLuiInputs, MuntzLuiModel
from repro.experiments.builders import PAPER_NUM_DISKS, alpha_of
from repro.experiments.reporting import format_table
from repro.recon.algorithms import REDIRECT, REDIRECT_PIGGYBACK, USER_WRITES
from repro.sweep import SweepOptions, SweepSpec, run_sweep

FIG_RATE = 210.0
READ_FRACTION = 0.5
#: M&L model the user-writes case as their baseline; their two
#: optimizations are redirection and piggybacking.
FIG_ALGORITHMS = (USER_WRITES, REDIRECT, REDIRECT_PIGGYBACK)
FIG_STRIPE_SIZES = (4, 5, 6, 10, 21)


def run(
    scale: str = "tiny",
    workers: int = 8,
    stripe_sizes: typing.Sequence[int] = FIG_STRIPE_SIZES,
    seed: int = 1992,
    options: typing.Optional[SweepOptions] = None,
) -> typing.List[dict]:
    spec = SweepSpec(
        axes=[
            ("stripe_size", stripe_sizes),
            ("algorithm", FIG_ALGORITHMS),
        ],
        base=dict(
            user_rate_per_s=FIG_RATE,
            read_fraction=READ_FRACTION,
            mode="recon",
            recon_workers=workers,
            scale=scale,
            seed=seed,
        ),
    )
    outcome = run_sweep(spec, options)
    rows = []
    for result in outcome.results:
        config = result.config
        model = MuntzLuiModel(
            MuntzLuiInputs(
                num_disks=PAPER_NUM_DISKS,
                stripe_size=config.stripe_size,
                user_rate_per_s=FIG_RATE,
                user_read_fraction=READ_FRACTION,
                units_per_disk=result.reconstruction.total_units,
            )
        )
        predicted = model.reconstruction_time_s(config.algorithm)
        simulated = result.reconstruction_time_s
        rows.append(
            {
                "g": config.stripe_size,
                "alpha": round(alpha_of(PAPER_NUM_DISKS, config.stripe_size), 3),
                "algorithm": config.algorithm.name,
                "model_s": round(predicted, 1),
                "simulated_s": round(simulated, 1),
                "model_over_sim": round(predicted / simulated, 2)
                if simulated > 0
                else float("inf"),
            }
        )
    return rows


def format_rows(rows: typing.Sequence[dict]) -> str:
    return format_table(
        headers=["alpha", "G", "algorithm", "M&L model (s)", "simulated (s)", "model/sim"],
        rows=[
            [r["alpha"], r["g"], r["algorithm"], r["model_s"], r["simulated_s"],
             r["model_over_sim"]]
            for r in rows
        ],
        title="Figure 8-6: Muntz & Lui model vs simulation (rate 210, 50/50)",
    )
