"""Persist experiment rows as JSON for downstream analysis.

Experiment runners return plain dict rows; this module writes them with
enough metadata (experiment name, scale, package version, row schema)
that a result file is self-describing, and loads them back for
comparison across runs.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro._version import __version__

FORMAT_VERSION = 1


def canonical_json_value(value: typing.Any) -> typing.Any:
    """JSON fallback for experiment objects that appear inside rows.

    A :class:`~repro.recon.algorithms.ReconAlgorithm` serializes by
    name, a :class:`~repro.experiments.runner.ScenarioConfig` by its
    canonical key (:meth:`to_key`, shared with the sweep result
    cache), and a :class:`~repro.experiments.scales.ScalePreset` by
    its fields — so rows carrying live config objects are storable and
    diffable without every runner hand-flattening them first.
    """
    from repro.experiments.runner import ScenarioConfig
    from repro.experiments.scales import ScalePreset
    from repro.recon.algorithms import ReconAlgorithm

    if isinstance(value, ReconAlgorithm):
        return value.name
    if isinstance(value, ScenarioConfig):
        return value.to_key()
    if isinstance(value, ScalePreset):
        return dataclasses.asdict(value)
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serializable"
    )


def save_rows(
    path: typing.Union[str, pathlib.Path],
    experiment: str,
    scale: str,
    rows: typing.Sequence[dict],
) -> None:
    """Write rows plus metadata as a JSON document."""
    document = {
        "format_version": FORMAT_VERSION,
        "package_version": __version__,
        "experiment": experiment,
        "scale": scale,
        "fields": sorted({key for row in rows for key in row}),
        "rows": list(rows),
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, default=canonical_json_value)
        + "\n",
        encoding="utf-8",
    )


def load_rows(path: typing.Union[str, pathlib.Path]) -> typing.Tuple[dict, list]:
    """Read a result document; returns ``(metadata, rows)``.

    Raises
    ------
    ValueError
        For documents written by an incompatible format version.
    """
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if document.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"result file {path} has format version "
            f"{document.get('format_version')!r}, expected {FORMAT_VERSION}"
        )
    metadata = {k: v for k, v in document.items() if k != "rows"}
    return metadata, document["rows"]


def diff_rows(
    baseline: typing.Sequence[dict],
    current: typing.Sequence[dict],
    key_fields: typing.Sequence[str],
    value_field: str,
) -> typing.List[dict]:
    """Join two row sets on key fields and report value changes.

    Useful for regression-checking experiment outputs across code
    changes: join Figure 8-1 rows on (alpha, rate, algorithm) and see
    how reconstruction time moved.
    """
    def key_of(row):
        return tuple(row[f] for f in key_fields)

    baseline_by_key = {key_of(row): row for row in baseline}
    changes = []
    for row in current:
        key = key_of(row)
        if key not in baseline_by_key:
            continue
        old = baseline_by_key[key][value_field]
        new = row[value_field]
        changes.append(
            {
                **{f: row[f] for f in key_fields},
                "baseline": old,
                "current": new,
                "ratio": (new / old) if old else float("inf"),
            }
        )
    return changes
