"""Derived experiment: what declustering buys in data reliability.

Not a figure of the paper, but the direct consequence its introduction
promises: reconstruction time is "a significant contributor to the
length of time that the system is vulnerable to data loss caused by a
second failure", and MTTDL is inversely proportional to repair time.
This experiment measures reconstruction time per alpha (8-way sweep,
rate 210, 50/50) and converts it to MTTDL with the standard Markov
approximation, scaling the measured repair to paper-sized disks so the
reliability numbers refer to the real 0661.
"""

from __future__ import annotations

import typing

from repro.analysis.reliability import ReliabilityInputs, mttdl_years
from repro.experiments.builders import PAPER_NUM_DISKS, alpha_of
from repro.experiments.reporting import format_table
from repro.experiments.scales import get_scale
from repro.recon.algorithms import USER_WRITES
from repro.sweep import SweepOptions, SweepSpec, run_sweep

RELIABILITY_STRIPE_SIZES = (4, 6, 10, 21)
RELIABILITY_RATE = 210.0
DISK_MTTF_HOURS = 150_000.0


def run(scale: str = "tiny",
        stripe_sizes: typing.Sequence[int] = RELIABILITY_STRIPE_SIZES,
        seed: int = 1992,
        options: typing.Optional[SweepOptions] = None) -> typing.List[dict]:
    paper_units = get_scale("paper").units_per_disk
    spec = SweepSpec(
        axes=[("stripe_size", stripe_sizes)],
        base=dict(
            user_rate_per_s=RELIABILITY_RATE,
            read_fraction=0.5,
            mode="recon",
            algorithm=USER_WRITES,
            recon_workers=8,
            scale=scale,
            seed=seed,
        ),
    )
    outcome = run_sweep(spec, options)
    rows = []
    for result in outcome.results:
        g = result.config.stripe_size
        # Reconstruction time scales ~linearly in units per disk; scale
        # the measured repair up to the full-size drive.
        scale_factor = paper_units / result.reconstruction.total_units
        repair_hours = result.reconstruction_time_s * scale_factor / 3600.0
        inputs = ReliabilityInputs(
            num_disks=PAPER_NUM_DISKS,
            disk_mttf_hours=DISK_MTTF_HOURS,
            repair_hours=repair_hours,
        )
        rows.append(
            {
                "g": g,
                "alpha": round(alpha_of(PAPER_NUM_DISKS, g), 3),
                "parity_overhead_pct": round(100.0 / g, 1),
                "repair_hours_full_disk": round(repair_hours, 2),
                "mttdl_years": round(mttdl_years(inputs), 0),
                "response_ms": round(result.response.mean_ms, 1),
            }
        )
    return rows


def format_rows(rows: typing.Sequence[dict]) -> str:
    return format_table(
        headers=["alpha", "G", "parity %", "repair (h, full disk)",
                 "MTTDL (years)", "resp during repair (ms)"],
        rows=[
            [r["alpha"], r["g"], r["parity_overhead_pct"],
             r["repair_hours_full_disk"], r["mttdl_years"], r["response_ms"]]
            for r in rows
        ],
        title=(
            "Reliability: measured repair time -> MTTDL "
            f"(C=21, disk MTTF {DISK_MTTF_HOURS:.0f} h, rate 210, 8-way sweep)"
        ),
    )
