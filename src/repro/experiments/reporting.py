"""Plain-text table rendering for experiment output."""

from __future__ import annotations

import typing


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_by(
    rows: typing.Sequence[dict],
    key_fields: typing.Sequence[str],
    x_field: str,
    y_field: str,
) -> typing.Dict[tuple, typing.List[typing.Tuple[object, object]]]:
    """Group rows into (x, y) series keyed by the given fields.

    Mirrors how the paper's figures are organized: one curve per
    (rate, algorithm, ...) combination over the alpha axis.
    """
    series: typing.Dict[tuple, list] = {}
    for row in rows:
        key = tuple(row[f] for f in key_fields)
        series.setdefault(key, []).append((row[x_field], row[y_field]))
    for points in series.values():
        points.sort()
    return series
