"""The scenario runner: one simulation point, any mode.

A *scenario* is one (layout, rate, read fraction, mode) point:

- ``fault-free`` — steady-state response-time measurement;
- ``degraded``  — disk 0 failed, no replacement, steady-state;
- ``recon``     — disk 0 failed, replacement installed, the sweep and
  the user workload run concurrently until reconstruction completes;
- ``campaign``  — a continuous-operation fault campaign: a
  :class:`~repro.faults.injector.FaultInjector` drives stochastic disk
  failures and latent sector errors against the array (with a spare
  pool repairing what it can) until the mission time elapses or data
  is lost.

Runner output carries everything any figure or table needs: user
response summaries, reconstruction time, per-cycle phase records,
per-disk utilization, and — when fault injection is enabled — the
fault campaign summary.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field

from repro.array.addressing import ArrayAddressing
from repro.array.controller import ArrayController
from repro.disk.constant import ConstantRateDisk
from repro.experiments.builders import LAYOUT_CHOICES, PAPER_NUM_DISKS, build_layout
from repro.experiments.scales import ScalePreset, get_scale
from repro.faults.profile import FaultProfile
from repro.metrics import MetricsRegistry
from repro.recon.algorithms import BASELINE, ReconAlgorithm, algorithm_by_name
from repro.recon.sweeper import ReconstructionResult, Reconstructor
from repro.sim.environment import Environment
from repro.workload.recorder import ResponseRecorder, ResponseSummary
from repro.workload.synthetic import SyntheticWorkload, WorkloadConfig

MODES = ("fault-free", "degraded", "recon", "campaign")


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulation point."""

    stripe_size: int
    user_rate_per_s: float
    read_fraction: float
    mode: str = "fault-free"
    algorithm: ReconAlgorithm = BASELINE
    recon_workers: int = 1
    scale: typing.Union[str, ScalePreset] = "tiny"
    num_disks: int = PAPER_NUM_DISKS
    seed: int = 1992
    policy: str = "cvscan"
    with_datastore: bool = False
    failed_disk: int = 0
    #: Ablation switch: replace the sector-accurate disks with fixed
    #: service-time servers (the Muntz & Lui work-preserving world).
    constant_rate_disks: bool = False
    #: Extension: idle time each sweep worker inserts between cycles
    #: (reconstruction throttling, Section 9 future work).
    recon_cycle_delay_ms: float = 0.0
    #: Fault injection (strictly opt-in): when set, disks carry error
    #: models and the controller retries/escalates. Required (and the
    #: stochastic failure clocks only run) in ``campaign`` mode.
    fault_profile: typing.Optional[FaultProfile] = None
    #: Campaign knobs: spare disks on the shelf, spare switch-in time,
    #: and the mission length (defaults to the scale's steady duration).
    spares: int = 0
    replacement_delay_ms: float = 0.0
    mission_ms: typing.Optional[float] = None
    #: Syndromes per parity stripe: 1 (the paper's single parity) or 2
    #: (the dual P+Q extension tolerating two concurrent failures).
    syndromes: int = 1
    #: Layout implementation family (see
    #: :data:`repro.experiments.builders.LAYOUT_CHOICES`): "auto" keeps
    #: the historical table-based selection where the design catalog
    #: serves it and falls back to arithmetic layouts at large C;
    #: "table"/"prime"/"cyclic" force one family.
    layout: str = "auto"

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.recon_workers < 1:
            raise ValueError("recon_workers must be >= 1")
        if self.mode == "campaign" and self.fault_profile is None:
            raise ValueError("campaign mode requires a fault_profile")
        if self.spares < 0:
            raise ValueError("spares cannot be negative")
        if self.syndromes not in (1, 2):
            raise ValueError(f"syndromes must be 1 or 2, got {self.syndromes}")
        if self.stripe_size <= self.syndromes:
            raise ValueError(
                f"stripe size {self.stripe_size} leaves no data units with "
                f"{self.syndromes} syndromes"
            )
        if self.layout not in LAYOUT_CHOICES:
            raise ValueError(
                f"layout must be one of {LAYOUT_CHOICES}, got {self.layout!r}"
            )

    @property
    def alpha(self) -> float:
        return (self.stripe_size - 1) / (self.num_disks - 1)

    def scale_preset(self) -> ScalePreset:
        if isinstance(self.scale, ScalePreset):
            return self.scale
        return get_scale(self.scale)

    def to_key(self) -> typing.Dict[str, typing.Any]:
        """Canonical JSON-safe form of this config.

        The algorithm is stored by name and a :class:`ScalePreset` by
        its fields, so the key survives ``json.dumps``/``loads`` and
        :meth:`from_key` rebuilds an equal config. This is the identity
        the sweep result cache hashes and the form
        :mod:`repro.experiments.persistence` writes when a row carries
        a config.
        """
        key = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        key["algorithm"] = self.algorithm.name
        if isinstance(self.scale, ScalePreset):
            key["scale"] = dataclasses.asdict(self.scale)
        if self.fault_profile is not None:
            key["fault_profile"] = dataclasses.asdict(self.fault_profile)
        return key

    @classmethod
    def from_key(cls, key: typing.Mapping[str, typing.Any]) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_key` output (or parsed JSON)."""
        kwargs = dict(key)
        if isinstance(kwargs.get("algorithm"), str):
            kwargs["algorithm"] = algorithm_by_name(kwargs["algorithm"])
        if isinstance(kwargs.get("scale"), dict):
            kwargs["scale"] = ScalePreset(**kwargs["scale"])
        if isinstance(kwargs.get("fault_profile"), dict):
            kwargs["fault_profile"] = FaultProfile(**kwargs["fault_profile"])
        return cls(**kwargs)


@dataclass
class ScenarioResult:
    """Everything measured in one scenario."""

    config: ScenarioConfig
    response: ResponseSummary
    read_response: ResponseSummary
    write_response: ResponseSummary
    simulated_ms: float
    requests_completed: int
    mapped_units_per_disk: int
    disk_utilization: typing.List[float] = field(default_factory=list)
    reconstruction: typing.Optional[ReconstructionResult] = None
    integrity_errors: typing.List[str] = field(default_factory=list)
    #: JSON-safe fault campaign summary; None when fault injection was
    #: disabled (the default).
    fault_summary: typing.Optional[typing.Dict[str, typing.Any]] = None
    #: JSON-safe observability block (latency histograms by class,
    #: per-disk utilization and queue depth, reconstruction progress) —
    #: see :meth:`repro.metrics.MetricsRegistry.to_dict`. None when the
    #: run was executed with ``collect_metrics=False``.
    metrics: typing.Optional[typing.Dict[str, typing.Any]] = None

    @property
    def reconstruction_time_s(self) -> float:
        if self.reconstruction is None:
            raise RuntimeError("scenario did not run a reconstruction")
        return self.reconstruction.reconstruction_time_ms / 1000.0

    @property
    def normalized_recon_ms_per_unit(self) -> float:
        """Reconstruction time per rebuilt unit — scale-independent."""
        if self.reconstruction is None:
            raise RuntimeError("scenario did not run a reconstruction")
        return self.reconstruction.reconstruction_time_ms / self.reconstruction.total_units


def run_scenario(
    config: ScenarioConfig,
    collect_metrics: bool = True,
    lock_monitor=None,
) -> ScenarioResult:
    """Simulate one scenario point and summarize it.

    ``collect_metrics`` controls only the observability block attached
    to the result — it is deliberately *not* part of
    :class:`ScenarioConfig` (and thus not part of the cache key),
    because metrics collection is passive: the simulation is
    event-for-event identical with it on or off. ``lock_monitor`` (the
    simsan sanitizer) is held to the same contract: observation only,
    bit-identical results with it on or off.
    """
    scale = config.scale_preset()
    env = Environment()
    layout = build_layout(
        config.num_disks,
        config.stripe_size,
        syndromes=config.syndromes,
        layout=config.layout,
    )
    addressing = ArrayAddressing(layout, scale.spec())
    disk_factory = ConstantRateDisk if config.constant_rate_disks else None
    metrics = (
        MetricsRegistry(measure_since_ms=scale.warmup_ms) if collect_metrics else None
    )
    controller = ArrayController(
        env,
        addressing,
        policy=config.policy,
        algorithm=config.algorithm,
        with_datastore=config.with_datastore,
        disk_factory=disk_factory,
        fault_profile=config.fault_profile,
        metrics=metrics,
        measure_since_ms=scale.warmup_ms,
        lock_monitor=lock_monitor,
    )
    recorder = ResponseRecorder(warmup_ms=scale.warmup_ms)
    workload: typing.Optional[SyntheticWorkload] = None
    if not (config.mode == "campaign" and config.user_rate_per_s <= 0):
        # A campaign may run without user traffic (pure reliability
        # estimation); every other mode requires a workload.
        workload = SyntheticWorkload(
            controller,
            WorkloadConfig(
                access_rate_per_s=config.user_rate_per_s,
                read_fraction=config.read_fraction,
                seed=config.seed,
            ),
            recorder=recorder,
        )

    reconstruction: typing.Optional[ReconstructionResult] = None
    fault_extra: typing.Dict[str, typing.Any] = {}
    if config.mode == "fault-free":
        workload.run(duration_ms=scale.steady_duration_ms)
        env.run(until=scale.steady_duration_ms)
        measure_since = None
    elif config.mode == "degraded":
        controller.fail_disk(config.failed_disk)
        workload.run(duration_ms=scale.steady_duration_ms)
        env.run(until=scale.steady_duration_ms)
        measure_since = None
    elif config.mode == "recon":
        controller.fail_disk(config.failed_disk)
        controller.install_replacement()
        reconstructor = Reconstructor(
            controller,
            workers=config.recon_workers,
            cycle_delay_ms=config.recon_cycle_delay_ms,
        )
        done = reconstructor.start()
        workload.run(duration_ms=float("inf"))
        env.run(until=done)
        workload.stop()
        env.run(until=workload.drained())
        reconstruction = reconstructor.result()
        measure_since = None  # warm-up alone; the whole window is recovery
    else:  # campaign
        from repro.array.sparing import SparePool
        from repro.faults.injector import FaultInjector

        spare_pool = (
            SparePool(
                controller,
                spares=config.spares,
                replacement_delay_ms=config.replacement_delay_ms,
                recon_workers=config.recon_workers,
                cycle_delay_ms=config.recon_cycle_delay_ms,
            )
            if config.spares > 0
            else None
        )
        injector = FaultInjector(controller, monitor=spare_pool).start()
        mission = (
            config.mission_ms
            if config.mission_ms is not None
            else scale.steady_duration_ms
        )
        if workload is not None:
            workload.run(duration_ms=mission)
        env.run(until=env.any_of([env.timeout(mission), injector.data_loss_event]))
        measure_since = None
        # mean_repair_ms averages spare_pool.repairs, and
        # injector.repairs_completed counts the same completions: the
        # injector installs a synchronous SparePool.on_repair callback,
        # so the two sources agree at every instant — including a
        # mission that ends on the exact tick a repair finishes (an
        # event-driven count would still be one behind on the heap).
        # With no spare pool there are no repairs and the count is 0.
        repairs = spare_pool.repairs if spare_pool is not None else []
        assert injector.repairs_completed == len(repairs)
        fault_extra = {
            "mission_ms": mission,
            "disk_failures": injector.disk_failures,
            "repairs_completed": injector.repairs_completed,
            "spares_remaining": (
                spare_pool.spares_remaining if spare_pool is not None else 0
            ),
            "mean_repair_ms": (
                sum(record.total_repair_ms for record in repairs) / len(repairs)
                if repairs
                else None
            ),
        }

    if workload is not None:
        workload.stop()
    end_ms = env.now
    # Utilization over the measurement window [warmup, end] — matching
    # how response samples are filtered. The windowed accumulator clips
    # warm-up busy time and guards a zero-length window (reported 0.0).
    utilization = [
        disk.stats.busy_window.utilization(end_ms) for disk in controller.disks
    ]
    fault_summary: typing.Optional[typing.Dict[str, typing.Any]] = None
    if controller.fault_log is not None:
        faults = controller.faults
        loss_events = faults.data_loss_events
        fault_summary = {
            "events": controller.fault_log.summary(),
            "data_lost": faults.data_lost,
            "lost_disks": sorted(faults.lost_disks),
            "data_loss_events": len(loss_events),
            "time_to_data_loss_ms": (
                loss_events[0].at_ms if loss_events else None
            ),
            "exposed_stripes": (
                len(loss_events[0].exposed_stripes) if loss_events else 0
            ),
        }
        fault_summary.update(fault_extra)
    metrics_block: typing.Optional[typing.Dict[str, typing.Any]] = None
    if metrics is not None:
        if workload is not None:
            metrics.counter("requests-completed").increment(workload.completed)
            metrics.counter("integrity-errors").increment(
                len(workload.integrity_errors)
            )
        metrics.set_disk_rows(
            [
                {
                    "disk": disk.disk_id,
                    "utilization": utilization[index],
                    "busy_ms": disk.stats.busy_window.total_ms,
                    "seek_ms": disk.stats.total_seek_ms,
                    "rotation_ms": disk.stats.total_rotation_ms,
                    "transfer_ms": disk.stats.total_transfer_ms,
                    "queue_wait_ms": disk.stats.total_queue_wait_ms,
                    "completed": disk.stats.completed,
                }
                for index, disk in enumerate(controller.disks)
            ]
        )
        metrics_block = metrics.to_dict(end_ms)
    return ScenarioResult(
        config=config,
        response=recorder.summary(since_ms=measure_since),
        read_response=recorder.summary(reads_only=True, since_ms=measure_since),
        write_response=recorder.summary(writes_only=True, since_ms=measure_since),
        simulated_ms=end_ms,
        requests_completed=workload.completed if workload is not None else 0,
        mapped_units_per_disk=addressing.mapped_units_per_disk,
        disk_utilization=utilization,
        reconstruction=reconstruction,
        integrity_errors=(
            list(workload.integrity_errors) if workload is not None else []
        ),
        fault_summary=fault_summary,
        metrics=metrics_block,
    )
