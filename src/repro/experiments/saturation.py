"""Throughput saturation sweep: where the array's capacity knee sits.

Not a numbered figure, but the capacity arithmetic Section 6 does in
prose: 21 disks at ~46 random 4 KB accesses/s each give the array a
ceiling of ~966 disk accesses/s; user writes cost four accesses, so a
write-heavy workload saturates at far lower *user* rates (the paper
could not run 378 writes/s). This sweep measures mean response time
versus offered user rate for a given read fraction and reports the
measured knee against the analytic ceiling.
"""

from __future__ import annotations

import typing

from repro.experiments.builders import PAPER_NUM_DISKS, alpha_of
from repro.experiments.reporting import format_table
from repro.sweep import SweepOptions, SweepSpec, run_sweep

#: ~46 random 4 KB accesses/s per disk (measured from the disk model).
DISK_CAPACITY_PER_S = 46.0


def analytic_user_rate_ceiling(read_fraction: float,
                               num_disks: int = PAPER_NUM_DISKS) -> float:
    """User accesses/s at which total disk accesses hit the array ceiling.

    Each user read is 1 access, each user write 4, so the expansion
    factor is ``4 - 3R``.
    """
    expansion = 4.0 - 3.0 * read_fraction
    return num_disks * DISK_CAPACITY_PER_S / expansion


def run(
    scale: str = "tiny",
    stripe_size: int = 4,
    read_fraction: float = 0.5,
    rates: typing.Optional[typing.Sequence[float]] = None,
    seed: int = 1992,
    options: typing.Optional[SweepOptions] = None,
) -> typing.List[dict]:
    ceiling = analytic_user_rate_ceiling(read_fraction)
    if rates is None:
        rates = [round(ceiling * f) for f in (0.3, 0.5, 0.7, 0.85, 0.95)]
    spec = SweepSpec(
        axes=[("user_rate_per_s", [float(rate) for rate in rates])],
        base=dict(
            stripe_size=stripe_size,
            read_fraction=read_fraction,
            mode="fault-free",
            scale=scale,
            seed=seed,
        ),
    )
    outcome = run_sweep(spec, options)
    rows = []
    for result in outcome.results:
        rate = result.config.user_rate_per_s
        rows.append(
            {
                "alpha": round(alpha_of(PAPER_NUM_DISKS, stripe_size), 3),
                "read_fraction": read_fraction,
                "rate": rate,
                "offered_fraction_of_ceiling": round(rate / ceiling, 3),
                "mean_response_ms": round(result.response.mean_ms, 2),
                "p90_ms": round(result.response.p90_ms, 2),
                "max_disk_utilization": round(max(result.disk_utilization), 3),
            }
        )
    return rows


def format_rows(rows: typing.Sequence[dict]) -> str:
    if rows:
        ceiling = analytic_user_rate_ceiling(rows[0]["read_fraction"])
        title = (
            f"Saturation sweep (alpha={rows[0]['alpha']}, "
            f"read fraction {rows[0]['read_fraction']:.0%}, analytic ceiling "
            f"~{ceiling:.0f} user accesses/s)"
        )
    else:
        title = "Saturation sweep"
    return format_table(
        headers=["rate/s", "of ceiling", "mean resp (ms)", "p90 (ms)", "max disk util"],
        rows=[
            [r["rate"], r["offered_fraction_of_ceiling"], r["mean_response_ms"],
             r["p90_ms"], r["max_disk_utilization"]]
            for r in rows
        ],
        title=title,
    )
