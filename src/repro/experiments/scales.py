"""Scale presets for the experiment harness."""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.disk.specs import IBM_0661, DiskSpec, scaled_spec


@dataclass(frozen=True)
class ScalePreset:
    """One runnable size for the paper's experiments.

    ``cylinders`` sets the disk (hence reconstruction) size.
    ``steady_duration_ms`` and ``warmup_ms`` control fault-free and
    degraded measurements (Figures 6-1/6-2), which need steady-state
    windows rather than a reconstruction endpoint.
    """

    name: str
    cylinders: int
    steady_duration_ms: float
    warmup_ms: float
    note: str

    def spec(self) -> DiskSpec:
        if self.cylinders == IBM_0661.cylinders:
            return IBM_0661
        return scaled_spec(self.cylinders)

    @property
    def units_per_disk(self) -> int:
        return self.spec().total_sectors // 8  # 4 KB units


#: 13 cylinders = 1,092 units/disk: the smallest size on which every
#: layout in the grid (including the alpha=0.85 design, table depth
#: 1,080) fits a whole table. Reconstructions complete in seconds of
#: simulated time.
TINY = ScalePreset(
    name="tiny",
    cylinders=13,
    steady_duration_ms=20_000.0,
    warmup_ms=2_000.0,
    note="CI-sized: ~1.1k units/disk, seconds of simulated time per point",
)

#: 65 cylinders = 5,460 units/disk; several minutes of simulated time.
SMALL = ScalePreset(
    name="small",
    cylinders=65,
    steady_duration_ms=60_000.0,
    warmup_ms=5_000.0,
    note="Report-sized: ~5.5k units/disk",
)

#: The full Table 5-1 configuration.
PAPER = ScalePreset(
    name="paper",
    cylinders=IBM_0661.cylinders,
    steady_duration_ms=120_000.0,
    warmup_ms=10_000.0,
    note="Full IBM 0661: ~80k units/disk, hours of simulated time per point",
)

SCALES: typing.Dict[str, ScalePreset] = {s.name: s for s in (TINY, SMALL, PAPER)}


def get_scale(name: str) -> ScalePreset:
    """Look up a scale preset by name."""
    if name not in SCALES:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return SCALES[name]
