"""``repro scenario`` — run one ad-hoc scenario point from the shell.

The figure runners enumerate fixed grids; this command runs a single
:class:`~repro.experiments.runner.ScenarioConfig` spelled out on the
command line, through the same sweep machinery the figures use — so
the result enters the same content-addressed cache under the same key
a sweep or the job service would compute for it.

The point of the command is the axes the figure grids do not reach:
``--num-disks 1009 --layout prime`` exercises the arithmetic layouts
at the thousand-disk widths the design catalog has no tables for, and
``--cylinders``/``--duration-ms`` build a custom scale preset when the
named presets are too small for a deep layout period (a C=1009 G=10
permutation layout needs 10,080 units per disk; ``tiny`` has 1,092).

Examples::

    repro scenario --num-disks 1009 --stripe-size 10 --layout prime \\
        --cylinders 128 --rate 500
    repro scenario --stripe-size 5 --mode recon --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.experiments.builders import LAYOUT_CHOICES, PAPER_NUM_DISKS
from repro.experiments.runner import MODES, ScenarioConfig
from repro.experiments.scales import SCALES, ScalePreset, get_scale
from repro.recon.algorithms import ALGORITHMS, algorithm_by_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scenario",
        description="Run one scenario point and print its summary.",
    )
    parser.add_argument(
        "--num-disks", type=int, default=PAPER_NUM_DISKS, metavar="C",
        help=f"array width (default: {PAPER_NUM_DISKS}, the paper's)",
    )
    parser.add_argument(
        "--stripe-size", type=int, required=True, metavar="G",
        help="parity stripe size (data + syndrome units)",
    )
    parser.add_argument(
        "--layout", default="auto", choices=list(LAYOUT_CHOICES),
        help="layout implementation family (default: auto)",
    )
    parser.add_argument(
        "--syndromes", type=int, default=1, choices=(1, 2),
        help="syndrome units per stripe: 1 = parity, 2 = P+Q (default: 1)",
    )
    parser.add_argument(
        "--mode", default="fault-free",
        choices=[mode for mode in MODES if mode != "campaign"],
        help="scenario mode (default: fault-free; campaigns need a "
        "fault profile — use the campaign experiments or the service)",
    )
    parser.add_argument(
        "--algorithm", default="baseline",
        choices=sorted(a.name for a in ALGORITHMS),
        help="reconstruction algorithm for --mode recon (default: baseline)",
    )
    parser.add_argument(
        "--rate", type=float, default=105.0, metavar="PER_S",
        help="user access rate in accesses/second (default: 105)",
    )
    parser.add_argument(
        "--read-fraction", type=float, default=0.5, metavar="F",
        help="fraction of user accesses that are reads (default: 0.5)",
    )
    parser.add_argument(
        "--seed", type=int, default=1992, help="workload seed (default: 1992)",
    )
    scale = parser.add_argument_group(
        "scale", "a named preset, or a custom one built from --cylinders"
    )
    scale.add_argument(
        "--scale", default="tiny", choices=sorted(SCALES),
        help="scale preset (default: tiny); ignored when --cylinders is given",
    )
    scale.add_argument(
        "--cylinders", type=int, default=None, metavar="N",
        help="custom preset: disk size in cylinders (84 units each)",
    )
    scale.add_argument(
        "--duration-ms", type=float, default=20_000.0, metavar="MS",
        help="custom preset: steady-state measurement window (default: 20000)",
    )
    scale.add_argument(
        "--warmup-ms", type=float, default=2_000.0, metavar="MS",
        help="custom preset: warmup excluded from measurement (default: 2000)",
    )
    cache = parser.add_argument_group("cache")
    cache.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; do not read or write the sweep result cache",
    )
    cache.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="sweep result cache location (default: $REPRO_SWEEP_CACHE "
        "or results/sweep-cache)",
    )
    return parser


def _scale_from_args(args: argparse.Namespace) -> typing.Union[str, ScalePreset]:
    if args.cylinders is None:
        return get_scale(args.scale).name
    if args.cylinders < 2:
        raise SystemExit("repro scenario: --cylinders must be >= 2")
    return ScalePreset(
        name=f"custom-{args.cylinders}cyl",
        cylinders=args.cylinders,
        steady_duration_ms=args.duration_ms,
        warmup_ms=args.warmup_ms,
        note="ad-hoc preset built by 'repro scenario'",
    )


def config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        stripe_size=args.stripe_size,
        user_rate_per_s=args.rate,
        read_fraction=args.read_fraction,
        mode=args.mode,
        algorithm=algorithm_by_name(args.algorithm),
        scale=_scale_from_args(args),
        num_disks=args.num_disks,
        seed=args.seed,
        syndromes=args.syndromes,
        layout=args.layout,
    )


def _format_result(result) -> typing.List[str]:
    lines = [
        f"simulated {result.simulated_ms / 1000.0:.1f}s, "
        f"{result.requests_completed} user requests",
        f"response mean={result.response.mean_ms:.2f}ms "
        f"p90={result.response.p90_ms:.2f}ms p99={result.response.p99_ms:.2f}ms",
    ]
    recon = result.reconstruction
    if recon is not None:
        lines.append(
            f"reconstruction {recon.reconstruction_time_ms / 1000.0:.1f}s "
            f"({recon.swept_units} swept, {recon.user_built_units} user-built)"
        )
    if result.integrity_errors:
        lines.append(f"INTEGRITY ERRORS: {len(result.integrity_errors)}")
    return lines


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as error:
        print(f"repro scenario: {error}", file=sys.stderr)
        return 2

    # Imported late so --help stays fast.
    from repro.layout.base import LayoutError
    from repro.sweep import SweepError, SweepOptions, default_cache_dir
    from repro.sweep.cache import config_cache_key
    from repro.sweep.pool import run_sweep

    cache = None if args.no_cache else (args.cache_dir or default_cache_dir())
    options = SweepOptions(jobs=1, cache=cache, progress=True, stream=sys.stdout)
    alpha = config.alpha
    print(
        f"scenario: C={config.num_disks} G={config.stripe_size} "
        f"alpha={alpha:.3f} layout={config.layout} mode={config.mode} "
        f"scale={config.scale_preset().name}"
    )
    try:
        outcome = run_sweep([config], options)
    except (SweepError, LayoutError, ValueError) as error:
        print(f"repro scenario: {error}", file=sys.stderr)
        return 1
    result = outcome.results[0]
    for line in _format_result(result):
        print(line)
    summary = outcome.summary
    print(
        f"executed={summary.executed} cache_hits={summary.cache_hits} "
        f"config_cache_key={config_cache_key(config)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
