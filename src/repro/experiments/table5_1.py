"""Table 5-1: the simulation configuration, printed from live objects.

Rather than hard-coding the paper's table, this experiment reads the
values back out of the configured spec, workload, and layout grid, so
it doubles as a self-check that the reproduction is configured the way
the paper says.
"""

from __future__ import annotations

import typing


from repro.experiments.builders import PAPER_NUM_DISKS, PAPER_STRIPE_SIZES, alpha_of
from repro.experiments.reporting import format_table
from repro.experiments.scales import get_scale


def run(scale: str = "paper") -> typing.List[dict]:
    preset = get_scale(scale)
    spec = preset.spec()
    rows = [
        {"section": "workload", "parameter": "access size", "value": "4 KB, 4 KB aligned"},
        {"section": "workload", "parameter": "user access rates", "value": "105, 210, 378 /s"},
        {"section": "workload", "parameter": "distribution", "value": "uniform over all data"},
        {"section": "disk", "parameter": "model", "value": spec.name},
        {"section": "disk", "parameter": "cylinders", "value": spec.cylinders},
        {"section": "disk", "parameter": "tracks/cylinder", "value": spec.tracks_per_cylinder},
        {"section": "disk", "parameter": "sectors/track",
         "value": f"{spec.sectors_per_track} @ {spec.bytes_per_sector} B"},
        {"section": "disk", "parameter": "revolution", "value": f"{spec.revolution_ms} ms"},
        {"section": "disk", "parameter": "seek (min/avg/max)",
         "value": f"{spec.seek_min_ms}/{spec.seek_avg_ms}/{spec.seek_max_ms} ms"},
        {"section": "disk", "parameter": "track skew", "value": f"{spec.track_skew_sectors} sectors"},
        {"section": "array", "parameter": "disks", "value": PAPER_NUM_DISKS},
        {"section": "array", "parameter": "head scheduling", "value": "CVSCAN"},
        {"section": "array", "parameter": "stripe unit", "value": "4 KB"},
    ]
    for g in PAPER_STRIPE_SIZES:
        rows.append(
            {
                "section": "array",
                "parameter": f"G = {g}",
                "value": (
                    f"alpha = {alpha_of(PAPER_NUM_DISKS, g):.2f}, "
                    f"parity overhead {100.0 / g:.0f}%"
                ),
            }
        )
    return rows


def format_rows(rows: typing.Sequence[dict]) -> str:
    return format_table(
        headers=["section", "parameter", "value"],
        rows=[[r["section"], r["parameter"], r["value"]] for r in rows],
        title="Table 5-1: simulation parameters",
    )
