"""Table 8-1: reconstruction cycle read/write phase times.

At rate 210 (50/50 read/write), for alpha in {0.15, 0.45, 1.0} and all
four algorithms, single-threaded and eight-way parallel: the mean (and
standard deviation) of the read phase and write phase over the last
300 reconstruction cycles.

Expected shape: complex algorithms lower the read phase (surviving
disks are off-loaded) but raise the write phase (the replacement's
sequential write stream is disturbed by random user work) — redirect
roughly triples baseline's write phase.
"""

from __future__ import annotations

import typing

from repro.experiments.builders import PAPER_NUM_DISKS, alpha_of
from repro.experiments.reporting import format_table
from repro.recon.algorithms import ALGORITHMS, ReconAlgorithm
from repro.sweep import SweepOptions, SweepSpec, run_sweep

TABLE_STRIPE_SIZES = (4, 10, 21)  # alpha = 0.15, 0.45, 1.0
TABLE_RATE = 210.0
READ_FRACTION = 0.5
LAST_N_CYCLES = 300


def run(
    scale: str = "tiny",
    workers_list: typing.Sequence[int] = (1, 8),
    stripe_sizes: typing.Sequence[int] = TABLE_STRIPE_SIZES,
    algorithms: typing.Sequence[ReconAlgorithm] = ALGORITHMS,
    seed: int = 1992,
    options: typing.Optional[SweepOptions] = None,
) -> typing.List[dict]:
    spec = SweepSpec(
        axes=[
            ("recon_workers", workers_list),
            ("stripe_size", stripe_sizes),
            ("algorithm", algorithms),
        ],
        base=dict(
            user_rate_per_s=TABLE_RATE,
            read_fraction=READ_FRACTION,
            mode="recon",
            scale=scale,
            seed=seed,
        ),
    )
    outcome = run_sweep(spec, options)
    rows = []
    for result in outcome.results:
        config = result.config
        read_phase, write_phase = result.reconstruction.phase_summary(
            last_n=LAST_N_CYCLES
        )
        rows.append(
            {
                "workers": config.recon_workers,
                "alpha": round(alpha_of(PAPER_NUM_DISKS, config.stripe_size), 3),
                "algorithm": config.algorithm.name,
                "read_ms": round(read_phase.mean_ms, 1),
                "read_std": round(read_phase.std_ms, 1),
                "write_ms": round(write_phase.mean_ms, 1),
                "write_std": round(write_phase.std_ms, 1),
                "cycle_ms": round(read_phase.mean_ms + write_phase.mean_ms, 1),
                "cycles_sampled": read_phase.count,
            }
        )
    return rows


def format_rows(rows: typing.Sequence[dict]) -> str:
    return format_table(
        headers=[
            "workers", "alpha", "algorithm",
            "read (ms)", "±", "write (ms)", "±", "cycle (ms)", "n",
        ],
        rows=[
            [r["workers"], r["alpha"], r["algorithm"],
             r["read_ms"], r["read_std"], r["write_ms"], r["write_std"],
             r["cycle_ms"], r["cycles_sampled"]]
            for r in rows
        ],
        title=(
            "Table 8-1: reconstruction cycle times at rate 210 "
            "(read phase + write phase = cycle, last 300 cycles)"
        ),
    )
