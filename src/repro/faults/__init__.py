"""Fault injection: stochastic failures, latent errors, retry policy.

The paper's subject is *continuous operation* under disk failures, but
a reproduction that only ever sees one clean, externally-scripted
whole-disk failure never exercises the regimes that motivate parity
declustering. This package supplies a real fault model:

- :mod:`repro.faults.profile` — :class:`FaultProfile`, the per-disk
  stochastic fault description (Weibull/exponential lifetimes, latent
  sector error arrival, transient I/O fault probability);
- :mod:`repro.faults.state` — :class:`DiskFaultState`, the mutable
  per-spindle fault state a :class:`~repro.disk.drive.Disk` consults to
  decide whether an access completes with a media error or a transient
  timeout;
- :mod:`repro.faults.retry` — :class:`RetryPolicy`, bounded retries
  with exponential backoff in simulated time;
- :mod:`repro.faults.log` — :class:`FaultLog`, the flight recorder
  every injected fault, retry, repair, and lost stripe is written to;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, the
  simulation process that drives per-disk lifetime clocks and latent
  error arrivals against an array controller and its spare pool.

Everything is seeded through the deterministic
:class:`~repro.sim.rng.RandomStreams`, so fault campaigns replay
exactly. The whole subsystem is strictly opt-in: with no
:class:`FaultProfile` attached, the disk and controller code paths are
bit-identical to the fault-free reproduction.
"""

from repro.faults.injector import FaultInjector
from repro.faults.log import (
    DATA_LOSS,
    DATA_LOSS_ACCESS,
    DISK_FAILURE,
    ESCALATION,
    FOREGROUND_REPAIR,
    LATENT_ERROR,
    MEDIA_ERROR,
    REBUILD_LOST,
    REPAIR_COMPLETE,
    RETRY,
    RETRY_EXHAUSTED,
    TRANSIENT_FAULT,
    FaultEvent,
    FaultLog,
)
from repro.faults.profile import FaultProfile
from repro.faults.retry import RetryPolicy
from repro.faults.state import DiskFaultState

__all__ = [
    "DATA_LOSS",
    "DATA_LOSS_ACCESS",
    "DISK_FAILURE",
    "ESCALATION",
    "FOREGROUND_REPAIR",
    "LATENT_ERROR",
    "MEDIA_ERROR",
    "REBUILD_LOST",
    "REPAIR_COMPLETE",
    "RETRY",
    "RETRY_EXHAUSTED",
    "TRANSIENT_FAULT",
    "DiskFaultState",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultProfile",
    "RetryPolicy",
]
