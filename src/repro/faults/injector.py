"""The fault injector: stochastic failure campaigns as a sim process.

A :class:`FaultInjector` drives three fault sources against a running
array:

- **disk lifetimes** — one clock per array slot draws Weibull (or
  exponential) times-to-failure; when a clock fires on a live slot the
  disk fails, routed through the spare-pool monitor when a spare is
  available, or straight into the controller's fault state otherwise;
- **latent sector errors** — a Poisson arrival process plants
  unreadable stripe units on random live disks (found the next time
  anything reads them: a user access, the scrubber, or a rebuild);
- **escalation feedback** — the controller reports disks that crossed
  their hard-error threshold back into :meth:`inject_disk_failure`, so
  a spindle dying of accumulated media errors takes the same
  failure→spare→reconstruction path as a crashed one.

The injector owns the campaign's terminal condition: the first failure
that lands on an already-degraded array fires :attr:`data_loss_event`,
which a campaign run uses as its stopping time.
"""

from __future__ import annotations

import typing

from repro.faults.log import LATENT_ERROR, REPAIR_COMPLETE, FaultLog
from repro.faults.profile import FaultProfile
from repro.layout.base import UnitAddress
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import ArrayController
    from repro.array.sparing import SparePool


class FaultInjector:
    """Runs a stochastic fault campaign against ``controller``.

    Parameters
    ----------
    controller:
        An :class:`~repro.array.controller.ArrayController` built with a
        :class:`~repro.faults.profile.FaultProfile` (fault injection
        must be enabled on the controller so accesses carry outcomes).
    monitor:
        Optional :class:`~repro.array.sparing.SparePool`. Failures on a
        fault-free array route through it while spares remain;
        otherwise the disk just fails in place.
    streams:
        Random stream factory; defaults to a child of the profile's
        seed, independent of the workload's streams.
    """

    def __init__(
        self,
        controller: "ArrayController",
        monitor: typing.Optional["SparePool"] = None,
        streams: typing.Optional[RandomStreams] = None,
    ):
        if controller.fault_profile is None:
            raise ValueError(
                "FaultInjector needs a controller built with a FaultProfile"
            )
        self.controller = controller
        self.env = controller.env
        self.profile: FaultProfile = controller.fault_profile
        self.monitor = monitor
        self.log: FaultLog = controller.fault_log
        streams = streams or RandomStreams(self.profile.seed).spawn("fault-injector")
        self._lifetime_rng = streams.stream("lifetimes")
        self._latent_rng = streams.stream("latent-errors")
        #: Fires with the simulated time of the first data-loss event.
        self.data_loss_event = self.env.event()
        self.disk_failures = 0
        self.repairs_completed = 0
        self._started = False
        # Escalations discovered by the controller's retry path feed the
        # same failure handling as lifetime-clock failures.
        controller.on_disk_failure = self.inject_disk_failure
        # Count repairs through the pool's synchronous callback, not an
        # event listener: a listener process resumes one heap step after
        # the record lands, so a campaign stopping on that exact tick
        # would report repairs_completed < len(monitor.repairs).
        if monitor is not None:
            monitor.on_repair = self._repair_completed

    # ------------------------------------------------------------------
    # Campaign control
    # ------------------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Launch the lifetime clocks and latent-error arrivals."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        if self.profile.disk_mttf_hours > 0:
            for disk in range(self.controller.layout.num_disks):
                self.env.process(
                    self._lifetime_clock(disk), name=f"lifetime-clock-{disk}"
                )
        if self.profile.latent_errors_per_hour > 0:
            self.env.process(self._latent_arrivals(), name="latent-errors")
        return self

    @property
    def data_lost(self) -> bool:
        return self.controller.faults.data_lost

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def inject_disk_failure(self, disk: int) -> None:
        """Fail ``disk`` now, routing through the spare pool if possible."""
        faults = self.controller.faults
        if disk in faults.failed_disks or disk in faults.lost_disks:
            return  # already dead; nothing new fails
        self.disk_failures += 1
        if faults.can_absorb and self.monitor is not None:
            # Within the syndrome budget the pool owns the outcome: it
            # launches a repair while spares remain (concurrently with
            # any sweep already running, on dual-syndrome arrays) and
            # models explicit degraded-forever exhaustion otherwise.
            self.monitor.handle_failure(disk)
        else:
            # A failure beyond the redundancy (or with no monitor): the
            # controller records it, gracefully as data loss when the
            # budget is already spent.
            self.controller.fail_disk(disk)
        if faults.data_lost and not self.data_loss_event.triggered:
            self.data_loss_event.succeed(self.env.now)

    def _repair_completed(self, record) -> None:
        """Synchronous spare-pool callback: one repair fully finished."""
        self.repairs_completed += 1
        if self.log is not None:
            self.log.record(
                REPAIR_COMPLETE,
                self.env.now,
                disk=record.failed_disk,
                detail=f"repair took {record.total_repair_ms:.1f} ms",
            )

    # ------------------------------------------------------------------
    # Fault source processes
    # ------------------------------------------------------------------
    def _lifetime_clock(self, disk: int):
        while not self.data_loss_event.triggered:
            lifetime = self.profile.draw_lifetime_ms(self._lifetime_rng)
            yield self.env.timeout(lifetime)
            faults = self.controller.faults
            if disk in faults.failed_disks or disk in faults.lost_disks:
                # The slot is already dead; this clock now times the
                # replacement spindle's remaining life.
                continue
            self.inject_disk_failure(disk)

    def _latent_arrivals(self):
        addressing = self.controller.addressing
        num_disks = self.controller.layout.num_disks
        per_disk_ms = self.profile.latent_interarrival_ms
        array_mean_ms = per_disk_ms / num_disks
        while not self.data_loss_event.triggered:
            yield self.env.timeout(
                self._latent_rng.expovariate(1.0 / array_mean_ms)
            )
            disk = self._latent_rng.randrange(num_disks)
            offset = self._latent_rng.randrange(addressing.mapped_units_per_disk)
            faults = self.controller.faults
            if disk in faults.failed_disks or disk in faults.lost_disks:
                continue  # errors on a dead spindle are moot
            state = self.controller.disks[disk].fault_state
            if state is None:
                continue
            sector = addressing.unit_to_sector(UnitAddress(disk=disk, offset=offset))
            state.add_latent(sector, addressing.sectors_per_unit)
            if self.log is not None:
                self.log.record(LATENT_ERROR, self.env.now, disk=disk, offset=offset)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector failures={self.disk_failures} "
            f"repairs={self.repairs_completed} data_lost={self.data_lost}>"
        )
