"""The fault flight recorder.

Every injected fault, retry, repair, escalation, and lost stripe is
appended to a :class:`FaultLog` as a :class:`FaultEvent`. The log is
the campaign's single source of truth: data-loss probability, retry
counts, and repair accounting are all reductions over it, and tests
assert against it instead of instrumenting internals.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

# Event kinds. Strings, not an enum, so logs serialize to JSON directly.
DISK_FAILURE = "disk-failure"          # a whole disk died
LATENT_ERROR = "latent-error"          # a latent sector error was planted
TRANSIENT_FAULT = "transient-fault"    # one access timed out transiently
MEDIA_ERROR = "media-error"            # an access hit an unreadable unit
RETRY = "retry"                        # the controller retried an access
RETRY_EXHAUSTED = "retry-exhausted"    # retries gave up on an access
FOREGROUND_REPAIR = "foreground-repair"  # a read rebuilt a latent unit in-line
ESCALATION = "escalation"              # error threshold crossed: disk declared dead
DATA_LOSS = "data-loss"                # a multi-failure lost data (terminal)
DATA_LOSS_ACCESS = "data-loss-access"  # a user request touched lost data
REBUILD_LOST = "rebuild-lost"          # reconstruction surrendered a stripe
REPAIR_COMPLETE = "repair-complete"    # a spare-pool repair finished
SPARES_EXHAUSTED = "spares-exhausted"  # failure with an empty spare pool: disk stays degraded


@dataclass(frozen=True)
class FaultEvent:
    """One recorded fault-related occurrence."""

    at_ms: float
    kind: str
    disk: typing.Optional[int] = None
    stripe: typing.Optional[int] = None
    offset: typing.Optional[int] = None
    detail: str = ""


@dataclass
class FaultLog:
    """Append-only record of everything the fault subsystem did."""

    events: typing.List[FaultEvent] = field(default_factory=list)
    counts: typing.Dict[str, int] = field(default_factory=dict)

    def record(
        self,
        kind: str,
        at_ms: float,
        disk: typing.Optional[int] = None,
        stripe: typing.Optional[int] = None,
        offset: typing.Optional[int] = None,
        detail: str = "",
    ) -> FaultEvent:
        event = FaultEvent(
            at_ms=at_ms, kind=kind, disk=disk, stripe=stripe, offset=offset,
            detail=detail,
        )
        self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        return event

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def of_kind(self, kind: str) -> typing.List[FaultEvent]:
        return [event for event in self.events if event.kind == kind]

    def summary(self) -> typing.Dict[str, int]:
        """Event counts by kind (a JSON-safe copy)."""
        return dict(self.counts)

    def __len__(self) -> int:
        return len(self.events)
