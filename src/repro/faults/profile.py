"""The per-disk stochastic fault description.

A :class:`FaultProfile` is a frozen, JSON-safe value object: it can ride
inside a :class:`~repro.experiments.runner.ScenarioConfig`, hash into
the sweep result cache's content address, and rebuild from a parsed
JSON document. All rates are expressed in the units operators quote
them in (hours, probability per access); conversion to simulated
milliseconds happens here, once.
"""

from __future__ import annotations

import math
import random
import typing
from dataclasses import dataclass

#: Simulated milliseconds per hour (the simulation clock is in ms).
MS_PER_HOUR = 3_600_000.0


@dataclass(frozen=True)
class FaultProfile:
    """How one disk misbehaves.

    Parameters
    ----------
    disk_mttf_hours:
        Mean time to whole-disk failure, in hours of simulated time.
        0 disables lifetime failures.
    lifetime_shape:
        Weibull shape parameter for disk lifetimes. 1.0 (the default)
        is the exponential/constant-hazard model the Markov MTTDL
        approximation assumes; >1 models wear-out, <1 infant mortality.
    latent_errors_per_hour:
        Arrival rate of latent sector errors per disk-hour. Each
        arrival marks one stripe unit of one disk unreadable until the
        unit is rewritten (remap-on-write) or repaired.
    transient_error_prob:
        Probability that any single disk access completes with a
        transient timeout instead of success.
    transient_penalty_ms:
        Simulated time consumed by a transient fault before the error
        is reported (the bus/firmware timeout).
    escalation_threshold:
        Hard errors (media errors and exhausted retry sequences) a
        disk may accumulate before the controller declares the whole
        disk failed.
    seed:
        Master seed for this profile's random streams.
    """

    disk_mttf_hours: float = 0.0
    lifetime_shape: float = 1.0
    latent_errors_per_hour: float = 0.0
    transient_error_prob: float = 0.0
    transient_penalty_ms: float = 5.0
    escalation_threshold: int = 8
    seed: int = 1992

    def __post_init__(self):
        if self.disk_mttf_hours < 0:
            raise ValueError("disk MTTF cannot be negative")
        if self.lifetime_shape <= 0:
            raise ValueError("Weibull shape must be positive")
        if self.latent_errors_per_hour < 0:
            raise ValueError("latent error rate cannot be negative")
        if not 0.0 <= self.transient_error_prob <= 1.0:
            raise ValueError("transient error probability must be in [0, 1]")
        if self.transient_penalty_ms < 0:
            raise ValueError("transient penalty cannot be negative")
        if self.escalation_threshold < 1:
            raise ValueError("escalation threshold must be at least 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True if any stochastic fault source is active."""
        return (
            self.disk_mttf_hours > 0
            or self.latent_errors_per_hour > 0
            or self.transient_error_prob > 0
        )

    @property
    def disk_mttf_ms(self) -> float:
        return self.disk_mttf_hours * MS_PER_HOUR

    @property
    def latent_interarrival_ms(self) -> typing.Optional[float]:
        """Mean ms between latent errors on one disk (None if disabled)."""
        if self.latent_errors_per_hour <= 0:
            return None
        return MS_PER_HOUR / self.latent_errors_per_hour

    def draw_lifetime_ms(self, rng: random.Random) -> float:
        """One disk lifetime in simulated ms.

        The Weibull scale is solved so the distribution's mean equals
        ``disk_mttf_ms`` for any shape; shape 1.0 reduces to the
        exponential distribution.
        """
        if self.disk_mttf_hours <= 0:
            raise ValueError("lifetime draws need a positive disk MTTF")
        shape = self.lifetime_shape
        scale = self.disk_mttf_ms / math.gamma(1.0 + 1.0 / shape)
        return rng.weibullvariate(scale, shape)
