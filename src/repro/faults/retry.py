"""Bounded retry with exponential backoff, in simulated time."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How the controller reacts to a transient I/O fault.

    An access is attempted at most ``1 + max_retries`` times; attempt
    ``n`` (0-based) waits ``base_delay_ms * backoff_factor**n`` of
    simulated time before resubmitting, capped at ``max_delay_ms``.
    Media errors are deterministic (the sector is unreadable until
    rewritten), so they are not retried unless ``retry_media`` is set.
    """

    max_retries: int = 3
    base_delay_ms: float = 0.5
    backoff_factor: float = 2.0
    max_delay_ms: float = 50.0
    retry_media: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.base_delay_ms < 0:
            raise ValueError("base delay cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_delay_ms < self.base_delay_ms:
            raise ValueError("max delay must be >= base delay")

    def delay_ms(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(
            self.base_delay_ms * self.backoff_factor ** attempt, self.max_delay_ms
        )

    def should_retry(self, error: str, attempt: int) -> bool:
        """Whether to retry an access that failed with ``error``."""
        if attempt >= self.max_retries:
            return False
        if error == "media":
            return self.retry_media
        return True
