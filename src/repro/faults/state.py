"""Mutable per-spindle fault state, consulted by the drive.

A :class:`DiskFaultState` attached to a :class:`~repro.disk.drive.Disk`
turns the drive's clean completion into an error model: reads of
latent-error sectors complete with a ``"media"`` error, any access can
complete with a transient ``"timeout"``, and writes repair the latent
sectors they cover (remap-on-write, as real firmware does). The state
also accumulates the *hard* error count the controller uses to escalate
a sick disk to a whole-disk failure.

The state draws from a dedicated :class:`random.Random` stream and only
draws when a fault source is actually configured, so attaching a
quiescent state perturbs nothing.
"""

from __future__ import annotations

import random
import typing

from repro.faults.profile import FaultProfile

#: Error outcomes a disk access can complete with.
ERROR_MEDIA = "media"
ERROR_TIMEOUT = "timeout"


class DiskFaultState:
    """Fault bookkeeping for one physical spindle.

    A replacement disk gets a *fresh* state: latent errors and the hard
    error count belong to the physical drive, not the array slot.
    """

    def __init__(self, profile: FaultProfile, rng: random.Random, disk_id: int = 0):
        self.profile = profile
        self.rng = rng
        self.disk_id = disk_id
        #: Latent-error extents: start sector -> sector count.
        self.latent: typing.Dict[int, int] = {}
        self.hard_errors = 0
        self.media_faults = 0
        self.transient_faults = 0

    # ------------------------------------------------------------------
    # Latent sector errors
    # ------------------------------------------------------------------
    def add_latent(self, start_sector: int, sector_count: int = 1) -> None:
        """Mark ``sector_count`` sectors from ``start_sector`` unreadable."""
        if sector_count < 1:
            raise ValueError("a latent extent covers at least one sector")
        self.latent[start_sector] = max(self.latent.get(start_sector, 0), sector_count)

    def has_latent_overlap(self, start_sector: int, sector_count: int) -> bool:
        end = start_sector + sector_count
        for latent_start, latent_count in self.latent.items():
            if latent_start < end and start_sector < latent_start + latent_count:
                return True
        return False

    def clear_latent_overlap(self, start_sector: int, sector_count: int) -> int:
        """Drop latent extents a write covers; returns how many cleared."""
        end = start_sector + sector_count
        cleared = [
            latent_start
            for latent_start, latent_count in self.latent.items()
            if latent_start < end and start_sector < latent_start + latent_count
        ]
        for latent_start in cleared:
            del self.latent[latent_start]
        return len(cleared)

    @property
    def latent_extents(self) -> int:
        return len(self.latent)

    # ------------------------------------------------------------------
    # Access outcome
    # ------------------------------------------------------------------
    def outcome_for(self, start_sector: int, sector_count: int,
                    is_write: bool) -> typing.Tuple[typing.Optional[str], float]:
        """(error, extra service ms) for one access, advancing the state.

        Writes repair the latent sectors they cover even when the
        access itself then times out transiently — the media was
        written before the completion was lost.
        """
        if is_write and self.latent:
            self.clear_latent_overlap(start_sector, sector_count)
        if self.profile.transient_error_prob > 0:
            if self.rng.random() < self.profile.transient_error_prob:
                self.transient_faults += 1
                return ERROR_TIMEOUT, self.profile.transient_penalty_ms
        if not is_write and self.latent:
            if self.has_latent_overlap(start_sector, sector_count):
                self.media_faults += 1
                return ERROR_MEDIA, 0.0
        return None, 0.0

    def __repr__(self) -> str:
        return (
            f"<DiskFaultState disk={self.disk_id} latent={len(self.latent)} "
            f"hard_errors={self.hard_errors}>"
        )
