"""Parity layouts: mapping parity stripes onto an array of disks.

A layout answers two questions for an array of ``C`` disks with parity
stripes of ``G`` units (``G - 1`` data units plus one parity unit):

- *forward*: where do stripe ``s``'s data unit ``j`` and parity unit
  live, as ``(disk, offset)`` pairs; and
- *inverse*: given ``(disk, offset)``, which stripe and role is that
  unit.

Two layouts are provided: the left-symmetric RAID 5 layout (Figure 2-1
of the paper; the special case ``G = C``) and the block-design-based
declustered layout (Section 4, Figures 2-3 and 4-2). Both are built
as lookup tables that tile down the disks, and both are scored by the
executable layout criteria in :mod:`repro.layout.criteria`.
"""

from repro.layout.base import PARITY_ROLE, Q_ROLE, LayoutError, ParityLayout, UnitAddress
from repro.layout.declustered import DeclusteredLayout, build_full_table
from repro.layout.dual import (
    CyclicDualRaid6Layout,
    DualDeclusteredLayout,
    build_dual_full_table,
)
from repro.layout.raid5 import LeftSymmetricRaid5Layout
from repro.layout.reddy import ReddyTwoGroupLayout
from repro.layout.criteria import CriterionReport, evaluate_layout

__all__ = [
    "CriterionReport",
    "CyclicDualRaid6Layout",
    "DeclusteredLayout",
    "DualDeclusteredLayout",
    "LayoutError",
    "LeftSymmetricRaid5Layout",
    "PARITY_ROLE",
    "ParityLayout",
    "Q_ROLE",
    "ReddyTwoGroupLayout",
    "UnitAddress",
    "build_dual_full_table",
    "build_full_table",
    "evaluate_layout",
]
