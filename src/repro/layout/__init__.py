"""Parity layouts: mapping parity stripes onto an array of disks.

A layout answers two questions for an array of ``C`` disks with parity
stripes of ``G`` units (``G - 1`` data units plus one parity unit):

- *forward*: where do stripe ``s``'s data unit ``j`` and parity unit
  live, as ``(disk, offset)`` pairs; and
- *inverse*: given ``(disk, offset)``, which stripe and role is that
  unit.

Two families implement the :class:`~repro.layout.base.ParityLayout`
contract. The table-based family materializes its period as a lookup
table tiled down the disks: the left-symmetric RAID 5 layout (Figure
2-1 of the paper; the special case ``G = C``) and the block-design
declustered layout (Section 4, Figures 2-3 and 4-2). The arithmetic
family (:mod:`repro.layout.arithmetic`) computes every mapping in O(1)
integer arithmetic with no table at all, which is what makes C=1000+
arrays practical. All layouts are scored by the executable layout
criteria in :mod:`repro.layout.criteria` — exhaustively for small
arrays, by seeded sampling for large ones.
"""

from repro.layout.base import (
    PARITY_ROLE,
    Q_ROLE,
    LayoutError,
    ParityLayout,
    TableParityLayout,
    UnitAddress,
)
from repro.layout.declustered import DeclusteredLayout, build_full_table
from repro.layout.dual import (
    CyclicDualRaid6Layout,
    DualDeclusteredLayout,
    build_dual_full_table,
)
from repro.layout.raid5 import LeftSymmetricRaid5Layout
from repro.layout.reddy import ReddyTwoGroupLayout
from repro.layout.arithmetic import (
    ArithmeticLayout,
    CyclicArithmeticLayout,
    PermutationStripingLayout,
)
from repro.layout.criteria import (
    SAMPLING_THRESHOLD_DISKS,
    CriterionReport,
    SamplePlan,
    evaluate_layout,
    sample_plan,
)

__all__ = [
    "ArithmeticLayout",
    "CriterionReport",
    "CyclicArithmeticLayout",
    "CyclicDualRaid6Layout",
    "DeclusteredLayout",
    "DualDeclusteredLayout",
    "LayoutError",
    "LeftSymmetricRaid5Layout",
    "PARITY_ROLE",
    "ParityLayout",
    "PermutationStripingLayout",
    "Q_ROLE",
    "ReddyTwoGroupLayout",
    "SAMPLING_THRESHOLD_DISKS",
    "SamplePlan",
    "TableParityLayout",
    "UnitAddress",
    "build_dual_full_table",
    "build_full_table",
    "evaluate_layout",
    "sample_plan",
]
