"""Table-free parity layouts: every mapping is O(1) integer arithmetic.

The paper materializes its layouts as tables, which caps the array
width it can evaluate at C=21 — a full table for C=1009, G=10 would
hold millions of slots. The two layouts here compute
``logical_to_physical`` / ``physical_to_logical`` / ``stripe_unit``
directly from the block number, PRIME/RELPR-style, so a 1000-disk
array maps any unit with zero table allocation:

- :class:`PermutationStripingLayout` — permutation striping on a prime
  array width. One period makes ``C-1`` *rotations*; rotation ``j``
  scatters the ``C`` stripes laid end to end by the multiplicative
  permutation ``index -> j * index (mod C)``. Because ``j`` runs over
  every nonzero residue, each disk pair co-occurs in a stripe equally
  often over the period — the distributed-reconstruction criterion
  holds exactly (the multiset of index gaps is the same for every
  pair), without any block design.
- :class:`CyclicArithmeticLayout` — the arithmetic twin of developing
  a cyclic difference family (:mod:`repro.designs.difference`): tuple
  ``i`` of the design is a base block shifted by ``i mod v``, so
  membership, parity position, and the greedy per-disk offsets of
  ``build_full_table`` are all recomputable from ``i`` in O(G). It is
  slot-for-slot identical to
  ``DeclusteredLayout(cyclic_design(base_blocks, v))`` — the property
  tests hold the two implementations together — while storing only
  the base blocks.

Both support single and dual (P+Q) syndromes with the same rotating
check-slot convention as the table builders. Only the "stripe" data
mapping is available: the row-major mapping is defined by an explicit
index over a materialized table, which is exactly what these layouts
exist to avoid.
"""

from __future__ import annotations

import typing

from repro.designs.design import DesignError
from repro.designs.difference import BaseBlock, difference_family_lambda
from repro.designs.families import is_prime
from repro.layout.base import LayoutError, ParityLayout, UnitAddress


class ArithmeticLayout(ParityLayout):
    """Base for layouts whose period exists only as formulas.

    Subclasses implement ``_period_unit`` / ``_period_slot`` with pure
    integer arithmetic; nothing here or below allocates per-slot state,
    so translation memory is O(C) worst case (precomputed modular
    inverses) regardless of period size.
    """

    def __init__(
        self,
        num_disks: int,
        stripe_size: int,
        name: str = "",
        data_mapping: str = "stripe",
        num_syndromes: int = 1,
    ):
        if data_mapping != "stripe":
            raise LayoutError(
                "arithmetic layouts support only the 'stripe' data mapping; "
                "'row-major' is an explicit index over a materialized table"
            )
        super().__init__(
            num_disks,
            stripe_size,
            name=name,
            data_mapping=data_mapping,
            num_syndromes=num_syndromes,
        )

    @property
    def mapping_table_units(self) -> int:
        """Arithmetic layouts materialize no table slots."""
        return 0


class PermutationStripingLayout(ArithmeticLayout):
    """Permutation striping over a prime number of disks.

    One period is ``C-1`` rotations. Within rotation ``j`` (``1 <= j <=
    C-1``), lay the ``C`` stripes of ``G`` units end to end as indices
    ``i = s*G + u`` and place index ``i`` on disk ``j*i mod C``; the
    disk's units fill its next ``G`` offsets in index order. Check
    slots use fixed element positions (parity at ``u = G-1``, Q at
    ``u = G-2``): since ``s -> j*(s*G + u) mod C`` is a bijection for
    any fixed ``u`` (``gcd(jG, C) = 1``), every disk holds exactly one
    parity (and one Q) unit per rotation — criterion 3 holds exactly
    with no rotation of duplications needed.

    Requires ``C`` prime and ``G < C`` (at ``G == C`` every stripe of a
    rotation parks its parity on the same disk; that case is RAID 5 /
    cyclic RAID 6 anyway).
    """

    def __init__(
        self,
        num_disks: int,
        stripe_size: int,
        num_syndromes: int = 1,
        name: str = "",
    ):
        if not is_prime(num_disks):
            raise LayoutError(
                f"permutation striping needs a prime array width, got C={num_disks}"
            )
        if stripe_size >= num_disks:
            raise LayoutError(
                f"permutation striping needs G < C, got G={stripe_size} on "
                f"C={num_disks}; use the RAID 5 / cyclic RAID 6 layouts at G == C"
            )
        super().__init__(
            num_disks,
            stripe_size,
            name=name or f"perm-prime-{num_disks}-{stripe_size}",
            num_syndromes=num_syndromes,
        )
        c = num_disks
        self._stripes_per_table = c * (c - 1)
        self.table_depth = stripe_size * (c - 1)
        #: Modular inverses of the rotation multipliers, ``_inverses[j]
        #: = j^-1 mod C`` — O(C) once, so the inverse mapping stays
        #: divisionless per call.
        self._inverses = [0] + [pow(j, -1, c) for j in range(1, c)]

    def _period_unit(self, s: int, pos: int) -> UnitAddress:
        c = self.num_disks
        g = self.stripe_size
        rotation, stripe_in_rotation = divmod(s, c)
        index = stripe_in_rotation * g + pos
        return UnitAddress(
            disk=((rotation + 1) * index) % c,
            offset=rotation * g + index // c,
        )

    def _period_slot(self, disk: int, table_offset: int) -> typing.Tuple[int, int]:
        c = self.num_disks
        g = self.stripe_size
        rotation, occurrence = divmod(table_offset, g)
        # disk = j*index mod C, and the disk's occurrences within a
        # rotation are index residues index0, index0+C, ... in order.
        index = (disk * self._inverses[rotation + 1]) % c + occurrence * c
        stripe_in_rotation, pos = divmod(index, g)
        return rotation * c + stripe_in_rotation, self._role_of_pos(pos)


class CyclicArithmeticLayout(ArithmeticLayout):
    """Arithmetic development of a full-orbit cyclic difference family.

    ``base_blocks`` (``m`` blocks of ``k`` residues mod ``v``) define
    the same design ``repro.designs.difference.cyclic_design`` would
    develop: tuple ``(block_i, shift)`` is block ``block_i`` plus
    ``shift``, ordered block-major then shift. One period makes ``G``
    duplications of the ``b = m*v`` tuples, rotating the check
    positions exactly like ``build_full_table`` /
    ``build_dual_full_table`` (P at element ``G-1-dup``, Q at
    ``G-2-dup``), and the greedy lowest-free-offset assignment is
    closed-form: disk ``d`` appears in block ``block_i`` exactly once
    per element, at shift ``(d - element) mod v``, so its offset is
    ``dup*m*k + block_i*k + rank`` where ``rank`` counts this block's
    earlier shifts containing ``d``.

    ``validate=True`` (default) verifies difference-family balance in
    O(m·k²) — the streamed equivalent of validating the developed
    BIBD, so an unbalanced family cannot silently break the
    distributed-reconstruction guarantee.
    """

    def __init__(
        self,
        base_blocks: typing.Sequence[typing.Sequence[int]],
        modulus: int,
        num_syndromes: int = 1,
        name: str = "",
        validate: bool = True,
    ):
        blocks = tuple(
            tuple(int(e) % modulus for e in block) for block in base_blocks
        )
        if not blocks:
            raise LayoutError("cyclic layout needs at least one base block")
        sizes = {len(block) for block in blocks}
        if len(sizes) != 1:
            raise LayoutError(f"base blocks must share one size, got {sorted(sizes)}")
        k = sizes.pop()
        if k == modulus:
            raise LayoutError(
                "G == C is RAID 5 / cyclic RAID 6; use those layouts instead"
            )
        if validate:
            try:
                difference_family_lambda(
                    [BaseBlock(elements=block) for block in blocks], modulus
                )
            except DesignError as error:
                raise LayoutError(f"invalid difference family: {error}") from error
        super().__init__(
            modulus,
            k,
            name=name or f"cyclic-arith-{modulus}-{k}",
            num_syndromes=num_syndromes,
        )
        self._blocks = blocks
        m = len(blocks)
        self._num_blocks = m
        self._tuples_per_dup = m * modulus
        self._units_per_disk_per_dup = m * k
        self._stripes_per_table = k * m * modulus
        self.table_depth = k * m * k

    # ------------------------------------------------------------------
    # Check-position rotation (shared with the table builders)
    # ------------------------------------------------------------------
    def _special_positions(self, dup: int) -> typing.Tuple[int, ...]:
        """Element positions of the check units in duplication ``dup``."""
        g = self.stripe_size
        parity_position = (g - 1 - dup) % g
        if self.num_syndromes == 1:
            return (parity_position,)
        return (parity_position, (g - 2 - dup) % g)

    def _element_of_pos(self, dup: int, pos: int) -> int:
        """Element position of table-row position ``pos`` in ``dup``."""
        specials = self._special_positions(dup)
        if pos == self.stripe_size - 1:
            return specials[0]
        if self.num_syndromes == 2 and pos == self.stripe_size - 2:
            return specials[1]
        element = pos
        for special in sorted(specials):
            if element >= special:
                element += 1
        return element

    def _pos_of_element(self, dup: int, element: int) -> int:
        """Table-row position of element position ``element`` in ``dup``."""
        specials = self._special_positions(dup)
        if element == specials[0]:
            return self.stripe_size - 1
        if self.num_syndromes == 2 and element == specials[1]:
            return self.stripe_size - 2
        return element - sum(1 for special in specials if special < element)

    # ------------------------------------------------------------------
    # Period-local primitives
    # ------------------------------------------------------------------
    def _period_unit(self, s: int, pos: int) -> UnitAddress:
        v = self.num_disks
        k = self.stripe_size
        dup, tuple_index = divmod(s, self._tuples_per_dup)
        block_index, shift = divmod(tuple_index, v)
        block = self._blocks[block_index]
        disk = (block[self._element_of_pos(dup, pos)] + shift) % v
        # Greedy offsets, closed form: earlier duplications and earlier
        # blocks contribute fixed counts; within this block's orbit, the
        # disk appeared once per earlier shift containing it.
        rank = sum(1 for element in block if (disk - element) % v < shift)
        return UnitAddress(
            disk=disk,
            offset=dup * self._units_per_disk_per_dup + block_index * k + rank,
        )

    def _period_slot(self, disk: int, table_offset: int) -> typing.Tuple[int, int]:
        v = self.num_disks
        k = self.stripe_size
        dup, rest = divmod(table_offset, self._units_per_disk_per_dup)
        block_index, rank = divmod(rest, k)
        block = self._blocks[block_index]
        # The disk's k appearances in this block's orbit, by shift.
        shift = sorted((disk - element) % v for element in block)[rank]
        element_position = block.index((disk - shift) % v)
        stripe = dup * self._tuples_per_dup + block_index * v + shift
        return stripe, self._role_of_pos(
            self._pos_of_element(dup, element_position)
        )
