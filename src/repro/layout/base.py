"""The layout interface, split into mapping contract and table backend.

Every layout in this project is periodic: one *full table*'s worth of
stripes covers a ``C x table_depth`` rectangle of ``(disk, offset)``
slots, and the whole disk is covered by tiling that period down the
disks. :class:`ParityLayout` is the mapping contract — tiling,
forward/inverse unit mapping, and the data mapping (logical data unit
→ physical slot) used by the striping driver — expressed over two
period-local primitives subclasses provide:

- ``_period_unit(s, pos)``   — slot of unit ``pos`` of table stripe ``s``;
- ``_period_slot(disk, off)`` — ``(table stripe, role)`` at a table slot.

:class:`TableParityLayout` is the paper's implementation: the period is
materialized as an explicit table (``G * b`` stripes occupying ``G * r``
units per disk for the declustered layout; ``C`` stripes of depth ``C``
for RAID 5). :mod:`repro.layout.arithmetic` provides the table-free
implementations where both primitives are pure integer arithmetic, which
is what makes C=1000+ arrays practical.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

#: Role index used for the parity unit of a stripe. Data units use their
#: position 0..G-2 within the stripe.
PARITY_ROLE = -1

#: Role index of the second (Q) syndrome unit in dual-syndrome layouts.
#: Data units of a dual stripe use positions 0..G-3.
Q_ROLE = -2


class LayoutError(ValueError):
    """Raised for malformed layout tables or out-of-range addresses."""


@dataclass(frozen=True, order=True)
class UnitAddress:
    """A physical stripe-unit slot: ``offset``-th unit of ``disk``."""

    disk: int
    offset: int


class ParityLayout:
    """A periodic parity layout over ``C`` disks with stripes of ``G`` units.

    This base class implements tiling, forward/inverse unit mapping, and
    the data mapping (logical data unit → physical slot) used by the
    striping driver, all in terms of the period-local primitives
    ``_period_unit`` / ``_period_slot``. Subclasses provide those
    primitives and must set ``_stripes_per_table`` and ``table_depth``
    during construction. The default data mapping is "by parity stripe
    index" (Table 5-1): logical data units fill successive data
    positions of successive parity stripes, which satisfies the
    large-write-optimization criterion.

    Parameters
    ----------
    num_disks:
        ``C``.
    stripe_size:
        ``G``, counting the parity unit.
    name:
        Human-readable layout label.
    data_mapping:
        How logical data units are ordered onto the period's data slots:

        - ``"stripe"`` (default, the paper's Table 5-1 choice): logical
          units fill successive data positions of successive parity
          stripes. Satisfies the large-write optimization (criterion 5)
          but not maximal parallelism (criterion 6).
        - ``"row-major"``: logical units fill data slots offset row by
          offset row across the disks. Since each row holds one unit
          per disk, consecutive logical units land on distinct disks —
          recovering most of criterion 6 at the cost of criterion 5.
          This explores the open trade-off of Section 4.2. Only
          table-based layouts support it (the order is an explicit
          index over the materialized table).
    num_syndromes:
        Check units per stripe: 1 (parity only, the paper's code) or
        2 (P+Q, tolerating any two failures; see
        :mod:`repro.array.syndromes`).
    """

    #: Set by subclasses during construction.
    table_depth: int
    _stripes_per_table: int

    def __init__(
        self,
        num_disks: int,
        stripe_size: int,
        name: str = "",
        data_mapping: str = "stripe",
        num_syndromes: int = 1,
    ):
        if num_syndromes not in (1, 2):
            raise LayoutError(f"num_syndromes must be 1 or 2, got {num_syndromes}")
        # num_syndromes >= 1 makes this check subsume any ``G < 2``
        # guard: G=1 is rejected here with the usable diagnostic.
        if stripe_size < num_syndromes + 1:
            raise LayoutError(
                f"stripe size {stripe_size} leaves no data units beside "
                f"{num_syndromes} syndrome unit(s)"
            )
        if stripe_size > num_disks:
            raise LayoutError(
                f"stripe size {stripe_size} exceeds array width {num_disks}"
            )
        if data_mapping not in ("stripe", "row-major"):
            raise LayoutError(
                f"unknown data mapping {data_mapping!r}; use 'stripe' or 'row-major'"
            )
        self.num_disks = num_disks
        self.stripe_size = stripe_size
        self.num_syndromes = num_syndromes
        self.name = name or type(self).__name__
        self.data_mapping = data_mapping
        self._data_units_per_stripe = stripe_size - num_syndromes

    # ------------------------------------------------------------------
    # Period-local primitives (the subclass contract)
    # ------------------------------------------------------------------
    def _period_unit(self, s: int, pos: int) -> UnitAddress:
        """Slot of unit ``pos`` of table stripe ``s`` (both period-local)."""
        raise NotImplementedError

    def _period_slot(self, disk: int, table_offset: int) -> typing.Tuple[int, int]:
        """``(table stripe, role)`` of the slot at ``(disk, table_offset)``."""
        raise NotImplementedError

    def _role_of_pos(self, pos: int) -> int:
        if pos == self.stripe_size - 1:
            return PARITY_ROLE
        if self.num_syndromes == 2 and pos == self.stripe_size - 2:
            return Q_ROLE
        return pos

    # ------------------------------------------------------------------
    # Basic parameters
    # ------------------------------------------------------------------
    @property
    def stripes_per_table(self) -> int:
        """Stripes in one full table (the layout's period)."""
        return self._stripes_per_table

    @property
    def data_units_per_stripe(self) -> int:
        """``G - num_syndromes``."""
        return self._data_units_per_stripe

    @property
    def syndrome_roles(self) -> typing.Tuple[int, ...]:
        """The check-unit roles: ``(PARITY_ROLE,)`` or ``(PARITY_ROLE, Q_ROLE)``."""
        return (PARITY_ROLE, Q_ROLE)[: self.num_syndromes]

    @property
    def mapping_table_units(self) -> int:
        """Slots the implementation materializes to translate addresses.

        The full table for table-based layouts; zero for arithmetic
        layouts, whose period exists only as formulas. This is the
        quantity layout criterion 4 (efficient mapping) bounds.
        """
        return self.stripes_per_table * self.stripe_size

    def declustering_ratio(self) -> float:
        """``alpha = (G-1)/(C-1)`` — 1.0 for RAID 5."""
        return (self.stripe_size - 1) / (self.num_disks - 1)

    def parity_overhead(self) -> float:
        """Fraction of disk space consumed by check units, ``num_syndromes/G``."""
        return self.num_syndromes / self.stripe_size

    # ------------------------------------------------------------------
    # Forward mapping
    # ------------------------------------------------------------------
    def stripe_unit(self, stripe: int, role: int) -> UnitAddress:
        """Physical slot of stripe ``stripe``'s unit with role ``role``.

        ``role`` is a data position, :data:`PARITY_ROLE`, or (in dual-
        syndrome layouts) :data:`Q_ROLE`.
        """
        if role == PARITY_ROLE:
            pos = self.stripe_size - 1
        elif role == Q_ROLE:
            if self.num_syndromes < 2:
                raise LayoutError("layout has no Q syndrome")
            pos = self.stripe_size - 2
        else:
            pos = role
        if not 0 <= pos < self.stripe_size or role >= self._data_units_per_stripe:
            raise LayoutError(f"role {role} invalid for stripe size {self.stripe_size}")
        iteration, s = divmod(stripe, self._stripes_per_table)
        base = self._period_unit(s, pos)
        if iteration == 0:
            return base
        return UnitAddress(base.disk, base.offset + iteration * self.table_depth)

    def parity_unit(self, stripe: int) -> UnitAddress:
        """Physical slot of stripe ``stripe``'s parity unit."""
        return self.stripe_unit(stripe, PARITY_ROLE)

    def q_unit(self, stripe: int) -> UnitAddress:
        """Physical slot of stripe ``stripe``'s Q syndrome unit."""
        return self.stripe_unit(stripe, Q_ROLE)

    def data_unit(self, stripe: int, j: int) -> UnitAddress:
        """Physical slot of stripe ``stripe``'s ``j``-th data unit."""
        if not 0 <= j < self._data_units_per_stripe:
            raise LayoutError(f"data index {j} outside 0..{self._data_units_per_stripe - 1}")
        return self.stripe_unit(stripe, j)

    def stripe_units(self, stripe: int) -> typing.List[UnitAddress]:
        """All ``G`` slots of a stripe: data units in order, then check units.

        Check units follow :attr:`syndrome_roles` order — parity, then
        (in dual-syndrome layouts) Q.
        """
        units = [self.stripe_unit(stripe, j) for j in range(self.data_units_per_stripe)]
        units.append(self.parity_unit(stripe))
        if self.num_syndromes == 2:
            units.append(self.q_unit(stripe))
        return units

    # ------------------------------------------------------------------
    # Inverse mapping
    # ------------------------------------------------------------------
    def stripe_of(self, disk: int, offset: int) -> typing.Tuple[int, int]:
        """``(stripe, role)`` of the unit at ``(disk, offset)``."""
        if not 0 <= disk < self.num_disks:
            raise LayoutError(f"disk {disk} outside array of {self.num_disks}")
        if offset < 0:
            raise LayoutError(f"negative offset {offset}")
        iteration, table_offset = divmod(offset, self.table_depth)
        s, role = self._period_slot(disk, table_offset)
        return iteration * self.stripes_per_table + s, role

    # ------------------------------------------------------------------
    # Data mapping (logical data unit numbering)
    # ------------------------------------------------------------------
    @property
    def data_units_per_table(self) -> int:
        """Data slots in one full table."""
        return self.stripes_per_table * self.data_units_per_stripe

    @property
    def supports_large_write(self) -> bool:
        """True when aligned logical windows coincide with parity stripes."""
        return self.data_mapping == "stripe"

    def logical_to_physical(self, logical_unit: int) -> UnitAddress:
        """Physical slot of logical data unit ``logical_unit``."""
        if logical_unit < 0:
            raise LayoutError(f"negative logical unit {logical_unit}")
        stripe, j = divmod(logical_unit, self._data_units_per_stripe)
        return self.stripe_unit(stripe, j)

    def physical_to_logical(self, disk: int, offset: int) -> typing.Optional[int]:
        """Logical data unit at ``(disk, offset)``, or None for check units."""
        stripe, role = self.stripe_of(disk, offset)
        if role < 0:
            return None
        return stripe * self.data_units_per_stripe + role

    def stripe_of_logical(self, logical_unit: int) -> int:
        """The parity stripe containing logical data unit ``logical_unit``."""
        if self.data_mapping == "stripe":
            return logical_unit // self._data_units_per_stripe
        address = self.logical_to_physical(logical_unit)
        return self.stripe_of(address.disk, address.offset)[0]

    # ------------------------------------------------------------------
    # Rendering (for docs, tests, and the layout explorer example)
    # ------------------------------------------------------------------
    def render_table(self, depth: typing.Optional[int] = None) -> str:
        """ASCII rendering in the style of the paper's Figures 2-1/2-3."""
        depth = self.table_depth if depth is None else depth
        header = "Offset | " + " ".join(f"DISK{d:<3d}" for d in range(self.num_disks))
        lines = [header, "-" * len(header)]
        for offset in range(depth):
            cells = []
            for disk in range(self.num_disks):
                stripe, role = self.stripe_of(disk, offset)
                if role == PARITY_ROLE:
                    cells.append(f"P{stripe:<6d}")
                elif role == Q_ROLE:
                    cells.append(f"Q{stripe:<6d}")
                else:
                    cells.append(f"D{stripe}.{role:<4d}")
            lines.append(f"{offset:6d} | " + " ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} C={self.num_disks} G={self.stripe_size} "
            f"alpha={self.declustering_ratio():.3f} table={self.stripes_per_table}x"
            f"{self.table_depth}>"
        )


class TableParityLayout(ParityLayout):
    """A parity layout whose period is a materialized table.

    Parameters are those of :class:`ParityLayout` plus:

    table:
        One full table: a sequence of stripes, each a sequence of ``G``
        :class:`UnitAddress` where index ``G-1`` is the **parity** slot
        and indices ``0..G-2`` are data slots in order. Dual-syndrome
        layouts (``num_syndromes=2``) additionally reserve index
        ``G-2`` for the **Q** slot, leaving ``0..G-3`` for data.
    """

    def __init__(
        self,
        num_disks: int,
        stripe_size: int,
        table: typing.Sequence[typing.Sequence[UnitAddress]],
        name: str = "",
        data_mapping: str = "stripe",
        num_syndromes: int = 1,
    ):
        super().__init__(
            num_disks,
            stripe_size,
            name=name,
            data_mapping=data_mapping,
            num_syndromes=num_syndromes,
        )
        self._table = [list(stripe) for stripe in table]
        self._stripes_per_table = len(self._table)
        self._check_and_index_table()
        #: Memo for :meth:`logical_to_physical`, keyed on the
        #: *within-table* logical unit so the key space is capped by the
        #: table itself (``data_units_per_table`` entries) no matter how
        #: many table iterations deep a scan goes. Addresses are
        #: immutable, so sharing the period-local slot and shifting the
        #: offset per iteration is safe.
        self._l2p_period_cache: typing.Dict[int, UnitAddress] = {}
        if data_mapping == "row-major":
            self._build_row_major_order()

    # ------------------------------------------------------------------
    # Construction-time checks
    # ------------------------------------------------------------------
    def _check_and_index_table(self) -> None:
        """Verify the table is a bijection onto a C x depth rectangle."""
        if not self._table:
            raise LayoutError("layout table is empty")
        per_disk_used: typing.List[typing.Set[int]] = [set() for _ in range(self.num_disks)]
        for s, stripe in enumerate(self._table):
            if len(stripe) != self.stripe_size:
                raise LayoutError(
                    f"stripe {s} has {len(stripe)} units, expected {self.stripe_size}"
                )
            for unit in stripe:
                if not 0 <= unit.disk < self.num_disks:
                    raise LayoutError(f"stripe {s} uses disk {unit.disk} outside array")
                if unit.offset in per_disk_used[unit.disk]:
                    raise LayoutError(
                        f"slot disk={unit.disk} offset={unit.offset} assigned twice"
                    )
                per_disk_used[unit.disk].add(unit.offset)
        depths = {max(used) + 1 if used else 0 for used in per_disk_used}
        counts = {len(used) for used in per_disk_used}
        if len(depths) != 1 or len(counts) != 1 or depths != counts:
            raise LayoutError(
                f"table does not tile: per-disk depths {sorted(depths)}, "
                f"unit counts {sorted(counts)} — every disk must hold the "
                "same, gap-free number of units"
            )
        self.table_depth = depths.pop()
        # Inverse index: (disk, offset-in-table) -> (stripe-in-table, role).
        self._inverse: typing.List[typing.List[typing.Tuple[int, int]]] = [
            [(-1, 0)] * self.table_depth for _ in range(self.num_disks)
        ]
        for s, stripe in enumerate(self._table):
            for pos, unit in enumerate(stripe):
                self._inverse[unit.disk][unit.offset] = (s, self._role_of_pos(pos))

    # ------------------------------------------------------------------
    # Period-local primitives
    # ------------------------------------------------------------------
    def _period_unit(self, s: int, pos: int) -> UnitAddress:
        return self._table[s][pos]

    def _period_slot(self, disk: int, table_offset: int) -> typing.Tuple[int, int]:
        return self._inverse[disk][table_offset]

    # ------------------------------------------------------------------
    # Data mapping
    # ------------------------------------------------------------------
    def _build_row_major_order(self) -> None:
        """Index data slots row by row for the row-major data mapping."""
        order: typing.List[UnitAddress] = []
        for offset in range(self.table_depth):
            for disk in range(self.num_disks):
                _stripe, role = self._inverse[disk][offset]
                if role >= 0:
                    order.append(UnitAddress(disk, offset))
        self._row_major_order = order
        self._row_major_index = {
            (slot.disk, slot.offset): i for i, slot in enumerate(order)
        }

    def logical_to_physical(self, logical_unit: int) -> UnitAddress:
        """Physical slot of logical data unit ``logical_unit``.

        One bounded dict probe replaces the divmod plus table hop on the
        striping driver's single hottest translation.
        """
        if logical_unit < 0:
            raise LayoutError(f"negative logical unit {logical_unit}")
        iteration, within = divmod(logical_unit, self.data_units_per_table)
        base = self._l2p_period_cache.get(within)
        if base is None:
            if self.data_mapping == "stripe":
                s, j = divmod(within, self._data_units_per_stripe)
                base = self._table[s][j]
            else:
                base = self._row_major_order[within]
            self._l2p_period_cache[within] = base
        if iteration == 0:
            return base
        return UnitAddress(base.disk, base.offset + iteration * self.table_depth)

    def physical_to_logical(self, disk: int, offset: int) -> typing.Optional[int]:
        """Logical data unit at ``(disk, offset)``, or None for check units."""
        if self.data_mapping == "stripe":
            return super().physical_to_logical(disk, offset)
        stripe, role = self.stripe_of(disk, offset)
        if role < 0:
            return None
        iteration, table_offset = divmod(offset, self.table_depth)
        within = self._row_major_index[(disk, table_offset)]
        return iteration * self.data_units_per_table + within
