"""Executable versions of the paper's six layout-goodness criteria.

Section 4.1 lists six criteria for a parity layout. The first four are
properties of the parity mapping alone; the last two involve the data
mapping. Each check below inspects one full table of a layout (the
layout is periodic, so the table is sufficient) and returns a
:class:`CriterionReport` with pass/fail plus the measured evidence.
"""

from __future__ import annotations

import itertools
import typing
from dataclasses import dataclass, field

from repro.layout.base import ParityLayout


@dataclass
class CriterionReport:
    """Outcome of one layout criterion check."""

    name: str
    passed: bool
    detail: str
    metrics: typing.Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def _table_stripes(layout: ParityLayout) -> range:
    return range(layout.stripes_per_table)


def check_single_failure_correcting(layout: ParityLayout) -> CriterionReport:
    """Criterion 1: no two units of a stripe share a disk."""
    for s in _table_stripes(layout):
        disks = [u.disk for u in layout.stripe_units(s)]
        if len(set(disks)) != len(disks):
            return CriterionReport(
                name="single-failure-correcting",
                passed=False,
                detail=f"stripe {s} places two units on one disk ({disks})",
            )
    return CriterionReport(
        name="single-failure-correcting",
        passed=True,
        detail=f"all {layout.stripes_per_table} table stripes use distinct disks",
    )


def reconstruction_load_matrix(layout: ParityLayout) -> typing.List[typing.List[int]]:
    """``m[f][d]``: units disk ``d`` reads per table to rebuild disk ``f``."""
    c = layout.num_disks
    matrix = [[0] * c for _ in range(c)]
    for s in _table_stripes(layout):
        disks = [u.disk for u in layout.stripe_units(s)]
        for failed in disks:
            for survivor in disks:
                if survivor != failed:
                    matrix[failed][survivor] += 1
    return matrix


def check_distributed_reconstruction(layout: ParityLayout) -> CriterionReport:
    """Criterion 2: reconstruction work is uniform over surviving disks.

    For every possible failed disk, every surviving disk must contribute
    the same number of units per table. For a BIBD layout this constant
    is ``lam * G`` per full table.
    """
    matrix = reconstruction_load_matrix(layout)
    loads = set()
    for failed, row in enumerate(matrix):
        for survivor, load in enumerate(row):
            if survivor != failed:
                loads.add(load)
    if len(loads) == 1:
        load = loads.pop()
        return CriterionReport(
            name="distributed-reconstruction",
            passed=True,
            detail=f"every survivor reads exactly {load} units per table for any failure",
            metrics={"units_per_survivor_per_table": load},
        )
    return CriterionReport(
        name="distributed-reconstruction",
        passed=False,
        detail=f"survivor loads vary across pairs: {sorted(loads)}",
        metrics={"min_load": min(loads), "max_load": max(loads)},
    )


def parity_units_per_disk(layout: ParityLayout) -> typing.List[int]:
    """Parity units each disk holds in one full table."""
    counts = [0] * layout.num_disks
    for s in _table_stripes(layout):
        counts[layout.parity_unit(s).disk] += 1
    return counts


def check_distributed_parity(layout: ParityLayout) -> CriterionReport:
    """Criterion 3: parity units are spread evenly over the disks."""
    counts = parity_units_per_disk(layout)
    if len(set(counts)) == 1:
        return CriterionReport(
            name="distributed-parity",
            passed=True,
            detail=f"every disk holds {counts[0]} parity units per table",
            metrics={"parity_units_per_disk": counts[0]},
        )
    return CriterionReport(
        name="distributed-parity",
        passed=False,
        detail=f"parity counts per disk vary: min={min(counts)}, max={max(counts)}",
        metrics={"min": min(counts), "max": max(counts)},
    )


def check_efficient_mapping(
    layout: ParityLayout, max_table_units: int = 1_000_000
) -> CriterionReport:
    """Criterion 4: the mapping tables are small enough to hold in memory.

    The paper rejects layouts whose table approaches the disk's own unit
    count (its 41-disk complete-design example needs ~3.75M tuples).
    We report the table's unit count against a configurable threshold.
    """
    units = layout.stripes_per_table * layout.stripe_size
    passed = units <= max_table_units
    return CriterionReport(
        name="efficient-mapping",
        passed=passed,
        detail=(
            f"full table holds {layout.stripes_per_table} stripes "
            f"({units} unit slots, depth {layout.table_depth} per disk)"
        ),
        metrics={"table_stripes": layout.stripes_per_table, "table_units": units},
    )


def check_large_write_optimization(layout: ParityLayout) -> CriterionReport:
    """Criterion 5: contiguous logical data aligns with parity stripes.

    A user write covering logical units ``s*(G-1) .. s*(G-1)+G-2`` must
    touch exactly the data units of one parity stripe, so no pre-reads
    are needed.
    """
    g_data = layout.data_units_per_stripe
    for s in _table_stripes(layout):
        stripes = {
            layout.stripe_of_logical(s * g_data + j) for j in range(g_data)
        }
        if stripes != {s}:
            return CriterionReport(
                name="large-write-optimization",
                passed=False,
                detail=f"logical window of stripe {s} spans stripes {sorted(stripes)}",
            )
    return CriterionReport(
        name="large-write-optimization",
        passed=True,
        detail="every aligned (G-1)-unit logical window is exactly one parity stripe",
    )


def check_maximal_parallelism(layout: ParityLayout) -> CriterionReport:
    """Criterion 6: any C consecutive logical units touch all C disks.

    The paper's declustered data mapping fails this (its Figure 4-2
    example reads disks 0 and 1 twice and disks 3 and 4 not at all);
    left-symmetric RAID 5 passes. The report includes the fraction of
    aligned windows that do achieve full parallelism.
    """
    c = layout.num_disks
    g_data = layout.data_units_per_stripe
    total = layout.stripes_per_table * g_data  # window starts, wrapping into the next table
    failures = 0
    first_failure = None
    distinct_sum = 0
    for start in range(total):
        disks = {layout.logical_to_physical(start + i).disk for i in range(c)}
        distinct_sum += len(disks)
        if len(disks) != c:
            failures += 1
            if first_failure is None:
                first_failure = start
    fraction_ok = 1.0 - failures / total
    mean_coverage = distinct_sum / (total * c)
    metrics = {"fraction_parallel": fraction_ok, "mean_disk_coverage": mean_coverage}
    if failures == 0:
        return CriterionReport(
            name="maximal-parallelism",
            passed=True,
            detail=f"all {total} aligned windows of {c} units span {c} distinct disks",
            metrics=metrics,
        )
    return CriterionReport(
        name="maximal-parallelism",
        passed=False,
        detail=(
            f"{failures}/{total} windows miss full parallelism "
            f"(first at logical unit {first_failure}); a window covers "
            f"{mean_coverage:.0%} of the disks on average"
        ),
        metrics=metrics,
    )


def check_double_failure_correcting(layout: ParityLayout) -> CriterionReport:
    """Dual criterion 1: two syndromes and no two stripe units share a disk.

    With P and Q per stripe, any two failed disks cost a stripe at most
    two units — exactly the erasure budget of the code — so no stripe
    loses data.
    """
    if layout.num_syndromes < 2:
        return CriterionReport(
            name="double-failure-correcting",
            passed=False,
            detail="layout has a single syndrome; a second failure loses data",
        )
    distinct = check_single_failure_correcting(layout)
    return CriterionReport(
        name="double-failure-correcting",
        passed=distinct.passed,
        detail=(
            "two syndromes per stripe and " + distinct.detail
            if distinct.passed
            else distinct.detail
        ),
    )


def pair_reconstruction_loads(
    layout: ParityLayout,
) -> typing.Dict[typing.Tuple[int, int], typing.List[int]]:
    """``loads[(a, b)][d]``: units disk ``d`` reads per table when disks
    ``a`` and ``b`` have both failed.

    Every stripe touching either failed disk is read in full (one pass
    serves both rebuild targets), so survivor ``d`` is charged once per
    degraded stripe it belongs to.
    """
    c = layout.num_disks
    loads = {
        pair: [0] * c for pair in itertools.combinations(range(c), 2)
    }
    stripe_disks = [
        frozenset(u.disk for u in layout.stripe_units(s)) for s in _table_stripes(layout)
    ]
    for disks in stripe_disks:
        for pair in itertools.combinations(range(c), 2):
            if pair[0] in disks or pair[1] in disks:
                row = loads[pair]
                for d in disks:
                    if d not in pair:
                        row[d] += 1
    return loads


def check_pair_balanced_reconstruction(layout: ParityLayout) -> CriterionReport:
    """Dual criterion 2: rebuild load is uniform for every failed *pair*.

    For each pair of failed disks, every surviving disk must read the
    same number of units per table. A BIBD alone does not guarantee
    this — it takes a ``t = 3`` design (uniform triple co-occurrence),
    since the load on survivor ``d`` is ``N(a,d) + N(b,d) - N(a,b,d)``.
    """
    observed = set()
    for pair, row in pair_reconstruction_loads(layout).items():
        for d, load in enumerate(row):
            if d not in pair:
                observed.add(load)
    if len(observed) == 1:
        load = observed.pop()
        return CriterionReport(
            name="pair-balanced-reconstruction",
            passed=True,
            detail=(
                f"every survivor reads exactly {load} units per table "
                "for any failed pair"
            ),
            metrics={"units_per_survivor_per_table": load},
        )
    return CriterionReport(
        name="pair-balanced-reconstruction",
        passed=False,
        detail=f"survivor loads vary across failed pairs: {sorted(observed)}",
        metrics={"min_load": min(observed), "max_load": max(observed)},
    )


def q_units_per_disk(layout: ParityLayout) -> typing.List[int]:
    """Q syndrome units each disk holds in one full table."""
    counts = [0] * layout.num_disks
    for s in _table_stripes(layout):
        counts[layout.q_unit(s).disk] += 1
    return counts


def check_distributed_q(layout: ParityLayout) -> CriterionReport:
    """Dual criterion 3: Q units are spread evenly over the disks."""
    counts = q_units_per_disk(layout)
    if len(set(counts)) == 1:
        return CriterionReport(
            name="distributed-q",
            passed=True,
            detail=f"every disk holds {counts[0]} Q units per table",
            metrics={"q_units_per_disk": counts[0]},
        )
    return CriterionReport(
        name="distributed-q",
        passed=False,
        detail=f"Q counts per disk vary: min={min(counts)}, max={max(counts)}",
        metrics={"min": min(counts), "max": max(counts)},
    )


def evaluate_layout(layout: ParityLayout) -> typing.List[CriterionReport]:
    """Run all criteria checks against a layout.

    The paper's six checks always run; dual-syndrome layouts get three
    more (double-failure correction, pair-balanced reconstruction,
    distributed Q).
    """
    reports = [
        check_single_failure_correcting(layout),
        check_distributed_reconstruction(layout),
        check_distributed_parity(layout),
        check_efficient_mapping(layout),
        check_large_write_optimization(layout),
        check_maximal_parallelism(layout),
    ]
    if layout.num_syndromes == 2:
        reports.extend(
            [
                check_double_failure_correcting(layout),
                check_pair_balanced_reconstruction(layout),
                check_distributed_q(layout),
            ]
        )
    return reports
