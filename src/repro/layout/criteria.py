"""Executable versions of the paper's six layout-goodness criteria.

Section 4.1 lists six criteria for a parity layout. The first four are
properties of the parity mapping alone; the last two involve the data
mapping. Each check inspects one full table of a layout (the layout is
periodic, so the table is sufficient) and returns a
:class:`CriterionReport` with pass/fail plus the measured evidence.

Large arrays change the economics: an arithmetic layout's period can
hold millions of stripes, so walking all of it per criterion is off the
table. Every check therefore accepts an optional :class:`SamplePlan`:

- Per-stripe invariants (criteria 1, 5) and window starts (criterion 6)
  are checked on a seeded sample — each sampled item is verified
  exactly.
- Counting criteria (2, 3, and the dual checks) sample *failed disks*
  (or pairs, or counted disks) and compute each sample's full load
  exactly through the inverse mapping over one period — never an
  estimate, just fewer disks audited.

``evaluate_layout(layout)`` picks the mode automatically: exact below
:data:`SAMPLING_THRESHOLD_DISKS` disks (bit-identical to the original
exhaustive checks), sampled at or above it.
"""

from __future__ import annotations

import itertools
import random
import typing
from dataclasses import dataclass, field

from repro.layout.base import PARITY_ROLE, Q_ROLE, ParityLayout

#: Array widths at or above this default to sampled criteria checks.
SAMPLING_THRESHOLD_DISKS = 256


@dataclass
class CriterionReport:
    """Outcome of one layout criterion check."""

    name: str
    passed: bool
    detail: str
    metrics: typing.Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class SamplePlan:
    """Seeded sample sizes for criteria checks on large layouts.

    Every sampled item is still verified exactly; the plan only bounds
    how many stripes / disks / pairs / windows get audited. The seed
    makes reports reproducible run to run.
    """

    seed: int = 1992
    #: Stripes audited by the per-stripe checks (criteria 1 and 5).
    stripes: int = 512
    #: Failed disks whose full survivor-load vector is computed (criterion 2).
    failed_disks: int = 2
    #: Disks whose parity/Q counts are tallied (criterion 3 and dual 3).
    counted_disks: int = 16
    #: Failed pairs audited by the dual pair-balance check.
    pairs: int = 2
    #: Aligned logical windows audited by criterion 6.
    windows: int = 128

    def rng(self) -> random.Random:
        return random.Random(self.seed)  # simlint: disable=DET002 (explicitly seeded from the plan; sample selection is reproducible run to run and never feeds the simulation)


def sample_plan(
    layout: ParityLayout, mode: str = "auto", seed: int = 1992
) -> typing.Optional[SamplePlan]:
    """The plan a mode implies: None means exact (exhaustive) checks."""
    if mode not in ("auto", "exact", "sample"):
        raise ValueError(f"mode must be 'auto', 'exact' or 'sample', got {mode!r}")
    if mode == "exact":
        return None
    if mode == "sample" or layout.num_disks >= SAMPLING_THRESHOLD_DISKS:
        return SamplePlan(seed=seed)
    return None


def _table_stripes(layout: ParityLayout) -> range:
    return range(layout.stripes_per_table)


def _sample(population: int, count: int, rng: random.Random) -> typing.List[int]:
    """``count`` distinct indices below ``population``, sorted; all if small."""
    if count >= population:
        return list(range(population))
    return sorted(rng.sample(range(population), count))


def check_single_failure_correcting(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Criterion 1: no two units of a stripe share a disk."""
    if plan is None:
        stripes: typing.Iterable[int] = _table_stripes(layout)
        audited = layout.stripes_per_table
        scope = f"all {audited} table stripes"
    else:
        sampled = _sample(layout.stripes_per_table, plan.stripes, plan.rng())
        stripes = sampled
        audited = len(sampled)
        scope = f"{audited} sampled stripes (seed {plan.seed})"
    for s in stripes:
        disks = [u.disk for u in layout.stripe_units(s)]
        if len(set(disks)) != len(disks):
            return CriterionReport(
                name="single-failure-correcting",
                passed=False,
                detail=f"stripe {s} places two units on one disk ({disks})",
            )
    return CriterionReport(
        name="single-failure-correcting",
        passed=True,
        detail=f"{scope} use distinct disks",
        metrics={"stripes_audited": audited},
    )


def reconstruction_load_matrix(layout: ParityLayout) -> typing.List[typing.List[int]]:
    """``m[f][d]``: units disk ``d`` reads per table to rebuild disk ``f``."""
    c = layout.num_disks
    matrix = [[0] * c for _ in range(c)]
    for s in _table_stripes(layout):
        disks = [u.disk for u in layout.stripe_units(s)]
        for failed in disks:
            for survivor in disks:
                if survivor != failed:
                    matrix[failed][survivor] += 1
    return matrix


def survivor_loads_for_failure(
    layout: ParityLayout, failed: int
) -> typing.List[int]:
    """Units each disk reads per table to rebuild ``failed``, via the
    inverse mapping — O(table_depth · G) for one failed disk, however
    many stripes the period holds."""
    loads = [0] * layout.num_disks
    for offset in range(layout.table_depth):
        stripe, _role = layout.stripe_of(failed, offset)
        for unit in layout.stripe_units(stripe):
            if unit.disk != failed:
                loads[unit.disk] += 1
    return loads


def check_distributed_reconstruction(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Criterion 2: reconstruction work is uniform over surviving disks.

    For every possible failed disk, every surviving disk must contribute
    the same number of units per table. For a BIBD layout this constant
    is ``lam * G`` per full table. Under a :class:`SamplePlan`, failed
    disks are sampled but each sampled disk's survivor loads are
    computed exactly.
    """
    loads: typing.Set[int] = set()
    if plan is None:
        matrix = reconstruction_load_matrix(layout)
        for failed, row in enumerate(matrix):
            for survivor, load in enumerate(row):
                if survivor != failed:
                    loads.add(load)
        scope = "any failure"
    else:
        sampled = _sample(layout.num_disks, plan.failed_disks, plan.rng())
        for failed in sampled:
            row = survivor_loads_for_failure(layout, failed)
            for survivor, load in enumerate(row):
                if survivor != failed:
                    loads.add(load)
        scope = f"each of {len(sampled)} sampled failures (seed {plan.seed})"
    if len(loads) == 1:
        load = loads.pop()
        return CriterionReport(
            name="distributed-reconstruction",
            passed=True,
            detail=f"every survivor reads exactly {load} units per table for {scope}",
            metrics={"units_per_survivor_per_table": load},
        )
    return CriterionReport(
        name="distributed-reconstruction",
        passed=False,
        detail=f"survivor loads vary across pairs: {sorted(loads)}",
        metrics={"min_load": min(loads), "max_load": max(loads)},
    )


def parity_units_per_disk(layout: ParityLayout) -> typing.List[int]:
    """Parity units each disk holds in one full table."""
    counts = [0] * layout.num_disks
    for s in _table_stripes(layout):
        counts[layout.parity_unit(s).disk] += 1
    return counts


def _role_count_on_disk(layout: ParityLayout, disk: int, role: int) -> int:
    """Units with ``role`` on one disk per table, via the inverse mapping."""
    return sum(
        1
        for offset in range(layout.table_depth)
        if layout.stripe_of(disk, offset)[1] == role
    )


def _check_distributed_role(
    layout: ParityLayout,
    plan: typing.Optional[SamplePlan],
    role: int,
    name: str,
    label: str,
    metric: str,
) -> CriterionReport:
    if plan is None:
        if role == PARITY_ROLE:
            counts = parity_units_per_disk(layout)
        else:
            counts = q_units_per_disk(layout)
        scope = "every disk"
    else:
        sampled = _sample(layout.num_disks, plan.counted_disks, plan.rng())
        counts = [_role_count_on_disk(layout, disk, role) for disk in sampled]
        scope = f"each of {len(sampled)} sampled disks (seed {plan.seed})"
    if len(set(counts)) == 1:
        return CriterionReport(
            name=name,
            passed=True,
            detail=f"{scope} holds {counts[0]} {label} units per table",
            metrics={metric: counts[0]},
        )
    return CriterionReport(
        name=name,
        passed=False,
        detail=f"{label} counts per disk vary: min={min(counts)}, max={max(counts)}",
        metrics={"min": min(counts), "max": max(counts)},
    )


def check_distributed_parity(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Criterion 3: parity units are spread evenly over the disks."""
    if plan is None:
        counts = parity_units_per_disk(layout)
        if len(set(counts)) == 1:
            return CriterionReport(
                name="distributed-parity",
                passed=True,
                detail=f"every disk holds {counts[0]} parity units per table",
                metrics={"parity_units_per_disk": counts[0]},
            )
        return CriterionReport(
            name="distributed-parity",
            passed=False,
            detail=f"parity counts per disk vary: min={min(counts)}, max={max(counts)}",
            metrics={"min": min(counts), "max": max(counts)},
        )
    return _check_distributed_role(
        layout, plan, PARITY_ROLE, "distributed-parity", "parity",
        "parity_units_per_disk",
    )


def check_efficient_mapping(
    layout: ParityLayout, max_table_units: int = 1_000_000
) -> CriterionReport:
    """Criterion 4: the mapping state is small enough to hold in memory.

    The paper rejects layouts whose table approaches the disk's own unit
    count (its 41-disk complete-design example needs ~3.75M tuples). We
    report the units the implementation actually materializes —
    :attr:`~repro.layout.base.ParityLayout.mapping_table_units` — against
    a configurable threshold. Arithmetic layouts materialize nothing,
    so they pass trivially however long their period is; the criterion
    still applies in full to every table-based layout.
    """
    units = layout.mapping_table_units
    passed = units <= max_table_units
    if units == 0:
        detail = (
            f"arithmetic mapping materializes no table "
            f"(period of {layout.stripes_per_table} stripes, "
            f"depth {layout.table_depth} per disk)"
        )
    else:
        detail = (
            f"full table holds {layout.stripes_per_table} stripes "
            f"({units} unit slots, depth {layout.table_depth} per disk)"
        )
    return CriterionReport(
        name="efficient-mapping",
        passed=passed,
        detail=detail,
        metrics={"table_stripes": layout.stripes_per_table, "table_units": units},
    )


def check_large_write_optimization(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Criterion 5: contiguous logical data aligns with parity stripes.

    A user write covering logical units ``s*(G-1) .. s*(G-1)+G-2`` must
    touch exactly the data units of one parity stripe, so no pre-reads
    are needed.
    """
    g_data = layout.data_units_per_stripe
    if plan is None:
        stripes: typing.Iterable[int] = _table_stripes(layout)
        scope = "every"
    else:
        stripes = _sample(layout.stripes_per_table, plan.stripes, plan.rng())
        scope = f"every sampled (seed {plan.seed})"
    for s in stripes:
        spanned = {
            layout.stripe_of_logical(s * g_data + j) for j in range(g_data)
        }
        if spanned != {s}:
            return CriterionReport(
                name="large-write-optimization",
                passed=False,
                detail=f"logical window of stripe {s} spans stripes {sorted(spanned)}",
            )
    return CriterionReport(
        name="large-write-optimization",
        passed=True,
        detail=f"{scope} aligned (G-1)-unit logical window is exactly one parity stripe",
    )


def _window_distinct_disks(layout: ParityLayout, start: int, width: int) -> int:
    return len(
        {layout.logical_to_physical(start + i).disk for i in range(width)}
    )


def check_maximal_parallelism(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Criterion 6: any C consecutive logical units touch all C disks.

    The paper's declustered data mapping fails this (its Figure 4-2
    example reads disks 0 and 1 twice and disks 3 and 4 not at all);
    left-symmetric RAID 5 passes. The report includes the fraction of
    aligned windows that do achieve full parallelism.

    The exact mode slides one window across the period — each step
    retires one logical unit and admits one, so the whole scan is
    O(windows) translations instead of O(windows · C).
    """
    c = layout.num_disks
    g_data = layout.data_units_per_stripe
    total = layout.stripes_per_table * g_data  # window starts, wrapping into the next table
    failures = 0
    first_failure = None
    distinct_sum = 0
    if plan is None:
        audited = total
        counts: typing.Dict[int, int] = {}
        for i in range(c):
            disk = layout.logical_to_physical(i).disk
            counts[disk] = counts.get(disk, 0) + 1
        for start in range(total):
            distinct = len(counts)
            distinct_sum += distinct
            if distinct != c:
                failures += 1
                if first_failure is None:
                    first_failure = start
            leaving = layout.logical_to_physical(start).disk
            remaining = counts[leaving] - 1
            if remaining:
                counts[leaving] = remaining
            else:
                del counts[leaving]
            entering = layout.logical_to_physical(start + c).disk
            counts[entering] = counts.get(entering, 0) + 1
        scope = f"all {total} aligned windows"
    else:
        starts = _sample(total, plan.windows, plan.rng())
        audited = len(starts)
        for start in starts:
            distinct = _window_distinct_disks(layout, start, c)
            distinct_sum += distinct
            if distinct != c:
                failures += 1
                if first_failure is None:
                    first_failure = start
        scope = f"all {audited} sampled windows (seed {plan.seed})"
    fraction_ok = 1.0 - failures / audited
    mean_coverage = distinct_sum / (audited * c)
    metrics = {"fraction_parallel": fraction_ok, "mean_disk_coverage": mean_coverage}
    if failures == 0:
        return CriterionReport(
            name="maximal-parallelism",
            passed=True,
            detail=f"{scope} of {c} units span {c} distinct disks",
            metrics=metrics,
        )
    return CriterionReport(
        name="maximal-parallelism",
        passed=False,
        detail=(
            f"{failures}/{audited} windows miss full parallelism "
            f"(first at logical unit {first_failure}); a window covers "
            f"{mean_coverage:.0%} of the disks on average"
        ),
        metrics=metrics,
    )


def check_double_failure_correcting(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Dual criterion 1: two syndromes and no two stripe units share a disk.

    With P and Q per stripe, any two failed disks cost a stripe at most
    two units — exactly the erasure budget of the code — so no stripe
    loses data.
    """
    if layout.num_syndromes < 2:
        return CriterionReport(
            name="double-failure-correcting",
            passed=False,
            detail="layout has a single syndrome; a second failure loses data",
        )
    distinct = check_single_failure_correcting(layout, plan)
    return CriterionReport(
        name="double-failure-correcting",
        passed=distinct.passed,
        detail=(
            "two syndromes per stripe and " + distinct.detail
            if distinct.passed
            else distinct.detail
        ),
    )


def pair_reconstruction_loads(
    layout: ParityLayout,
) -> typing.Dict[typing.Tuple[int, int], typing.List[int]]:
    """``loads[(a, b)][d]``: units disk ``d`` reads per table when disks
    ``a`` and ``b`` have both failed.

    Every stripe touching either failed disk is read in full (one pass
    serves both rebuild targets), so survivor ``d`` is charged once per
    degraded stripe it belongs to.
    """
    c = layout.num_disks
    loads = {
        pair: [0] * c for pair in itertools.combinations(range(c), 2)
    }
    stripe_disks = [
        frozenset(u.disk for u in layout.stripe_units(s)) for s in _table_stripes(layout)
    ]
    for disks in stripe_disks:
        for pair in itertools.combinations(range(c), 2):
            if pair[0] in disks or pair[1] in disks:
                row = loads[pair]
                for d in disks:
                    if d not in pair:
                        row[d] += 1
    return loads


def survivor_loads_for_pair(
    layout: ParityLayout, pair: typing.Tuple[int, int]
) -> typing.List[int]:
    """Units each disk reads per table when both disks of ``pair`` fail,
    via the inverse mapping — O(table_depth · G) for one pair."""
    degraded: typing.Set[int] = set()
    for failed in pair:
        for offset in range(layout.table_depth):
            degraded.add(layout.stripe_of(failed, offset)[0])
    loads = [0] * layout.num_disks
    for stripe in degraded:
        for unit in layout.stripe_units(stripe):
            if unit.disk not in pair:
                loads[unit.disk] += 1
    return loads


def check_pair_balanced_reconstruction(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Dual criterion 2: rebuild load is uniform for every failed *pair*.

    For each pair of failed disks, every surviving disk must read the
    same number of units per table. A BIBD alone does not guarantee
    this — it takes a ``t = 3`` design (uniform triple co-occurrence),
    since the load on survivor ``d`` is ``N(a,d) + N(b,d) - N(a,b,d)``.
    """
    observed: typing.Set[int] = set()
    if plan is None:
        for pair, row in pair_reconstruction_loads(layout).items():
            for d, load in enumerate(row):
                if d not in pair:
                    observed.add(load)
        scope = "any failed pair"
    else:
        rng = plan.rng()
        all_pairs = list(itertools.combinations(range(layout.num_disks), 2))
        indices = _sample(len(all_pairs), plan.pairs, rng)
        for index in indices:
            pair = all_pairs[index]
            row = survivor_loads_for_pair(layout, pair)
            for d, load in enumerate(row):
                if d not in pair:
                    observed.add(load)
        scope = f"each of {len(indices)} sampled failed pairs (seed {plan.seed})"
    if len(observed) == 1:
        load = observed.pop()
        return CriterionReport(
            name="pair-balanced-reconstruction",
            passed=True,
            detail=(
                f"every survivor reads exactly {load} units per table "
                f"for {scope}"
            ),
            metrics={"units_per_survivor_per_table": load},
        )
    return CriterionReport(
        name="pair-balanced-reconstruction",
        passed=False,
        detail=f"survivor loads vary across failed pairs: {sorted(observed)}",
        metrics={"min_load": min(observed), "max_load": max(observed)},
    )


def q_units_per_disk(layout: ParityLayout) -> typing.List[int]:
    """Q syndrome units each disk holds in one full table."""
    counts = [0] * layout.num_disks
    for s in _table_stripes(layout):
        counts[layout.q_unit(s).disk] += 1
    return counts


def check_distributed_q(
    layout: ParityLayout, plan: typing.Optional[SamplePlan] = None
) -> CriterionReport:
    """Dual criterion 3: Q units are spread evenly over the disks."""
    if plan is None:
        counts = q_units_per_disk(layout)
        if len(set(counts)) == 1:
            return CriterionReport(
                name="distributed-q",
                passed=True,
                detail=f"every disk holds {counts[0]} Q units per table",
                metrics={"q_units_per_disk": counts[0]},
            )
        return CriterionReport(
            name="distributed-q",
            passed=False,
            detail=f"Q counts per disk vary: min={min(counts)}, max={max(counts)}",
            metrics={"min": min(counts), "max": max(counts)},
        )
    return _check_distributed_role(
        layout, plan, Q_ROLE, "distributed-q", "Q", "q_units_per_disk"
    )


def evaluate_layout(
    layout: ParityLayout, mode: str = "auto", seed: int = 1992
) -> typing.List[CriterionReport]:
    """Run all criteria checks against a layout.

    The paper's six checks always run; dual-syndrome layouts get three
    more (double-failure correction, pair-balanced reconstruction,
    distributed Q). ``mode`` selects exhaustive (``"exact"``) or seeded
    sampled (``"sample"``) checking; the default ``"auto"`` stays exact
    below :data:`SAMPLING_THRESHOLD_DISKS` disks — bit-identical to the
    historical exhaustive reports — and samples at or above it.
    """
    plan = sample_plan(layout, mode=mode, seed=seed)
    reports = [
        check_single_failure_correcting(layout, plan),
        check_distributed_reconstruction(layout, plan),
        check_distributed_parity(layout, plan),
        check_efficient_mapping(layout),
        check_large_write_optimization(layout, plan),
        check_maximal_parallelism(layout, plan),
    ]
    if layout.num_syndromes == 2:
        reports.extend(
            [
                check_double_failure_correcting(layout, plan),
                check_pair_balanced_reconstruction(layout, plan),
                check_distributed_q(layout, plan),
            ]
        )
    return reports
