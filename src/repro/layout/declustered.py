"""The block-design-based declustered parity layout (paper Section 4.2).

Construction, exactly as the paper describes:

1. Associate disks with design objects and parity stripes with tuples.
2. Lay out one *block design table*: stripe unit ``j`` of stripe ``i``
   goes to the lowest free offset of the disk named by the ``j``-th
   element of tuple ``i mod b``; the parity unit occupies one chosen
   element position.
3. A single table puts parity on the same element of every tuple and
   violates the distributed-parity criterion (Figure 2-3), so the table
   is duplicated ``G`` times — the *full block design table* — rotating
   the parity position across duplications (Figure 4-2). Each disk then
   holds exactly ``r`` parity units per full table.
4. The full table tiles down the disks until every unit is mapped.
"""

from __future__ import annotations

import typing

from repro.designs.design import BlockDesign
from repro.layout.base import LayoutError, TableParityLayout, UnitAddress


def build_full_table(
    design: BlockDesign, rotate_parity: bool = True
) -> typing.List[typing.List[UnitAddress]]:
    """Build the full block design table as a list of stripes.

    Each stripe is a list of ``G`` slots with the parity slot last.

    Parameters
    ----------
    design:
        A block design with ``v = C`` objects and tuples of size
        ``k = G``.
    rotate_parity:
        When True (the paper's scheme), make ``G`` duplications of the
        design, assigning parity to element position ``G-1-d`` in
        duplication ``d``. When False, build a single table with parity
        always on the last element — this deliberately violates the
        distributed-parity criterion and exists for the ablation bench.
    """
    g = design.k
    next_free = [0] * design.v
    table: typing.List[typing.List[UnitAddress]] = []
    duplications = range(g) if rotate_parity else (0,)
    for dup in duplications:
        parity_position = (g - 1 - dup) % g
        for tup in design.tuples:
            slots = []
            for element in tup:
                slots.append(UnitAddress(disk=element, offset=next_free[element]))
                next_free[element] += 1
            data_slots = [slot for pos, slot in enumerate(slots) if pos != parity_position]
            table.append(data_slots + [slots[parity_position]])
    return table


class DeclusteredLayout(TableParityLayout):
    """Parity declustering over ``C = design.v`` disks with ``G = design.k``.

    The design is validated for BIBD balance before use; an unbalanced
    design would silently break the distributed-reconstruction
    guarantee (criterion 2).
    """

    def __init__(
        self,
        design: BlockDesign,
        rotate_parity: bool = True,
        data_mapping: str = "stripe",
    ):
        design.validate()
        if design.k == design.v:
            raise LayoutError(
                "G == C is RAID 5; use LeftSymmetricRaid5Layout for that case"
            )
        self.design = design
        self.rotate_parity = rotate_parity
        table = build_full_table(design, rotate_parity=rotate_parity)
        super().__init__(
            num_disks=design.v,
            stripe_size=design.k,
            table=table,
            name=f"declustered-{design.name or f'{design.v}-{design.k}'}",
            data_mapping=data_mapping,
        )
