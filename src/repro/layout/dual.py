"""Dual-syndrome (P+Q / RAID-6 style) parity layouts.

Two constructions, mirroring the single-syndrome pair:

- :class:`DualDeclusteredLayout` — parity declustering with two check
  units per stripe. The full table makes ``G`` duplications of a block
  design, rotating **both** syndrome positions across duplications
  (P at element ``G-1-d``, Q at element ``G-2-d`` in duplication
  ``d``), so every disk holds exactly ``r`` P units and ``r`` Q units
  per full table — the dual analogue of the paper's Figure 4-2
  rotation. Any validated BIBD with ``k >= 3`` works; a ``t = 3``
  design (:mod:`repro.designs.tdesigns`) additionally balances the
  reconstruction load over survivors when *two* disks have failed.
- :class:`CyclicDualRaid6Layout` — the ``G = C`` full-width case: a
  table of ``C`` stripes whose P and Q slots rotate one disk per
  stripe (the cyclic-group placement, the RAID-6 analogue of
  left-symmetric RAID 5).

The declustering ratio keeps its meaning — each stripe still spans
``G`` disks, so a single failed disk's rebuild touches a fraction
``alpha = (G-1)/(C-1)`` of every survivor.
"""

from __future__ import annotations

import typing

from repro.designs.design import BlockDesign
from repro.layout.base import LayoutError, TableParityLayout, UnitAddress


def build_dual_full_table(
    design: BlockDesign,
) -> typing.List[typing.List[UnitAddress]]:
    """Full table for a dual-syndrome declustered layout.

    Each stripe row lists its data slots in element order followed by
    the Q slot (table position ``G-2``) and the P slot (position
    ``G-1``), matching the :class:`~repro.layout.base.ParityLayout`
    dual-table convention.
    """
    g = design.k
    if g < 3:
        raise LayoutError(f"dual syndromes need stripes of >= 3 units, got G={g}")
    next_free = [0] * design.v
    table: typing.List[typing.List[UnitAddress]] = []
    for dup in range(g):
        parity_position = (g - 1 - dup) % g
        q_position = (g - 2 - dup) % g
        for tup in design.tuples:
            slots = []
            for element in tup:
                slots.append(UnitAddress(disk=element, offset=next_free[element]))
                next_free[element] += 1
            data_slots = [
                slot
                for pos, slot in enumerate(slots)
                if pos not in (parity_position, q_position)
            ]
            table.append(data_slots + [slots[q_position], slots[parity_position]])
    return table


class DualDeclusteredLayout(TableParityLayout):
    """P+Q parity declustering over ``C = design.v`` disks, ``G = design.k``."""

    def __init__(self, design: BlockDesign, data_mapping: str = "stripe"):
        design.validate()
        if design.k == design.v:
            raise LayoutError(
                "G == C is full-width RAID 6; use CyclicDualRaid6Layout for that case"
            )
        self.design = design
        super().__init__(
            num_disks=design.v,
            stripe_size=design.k,
            table=build_dual_full_table(design),
            name=f"dual-declustered-{design.name or f'{design.v}-{design.k}'}",
            data_mapping=data_mapping,
            num_syndromes=2,
        )


class CyclicDualRaid6Layout(TableParityLayout):
    """Full-width P+Q with cyclically rotating check slots (``G = C``).

    Stripe ``s`` occupies offset ``s`` of every disk; its P unit lives
    on disk ``(C-1-s) mod C`` and its Q unit on disk ``(C-2-s) mod C``,
    so consecutive stripes shift both check slots left by one — every
    disk holds exactly one P and one Q unit per table.
    """

    def __init__(self, num_disks: int, data_mapping: str = "stripe"):
        if num_disks < 3:
            raise LayoutError(f"need at least 3 disks for P+Q, got {num_disks}")
        c = num_disks
        table: typing.List[typing.List[UnitAddress]] = []
        for s in range(c):
            parity_disk = (c - 1 - s) % c
            q_disk = (c - 2 - s) % c
            data_slots = [
                UnitAddress(disk=(parity_disk + 1 + j) % c, offset=s)
                for j in range(c - 2)
            ]
            table.append(
                data_slots
                + [UnitAddress(q_disk, s), UnitAddress(parity_disk, s)]
            )
        super().__init__(
            num_disks=c,
            stripe_size=c,
            table=table,
            name=f"cyclic-dual-raid6-{c}",
            data_mapping=data_mapping,
            num_syndromes=2,
        )
