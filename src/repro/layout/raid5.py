"""Left-symmetric RAID 5 layout (Figure 2-1 of the paper).

Parity rotates one disk to the left at each stripe, and data units of
stripe ``i`` begin on the disk just after the parity disk, wrapping
around. This is the ``G = C`` special case against which declustering
is compared (``alpha = 1``), and it satisfies all six layout criteria.
"""

from __future__ import annotations

from repro.layout.base import LayoutError, TableParityLayout, UnitAddress


class LeftSymmetricRaid5Layout(TableParityLayout):
    """RAID 5 with left-symmetric parity placement over ``C`` disks."""

    def __init__(self, num_disks: int):
        if num_disks < 2:
            raise LayoutError(f"RAID 5 needs at least 2 disks, got {num_disks}")
        c = num_disks
        table = []
        for i in range(c):
            parity_disk = (c - 1 - i) % c
            stripe = [
                UnitAddress(disk=(parity_disk + 1 + j) % c, offset=i) for j in range(c - 1)
            ]
            stripe.append(UnitAddress(disk=parity_disk, offset=i))
            table.append(stripe)
        super().__init__(
            num_disks=c, stripe_size=c, table=table, name=f"left-symmetric-raid5-{c}"
        )
