"""Reddy & Banerjee's gracefully-degradable two-group layout.

Section 3 of Holland & Gibson describes the prior scheme: "[Reddy's]
organization uses a block design containing b tuples on C objects to
divide the array into exactly two parity groups: track j on disk i is a
member of parity group one if object i is a member of block (j mod b)
... restricted to the case where G = C/2."

Concretely, each offset row of the array is split into two parity
stripes of C/2 units each — the disks inside row ``j mod b``'s tuple
and the disks outside it. Parity positions rotate within each group by
row so parity stays distributed. Balance across disk pairs follows from
the design's balance: two disks share a group in ``lam`` rows (both
inside) plus ``b - 2r + lam`` rows (both outside), a constant.

The layout exists for comparison with the paper's scheme at the fixed
``alpha = (C/2 - 1)/(C - 1) ≈ 0.5`` it is restricted to.
"""

from __future__ import annotations

from repro.designs.design import BlockDesign
from repro.layout.base import LayoutError, TableParityLayout, UnitAddress


class ReddyTwoGroupLayout(TableParityLayout):
    """Two parity groups per offset row, selected by a block design.

    Parameters
    ----------
    design:
        A balanced design with ``v = C`` objects and tuples of size
        ``k = C/2``; each tuple names the disks of group one for one
        row.
    """

    def __init__(self, design: BlockDesign):
        design.validate()
        if design.v % 2 != 0:
            raise LayoutError(
                f"Reddy's layout needs an even number of disks, got {design.v}"
            )
        if design.k != design.v // 2:
            raise LayoutError(
                f"Reddy's layout requires G = C/2: got k={design.k} on "
                f"C={design.v} disks"
            )
        self.design = design
        table = self._build_table(design)
        super().__init__(
            num_disks=design.v,
            stripe_size=design.k,
            table=table,
            name=f"reddy-{design.name or f'{design.v}-{design.k}'}",
        )

    @staticmethod
    def _build_table(design: BlockDesign):
        # As with the paper's own layout (Figure 4-2), a single pass
        # cannot balance parity, so the row set is duplicated k times
        # with the parity position rotating through the group: each disk
        # sits in exactly one group per row, so over the k duplications
        # it takes parity exactly b times — perfectly distributed.
        table = []
        all_disks = set(range(design.v))
        k = design.k
        for duplication in range(k):
            for row, tuple_members in enumerate(design.tuples):
                offset = duplication * design.b + row
                inside = list(tuple_members)
                outside = sorted(all_disks - set(tuple_members))
                for group in (inside, outside):
                    parity_index = (row + duplication) % k
                    data_disks = [d for i, d in enumerate(group) if i != parity_index]
                    stripe = [UnitAddress(disk=d, offset=offset) for d in data_disks]
                    stripe.append(UnitAddress(disk=group[parity_index], offset=offset))
                    table.append(stripe)
        return table
