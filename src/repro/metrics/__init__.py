"""Observability for the reproduction: one place for statistics.

The metrics layer sits below every model package (it imports nothing
from the rest of :mod:`repro`), so the workload recorder, the disks,
the controller, and the experiment runner can all share the same
percentile and windowing math:

- :mod:`repro.metrics.stats` — nearest-rank percentiles and sample
  summaries (the root of the ``int(q*n)`` bias fix);
- :mod:`repro.metrics.accumulators` — counters, windowed durations,
  and time-weighted gauges that respect a ``measure_since`` boundary;
- :mod:`repro.metrics.histogram` — a streaming fixed-bucket latency
  histogram with nearest-rank quantiles;
- :mod:`repro.metrics.registry` — the per-run hub serialized into the
  ``metrics`` block of scenario results and the sweep cache;
- :mod:`repro.metrics.report` — ``python -m repro report``, rendering
  result documents as tables (imported lazily by the CLI; it depends
  on the experiments layer and is deliberately not re-exported here).
"""

from repro.metrics.stats import DistributionSummary, nearest_rank_index, percentile
from repro.metrics.accumulators import Counter, TimeWeightedGauge, WindowedDuration
from repro.metrics.histogram import DEFAULT_LATENCY_BOUNDS_MS, StreamingHistogram
from repro.metrics.registry import LATENCY_CLASSES, MetricsRegistry, ProgressSeries

__all__ = [
    "DistributionSummary",
    "nearest_rank_index",
    "percentile",
    "Counter",
    "TimeWeightedGauge",
    "WindowedDuration",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "StreamingHistogram",
    "LATENCY_CLASSES",
    "MetricsRegistry",
    "ProgressSeries",
]
