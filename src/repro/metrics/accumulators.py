"""Accumulators that respect a ``measure_since`` warmup boundary.

The experiments measure steady-state behavior, so everything that
integrates over time must clip to the measurement window
``[since_ms, end_ms]``: a disk that idled through warmup and then
saturated is a saturated disk, not a half-busy one. These accumulators
are passive bookkeeping — no RNG, no events — so attaching them to a
simulation cannot perturb it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Counter:
    """A monotonically growing event count."""

    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only count up")
        self.value += amount


@dataclass
class WindowedDuration:
    """Total length of intervals, clipped to ``[since_ms, inf)``.

    Disks feed their per-request busy intervals here; utilization is
    then ``total_ms`` over the measurement-window length, with a
    zero-length window reported as 0.0 rather than a division error.
    """

    since_ms: float = 0.0
    total_ms: float = 0.0

    def add(self, start_ms: float, end_ms: float) -> None:
        """Accumulate one interval, keeping only the part past the boundary."""
        if end_ms < start_ms:
            raise ValueError(f"interval ends before it starts: [{start_ms}, {end_ms}]")
        clipped = end_ms - max(start_ms, self.since_ms)
        if clipped > 0.0:
            self.total_ms += clipped

    def utilization(self, end_ms: float) -> float:
        """Busy fraction of the window ``[since_ms, end_ms]`` (0.0 if empty)."""
        window = end_ms - self.since_ms
        if window <= 0.0:
            return 0.0
        return self.total_ms / window


class TimeWeightedGauge:
    """Integrates a piecewise-constant value (queue depth, disks busy).

    Callers pass the simulation clock explicitly (``add(delta, now)``)
    so the gauge never touches wall time. The mean weights each held
    value by how long it was held inside the measurement window; the
    maximum is taken over values held at any point past ``since_ms``.
    """

    __slots__ = ("since_ms", "value", "maximum", "_area", "_last_ms")

    def __init__(self, since_ms: float = 0.0):
        self.since_ms = since_ms
        self.value = 0.0
        self.maximum = 0.0
        self._area = 0.0
        self._last_ms = 0.0

    def _advance(self, now_ms: float) -> None:
        start = max(self._last_ms, self.since_ms)
        if now_ms > start:
            self._area += self.value * (now_ms - start)
            self.maximum = max(self.maximum, self.value)
        if now_ms > self._last_ms:
            self._last_ms = now_ms

    def add(self, delta: float, now_ms: float) -> None:
        # Open-coded _advance: this runs twice per disk request (queue
        # push and pop), and the extra call frame plus max() builtins
        # were the bulk of the metrics overhead in bench profiles.
        last = self._last_ms
        start = last if last > self.since_ms else self.since_ms
        if now_ms > start:
            value = self.value
            self._area += value * (now_ms - start)
            if value > self.maximum:
                self.maximum = value
        if now_ms > last:
            self._last_ms = now_ms
        self.value += delta

    def set(self, value: float, now_ms: float) -> None:
        self._advance(now_ms)
        self.value = value

    def mean(self, end_ms: float) -> float:
        """Time-weighted mean over ``[since_ms, end_ms]`` (0.0 if empty)."""
        window = end_ms - self.since_ms
        if window <= 0.0:
            return 0.0
        self._advance(end_ms)
        return self._area / window

    def summary(self, end_ms: float) -> dict:
        """JSON-safe ``{"mean", "max"}`` over the measurement window."""
        mean = self.mean(end_ms)
        return {"mean": mean, "max": self.maximum}
