"""A streaming fixed-bucket histogram with nearest-rank quantiles.

Latency distributions at paper scale hold hundreds of thousands of
samples; keeping them raw per class per run would dominate the result
cache. The histogram holds a fixed geometric bucket ladder instead:
O(1) memory, O(log buckets) per record, and quantiles computed by the
same nearest-rank rule as the exact path (:mod:`repro.metrics.stats`),
resolved to the containing bucket's upper edge and clamped to the
observed extremes.
"""

from __future__ import annotations

import typing
from bisect import bisect_left  # bound once: record() is a hot path

from repro.metrics.stats import nearest_rank_index

#: Default bucket upper edges for millisecond latencies: a geometric
#: ladder from a quarter millisecond to ~33 seconds (doubling), plus
#: the implicit overflow bucket. Relative quantile error is bounded by
#: one octave; extremes are exact.
DEFAULT_LATENCY_BOUNDS_MS: typing.Tuple[float, ...] = tuple(
    0.25 * 2.0 ** k for k in range(18)
)


class StreamingHistogram:
    """Counts samples into fixed buckets; tracks exact count/sum/extremes.

    ``bounds`` are ascending bucket *upper* edges (inclusive); samples
    above the last edge land in an overflow bucket whose reported value
    is the observed maximum.
    """

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: typing.Sequence[float] = DEFAULT_LATENCY_BOUNDS_MS):
        self.bounds: typing.Tuple[float, ...] = tuple(bounds)
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket edge")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket edges must be strictly ascending")
        self.counts: typing.List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        if self.count == 0:
            self.minimum = self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            elif value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, resolved to a bucket upper edge.

        The bucket holding the target rank is found by cumulative
        count; its upper edge is clamped into ``[minimum, maximum]`` so
        a coarse ladder never reports a value outside the observed
        range.
        """
        if self.count == 0:
            return 0.0
        target = nearest_rank_index(q, self.count) + 1  # 1-based rank
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                edge = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.maximum
                )
                return min(max(edge, self.minimum), self.maximum)
        return self.maximum  # unreachable: cumulative totals self.count

    def to_dict(self) -> dict:
        """JSON-safe, self-describing summary plus the raw buckets."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }
