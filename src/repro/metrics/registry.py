"""The per-run metrics hub.

One :class:`MetricsRegistry` rides along with one scenario run. The
controller records per-request latency by class, disks feed per-slot
queue-depth gauges, reconstructions append progress series, and the
runner snapshots per-disk totals at the end. :meth:`to_dict` renders
the whole thing as the JSON-safe ``metrics`` block carried by
:class:`~repro.experiments.runner.ScenarioResult` and the sweep cache.

Everything here is passive observation: no RNG draws, no simulation
events, no mutation of model state — a run with a registry attached is
event-for-event identical to one without.
"""

from __future__ import annotations

import math
import typing

from repro.metrics.accumulators import Counter, TimeWeightedGauge
from repro.metrics.histogram import StreamingHistogram

#: Latency classes the stack records (any other name is accepted too;
#: these are the ones the wiring produces).
LATENCY_CLASSES = ("user-read", "user-write", "recon-read", "recon-write", "scrub")


class ProgressSeries:
    """A bounded (time, built_count) series for one reconstruction.

    Recording every one of the paper-scale ~10⁴ rebuilt units would
    bloat cached results, so points are decimated to roughly
    ``max_points`` evenly spaced milestones; the first and final units
    are always recorded.
    """

    def __init__(self, total_units: int, max_points: int = 256):
        if total_units < 1:
            raise ValueError("a reconstruction rebuilds at least one unit")
        if max_points < 2:
            raise ValueError("need at least the first and last point")
        self.total_units = total_units
        self.points: typing.List[typing.Tuple[float, int]] = []
        self._step = max(1, math.ceil(total_units / max_points))
        self._next_mark = 0

    def record(self, now_ms: float, built_count: int) -> None:
        if built_count >= self._next_mark or built_count >= self.total_units:
            self.points.append((now_ms, built_count))
            self._next_mark = built_count + self._step

    def to_dict(self) -> dict:
        return {
            "total_units": self.total_units,
            "points": [[at_ms, built] for at_ms, built in self.points],
        }


class MetricsRegistry:
    """Counters, latency histograms, gauges, and progress for one run."""

    def __init__(self, measure_since_ms: float = 0.0):
        self.measure_since_ms = measure_since_ms
        self._counters: typing.Dict[str, Counter] = {}
        self._latency: typing.Dict[str, StreamingHistogram] = {}
        self._queue_depth: typing.Dict[int, TimeWeightedGauge] = {}
        self.recon_progress: typing.List[ProgressSeries] = []
        self._disk_rows: typing.List[dict] = []
        self._last_seen_ms = measure_since_ms

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def latency_histogram(self, klass: str) -> StreamingHistogram:
        """The histogram for one latency class, created on first use.

        Hot recording paths (the controller's per-request completion)
        hold onto this directly and apply the warmup filter inline,
        skipping the per-sample registry dispatch; empty histograms are
        omitted from :meth:`to_dict`, so eager creation is invisible.
        """
        histogram = self._latency.get(klass)
        if histogram is None:
            histogram = self._latency[klass] = StreamingHistogram()
        return histogram

    def record_latency(self, klass: str, value_ms: float, now_ms: float) -> None:
        """Record one completion; samples inside warmup are discarded,
        mirroring how the response recorder filters its samples."""
        if now_ms < self.measure_since_ms:
            return
        if now_ms > self._last_seen_ms:
            self._last_seen_ms = now_ms
        self.latency_histogram(klass).record(value_ms)

    def queue_gauge(self, disk_id: int) -> TimeWeightedGauge:
        """The queue-depth gauge for one array slot (shared across a
        slot's replacement spindles, so the series spans the repair)."""
        gauge = self._queue_depth.get(disk_id)
        if gauge is None:
            gauge = self._queue_depth[disk_id] = TimeWeightedGauge(
                since_ms=self.measure_since_ms
            )
        return gauge

    def start_recon_progress(self, total_units: int) -> ProgressSeries:
        """A fresh progress series (campaigns repair more than once)."""
        series = ProgressSeries(total_units)
        self.recon_progress.append(series)
        return series

    def set_disk_rows(self, rows: typing.Sequence[dict]) -> None:
        """End-of-run per-disk totals, assembled by the runner (the
        registry never imports the disk layer)."""
        self._disk_rows = [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, end_ms: float) -> dict:
        """The JSON-safe ``metrics`` block for one finished run."""
        disks = []
        for row in self._disk_rows:
            row = dict(row)
            gauge = self._queue_depth.get(row.get("disk"))
            if gauge is not None:
                depth = gauge.summary(end_ms)
                row["queue_depth_mean"] = depth["mean"]
                row["queue_depth_max"] = depth["max"]
            disks.append(row)
        return {
            "measure_since_ms": self.measure_since_ms,
            "end_ms": end_ms,
            "window_ms": max(0.0, end_ms - self.measure_since_ms),
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "latency_ms": {
                klass: self._latency[klass].to_dict()
                for klass in sorted(self._latency)
                if self._latency[klass].count
            },
            "disks": disks,
            "recon_progress": [series.to_dict() for series in self.recon_progress],
        }

    def snapshot(self, end_ms: typing.Optional[float] = None) -> dict:
        """A JSON-safe snapshot usable *mid-run*.

        :meth:`to_dict` requires the run's end time; a streaming
        consumer (the job service's progress endpoint) doesn't know it
        yet, so the snapshot defaults to the latest simulated time the
        registry has observed. Snapshots are pure reads: taking one
        never perturbs the run.
        """
        if end_ms is None:
            end_ms = self._last_seen_ms
        return self.to_dict(end_ms)
