"""``python -m repro report <results>`` — render result documents.

Reads scenario results as structured JSON — sweep-cache entries, bare
result documents, or directories of either — and renders a per-run
table: latency p50/p90/p99 by class, per-disk utilization, and
reconstruction progress, all from the ``metrics`` block the runner
attaches. Results recorded without metrics (older cache entries,
``collect_metrics=False`` runs) fall back to the response summaries.

Cached and fresh results serialize identically, so a report rendered
from a cache directory is byte-identical to one rendered from the live
sweep — that invariant is golden-tested.

This module depends on the experiments layer for table formatting and
is therefore imported lazily by the CLI, never by ``repro.metrics``
itself.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import typing

from repro.experiments.reporting import format_table

Document = typing.Mapping[str, typing.Any]


# ----------------------------------------------------------------------
# Document loading
# ----------------------------------------------------------------------
def _document_from_json(payload: typing.Any) -> typing.Optional[Document]:
    """Extract a result document from parsed JSON, or None.

    Accepts a sweep-cache entry (``{"cache_format", ..., "result"}``)
    or a bare result document (anything carrying a ``response`` key).
    """
    if not isinstance(payload, dict):
        return None
    if "result" in payload and "cache_format" in payload:
        result = payload["result"]
        return result if isinstance(result, dict) and "response" in result else None
    if "response" in payload:
        return payload
    return None


def load_documents(
    paths: typing.Sequence[typing.Union[str, pathlib.Path]],
) -> typing.List[typing.Tuple[str, Document]]:
    """(label, document) pairs from files and/or directories of JSON."""
    documents = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.json"))
        else:
            candidates = [path]
        for candidate in candidates:
            try:
                payload = json.loads(candidate.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            document = _document_from_json(payload)
            if document is not None:
                documents.append((str(candidate), document))
    return documents


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _scale_name(scale: typing.Any) -> str:
    if isinstance(scale, dict):
        return str(scale.get("name", "custom"))
    return str(scale)


def _scenario_line(config: typing.Optional[Document]) -> str:
    if not config:
        return "Scenario: (no config recorded)"
    parts = [
        f"mode={config.get('mode', '?')}",
        f"G={config.get('stripe_size', '?')}",
        f"disks={config.get('num_disks', '?')}",
        f"rate={config.get('user_rate_per_s', '?')}/s",
        f"reads={config.get('read_fraction', '?')}",
        f"algorithm={config.get('algorithm', '?')}",
        f"scale={_scale_name(config.get('scale', '?'))}",
        f"seed={config.get('seed', '?')}",
    ]
    return "Scenario: " + " ".join(parts)


def _latency_table(metrics: Document) -> typing.Optional[str]:
    latency = metrics.get("latency_ms") or {}
    if not latency:
        return None
    rows = []
    for klass in sorted(latency):
        entry = latency[klass]
        rows.append([
            klass,
            entry["count"],
            f"{entry['mean']:.3f}",
            f"{entry['p50']:.3f}",
            f"{entry['p90']:.3f}",
            f"{entry['p99']:.3f}",
        ])
    window = f"{metrics['measure_since_ms']:.0f}..{metrics['end_ms']:.0f} ms"
    return format_table(
        ["class", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms"],
        rows,
        title=f"Latency by class (window {window}):",
    )


def _disk_table(metrics: Document) -> typing.Optional[str]:
    disks = metrics.get("disks") or []
    if not disks:
        return None
    rows = []
    for row in disks:
        rows.append([
            row.get("disk", "?"),
            f"{100.0 * row.get('utilization', 0.0):.1f}",
            f"{row.get('busy_ms', 0.0):.1f}",
            row.get("completed", 0),
            f"{row.get('queue_depth_mean', 0.0):.3f}",
            f"{row.get('queue_depth_max', 0.0):.0f}",
        ])
    return format_table(
        ["disk", "util %", "busy ms", "completed", "queue mean", "queue max"],
        rows,
        title="Per-disk utilization (measurement window):",
    )


def _decimate(points: typing.Sequence, limit: int = 12) -> typing.List:
    """At most ``limit`` evenly spaced points, keeping first and last."""
    if len(points) <= limit:
        return list(points)
    step = (len(points) - 1) / (limit - 1)
    indices = sorted({round(i * step) for i in range(limit)})
    return [points[i] for i in indices]


def _progress_table(metrics: Document) -> typing.Optional[str]:
    tables = []
    for number, series in enumerate(metrics.get("recon_progress") or []):
        total = series["total_units"]
        rows = [
            [f"{at_ms:.1f}", built, f"{built / total:.3f}"]
            for at_ms, built in _decimate(series["points"])
        ]
        tables.append(format_table(
            ["t ms", "built", "fraction"],
            rows,
            title=f"Reconstruction progress #{number + 1} ({total} units):",
        ))
    return "\n\n".join(tables) if tables else None


def _summary_fallback_table(document: Document) -> str:
    rows = []
    for label, key in (
        ("all", "response"),
        ("reads", "read_response"),
        ("writes", "write_response"),
    ):
        summary = document.get(key) or {}
        rows.append([
            label,
            summary.get("count", 0),
            f"{summary.get('mean_ms', 0.0):.3f}",
            f"{summary.get('p90_ms', 0.0):.3f}",
            f"{summary.get('p99_ms', 0.0):.3f}",
        ])
    return format_table(
        ["responses", "count", "mean ms", "p90 ms", "p99 ms"],
        rows,
        title="Response summary (no metrics block recorded):",
    )


def _fault_line(document: Document) -> typing.Optional[str]:
    faults = document.get("fault_summary")
    if not faults:
        return None
    repair = faults.get("mean_repair_ms")
    return (
        "Faults: "
        f"data_lost={faults.get('data_lost')} "
        f"disk_failures={faults.get('disk_failures', 0)} "
        f"repairs_completed={faults.get('repairs_completed', 0)} "
        f"mean_repair_ms={'n/a' if repair is None else f'{repair:.1f}'}"
    )


def document_report(document: Document) -> dict:
    """Machine-readable counterpart of :func:`render_document`.

    Same sources, same selection, no string formatting: the scenario
    config, the per-class latency entries, per-disk rows (with the
    queue-depth summary the table shows), reconstruction progress
    series (undecimated — JSON consumers get every recorded point),
    the response-summary fallback, and the fault line's fields. This is
    the single path behind both ``repro report --json`` and the job
    service's result endpoint, so CLI and API reports cannot drift.
    """
    config = document.get("config")
    report: typing.Dict[str, typing.Any] = {
        "scenario": dict(config) if config else None,
    }
    metrics = document.get("metrics")
    if metrics:
        report["window"] = {
            "measure_since_ms": metrics.get("measure_since_ms"),
            "end_ms": metrics.get("end_ms"),
            "window_ms": metrics.get("window_ms"),
        }
        latency = metrics.get("latency_ms") or {}
        report["latency_ms"] = {
            klass: dict(latency[klass]) for klass in sorted(latency)
        }
        report["counters"] = dict(metrics.get("counters") or {})
        report["disks"] = [dict(row) for row in metrics.get("disks") or []]
        report["recon_progress"] = [
            dict(series) for series in metrics.get("recon_progress") or []
        ]
    else:
        report["response_summary"] = {
            label: dict(document.get(key) or {})
            for label, key in (
                ("all", "response"),
                ("reads", "read_response"),
                ("writes", "write_response"),
            )
        }
    faults = document.get("fault_summary")
    report["faults"] = dict(faults) if faults else None
    return report


def render_document(document: Document) -> str:
    """One run's report: scenario line plus the per-run tables."""
    sections = [_scenario_line(document.get("config"))]
    metrics = document.get("metrics")
    if metrics:
        for table in (
            _latency_table(metrics),
            _disk_table(metrics),
            _progress_table(metrics),
        ):
            if table is not None:
                sections.append(table)
    else:
        sections.append(_summary_fallback_table(document))
    fault_line = _fault_line(document)
    if fault_line is not None:
        sections.append(fault_line)
    return "\n\n".join(sections)


def render_result(result) -> str:
    """Render an in-memory :class:`~repro.experiments.runner.ScenarioResult`."""
    from repro.sweep.cache import result_to_dict

    return render_document(result_to_dict(result))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description=(
            "Render scenario results (sweep-cache entries or result JSON "
            "documents) as per-run tables: latency by class, per-disk "
            "utilization, reconstruction progress."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="result JSON files and/or directories to scan recursively",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the reports as one machine-readable JSON document "
            "(the same data the tables render, via the same path the "
            "job service's result endpoint uses)"
        ),
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    missing = [raw for raw in args.paths if not pathlib.Path(raw).exists()]
    if missing:
        # A path that does not exist is a usage error (exit 2), distinct
        # from an existing tree that merely holds no result documents.
        for raw in missing:
            print(f"repro report: no such file or directory: {raw}", file=sys.stderr)
        return 2
    documents = load_documents(args.paths)
    if not documents:
        print("repro report: no result documents found", file=sys.stderr)
        return 1
    try:
        if args.json:
            payload = {
                "format": "repro-report/1",
                "reports": [
                    {"source": label, "report": document_report(document)}
                    for label, document in documents
                ],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        for index, (label, document) in enumerate(documents):
            if index:
                print()
            print(f"=== {label} ===")
            print(render_document(document))
    except BrokenPipeError:
        # `repro report results | head` closes the pipe early; point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0
