"""Shared statistics helpers: the single source of percentile math.

Every aggregate the experiments report — response-time percentiles,
phase summaries, histogram quantiles — goes through the nearest-rank
definition implemented here, so a bias fixed in this module is fixed
everywhere at once.

Nearest-rank: the q-quantile of n ordered samples is the sample at
1-based rank ``ceil(q * n)`` (0-based index ``ceil(q * n) - 1``). The
previous ad-hoc ``int(q * n)`` indexing rounded the rank *up* by one
sample — for n = 10 the reported p90 was the maximum, a systematic
upward bias on exactly the small per-cell sample counts the sweeps
produce.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass

#: Absolute slack when deciding whether ``q * n`` landed on an exact
#: rank. Decimal quantiles are not float-representable (0.9 * 10 is
#: 9.000000000000002 in binary), and without the slack an exact rank
#: would spill into the next sample — the very off-by-one this module
#: exists to remove. The slack is far below 1/n for any realistic n.
_RANK_SLACK = 1e-9


def nearest_rank_index(q: float, n: int) -> int:
    """0-based index of the q-quantile of ``n`` ordered samples.

    Implements ``ceil(q * n) - 1`` (the nearest-rank definition,
    equivalently the inverted CDF: the smallest rank k with k/n >= q),
    clamped to the valid index range so q = 0 maps to the minimum and
    q = 1 to the maximum.
    """
    if n < 1:
        raise ValueError("quantile of an empty sample set is undefined")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = math.ceil(q * n - _RANK_SLACK)
    return min(max(rank, 1), n) - 1


def percentile(ordered: typing.Sequence[float], q: float) -> float:
    """The nearest-rank q-quantile of an ascending-sorted sequence."""
    return ordered[nearest_rank_index(q, len(ordered))]


@dataclass(frozen=True)
class DistributionSummary:
    """Count, moments, extremes, and standard percentiles of a sample set.

    The empty summary is all zeros, mirroring the long-standing
    ``ResponseSummary.empty()`` convention so wrappers stay drop-in.
    ``std`` is the population standard deviation (divisor n), matching
    what the experiments have always reported.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    @classmethod
    def of(cls, samples: typing.Iterable[float]) -> "DistributionSummary":
        ordered = sorted(samples)
        n = len(ordered)
        if n == 0:
            return cls(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0,
                       p50=0.0, p90=0.0, p99=0.0)
        mean = sum(ordered) / n
        variance = sum((s - mean) ** 2 for s in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(ordered, 0.50),
            p90=percentile(ordered, 0.90),
            p99=percentile(ordered, 0.99),
        )
