"""Reconstruction: rebuilding a failed disk onto a replacement.

Implements the single-sweep reconstruction of Section 8 with the four
algorithms the paper compares (baseline, user-writes, redirect,
redirect+piggyback), single-threaded or N-way parallel sweep workers,
and the per-cycle read/write phase instrumentation behind Table 8-1.
"""

from repro.recon.algorithms import (
    ALGORITHMS,
    BASELINE,
    REDIRECT,
    REDIRECT_PIGGYBACK,
    STRICT_BASELINE,
    USER_WRITES,
    ReconAlgorithm,
)
from repro.recon.status import ReconStatus
from repro.recon.sweeper import CycleRecord, Reconstructor, ReconstructionResult

__all__ = [
    "ALGORITHMS",
    "BASELINE",
    "CycleRecord",
    "REDIRECT",
    "REDIRECT_PIGGYBACK",
    "ReconAlgorithm",
    "STRICT_BASELINE",
    "ReconStatus",
    "ReconstructionResult",
    "Reconstructor",
    "USER_WRITES",
]
