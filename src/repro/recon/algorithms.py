"""The four reconstruction algorithms of Section 8.

The algorithms differ only in how much non-reconstruction work the
driver sends to the replacement disk:

- **baseline** — nothing extra. User writes to still-lost units are
  folded into the parity unit; reads of lost units always reconstruct
  on-the-fly, even if the unit is already rebuilt. (See also
  :data:`STRICT_BASELINE`, a non-paper variant that folds writes to
  rebuilt units as well.)
- **user-writes** — user writes aimed at the failed disk go directly to
  the replacement (a reconstruct-write), which also marks the unit as
  rebuilt, saving the sweeper a cycle.
- **redirect** — user-writes, plus Muntz & Lui's *redirection of
  reads*: reads of already-rebuilt units are serviced by the
  replacement.
- **redirect+piggyback** — redirect, plus Muntz & Lui's *piggybacking
  of writes*: an on-the-fly reconstruction triggered by a user read
  also writes the recovered unit to the replacement, marking it
  rebuilt.

Regardless of algorithm, once a unit is marked rebuilt, user *writes*
involving it treat the replacement as a live disk — anything else would
leave stale state on the replacement and lose data at repair
completion.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass


@dataclass(frozen=True)
class ReconAlgorithm:
    """Feature flags distinguishing the reconstruction algorithms.

    ``isolate_replacement`` is a strict variant of baseline this
    reproduction adds for study: it keeps the replacement disk free of
    *all* user work by folding even writes to already-rebuilt units into
    parity and marking those units dirty for re-sweep. The replacement's
    write stream then stays perfectly sequential — but under sustained
    writes the sweep can reach an equilibrium where units are re-dirtied
    as fast as they are rebuilt, so reconstruction may never complete.
    The standard algorithms treat rebuilt units as live for writes.
    """

    name: str
    writes_to_replacement: bool
    redirect_reads: bool
    piggyback: bool
    isolate_replacement: bool = False

    def __post_init__(self):
        if self.piggyback and not self.redirect_reads:
            raise ValueError("piggybacking is defined as an addition to redirection")
        if self.redirect_reads and not self.writes_to_replacement:
            raise ValueError("redirection is defined as an addition to user-writes")
        if self.isolate_replacement and self.writes_to_replacement:
            raise ValueError("replacement isolation contradicts writing to it")

    def __str__(self) -> str:
        return self.name


BASELINE = ReconAlgorithm(
    name="baseline", writes_to_replacement=False, redirect_reads=False, piggyback=False
)
USER_WRITES = ReconAlgorithm(
    name="user-writes", writes_to_replacement=True, redirect_reads=False, piggyback=False
)
REDIRECT = ReconAlgorithm(
    name="redirect", writes_to_replacement=True, redirect_reads=True, piggyback=False
)
REDIRECT_PIGGYBACK = ReconAlgorithm(
    name="redirect+piggyback", writes_to_replacement=True, redirect_reads=True, piggyback=True
)

#: Strict replacement isolation (not one of the paper's four; see the
#: class docstring for why it can fail to converge under writes).
STRICT_BASELINE = ReconAlgorithm(
    name="strict-baseline",
    writes_to_replacement=False,
    redirect_reads=False,
    piggyback=False,
    isolate_replacement=True,
)

#: All four, in the paper's order.
ALGORITHMS: typing.Tuple[ReconAlgorithm, ...] = (
    BASELINE,
    USER_WRITES,
    REDIRECT,
    REDIRECT_PIGGYBACK,
)


def algorithm_by_name(name: str) -> ReconAlgorithm:
    """Look up a named algorithm (the paper's four plus strict-baseline)."""
    for algorithm in ALGORITHMS + (STRICT_BASELINE,):
        if algorithm.name == name:
            return algorithm
    raise ValueError(
        f"unknown reconstruction algorithm {name!r}; choose from "
        f"{[a.name for a in ALGORITHMS + (STRICT_BASELINE,)]}"
    )
