"""Reconstruction status map for the failed disk's units.

Tracks, per stripe-unit offset of the failed disk, whether the unit is
still lost, claimed by a sweep worker, or rebuilt on the replacement.
Units can become rebuilt either by the sweep or by user activity
(reconstruct-writes and piggybacked reads), and the map fires a
completion event when the last unit lands.
"""

from __future__ import annotations

import typing

UNBUILT = 0
CLAIMED = 1
BUILT = 2


class ReconStatus:
    """State machine over the failed disk's ``total_units`` offsets."""

    def __init__(self, env, total_units: int):
        if total_units < 1:
            raise ValueError(f"nothing to reconstruct: {total_units} units")
        self.env = env
        self.total_units = total_units
        self._state = bytearray(total_units)  # UNBUILT
        self.built_count = 0
        self.dirtied_count = 0
        self._cursor = 0  # next offset the sweep should look at
        self.complete_event = env.event()
        self.started_at = env.now
        self.completed_at: typing.Optional[float] = None
        #: Optional :class:`repro.metrics.registry.ProgressSeries`; the
        #: controller attaches one when a metrics registry is in play,
        #: turning rebuilt-unit counts into a progress time series.
        self.progress = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_built(self, offset: int) -> bool:
        return self._state[offset] == BUILT

    def is_claimed(self, offset: int) -> bool:
        return self._state[offset] == CLAIMED

    @property
    def all_built(self) -> bool:
        return self.built_count == self.total_units

    @property
    def fraction_built(self) -> float:
        return self.built_count / self.total_units

    # ------------------------------------------------------------------
    # Sweep claiming
    # ------------------------------------------------------------------
    def claim_next(self) -> typing.Optional[int]:
        """Claim the lowest unbuilt, unclaimed offset; None when exhausted.

        A simple single sweep in offset order — the paper's
        reconstruction is sequential so that replacement-disk writes
        stay cheap.
        """
        while self._cursor < self.total_units:
            offset = self._cursor
            self._cursor += 1
            if self._state[offset] == UNBUILT:
                self._state[offset] = CLAIMED
                return offset
        return None

    def unclaim(self, offset: int) -> None:
        """Return a claimed offset (e.g. found built under the lock)."""
        if self._state[offset] == CLAIMED:
            self._state[offset] = UNBUILT
            self._cursor = min(self._cursor, offset)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def mark_built(self, offset: int) -> None:
        """Record a unit as rebuilt (by the sweep or by user activity)."""
        if self._state[offset] == BUILT:
            return
        self._state[offset] = BUILT
        self.built_count += 1
        if self.progress is not None:
            self.progress.record(self.env.now, self.built_count)
        if self.all_built and not self.complete_event.triggered:
            self.completed_at = self.env.now
            self.complete_event.succeed(self.env.now - self.started_at)

    def mark_dirty(self, offset: int) -> None:
        """Invalidate a rebuilt unit whose write was folded into parity.

        The baseline algorithm sends no user work to the replacement:
        a write to an already-rebuilt lost unit updates the parity unit
        only, leaving the replacement's copy stale. The unit returns to
        the unbuilt pool and the sweep cursor backs up so a live worker
        rebuilds it again. No-op unless the unit is currently built.
        """
        if self._state[offset] != BUILT:
            return
        if self.complete_event.triggered:
            raise RuntimeError("cannot dirty a unit after reconstruction completed")
        self._state[offset] = UNBUILT
        self.built_count -= 1
        self.dirtied_count += 1
        self._cursor = min(self._cursor, offset)

    def reconstruction_time_ms(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("reconstruction has not completed")
        return self.completed_at - self.started_at
