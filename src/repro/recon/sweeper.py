"""The reconstruction sweep: single-threaded or N-way parallel.

Each worker repeatedly claims the next lost unit of the failed disk,
locks its parity stripe, reads all surviving units of that stripe in
parallel (the *read phase*), XORs them, and writes the recovered unit
to the replacement (the *write phase*). Section 8.1 shows a single
worker cannot keep any disk busy, so :class:`Reconstructor` runs a
configurable number of workers against a shared claim cursor.

Every cycle's read- and write-phase durations are recorded; Table 8-1
is the average of the last 300 cycles, where redirection is at its
most useful and piggybacking at its least.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass, field

from repro.disk.drive import KIND_RECON
from repro.faults.log import REBUILD_LOST
from repro.layout.base import UnitAddress

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.array.controller import ArrayController


@dataclass(frozen=True)
class CycleRecord:
    """One reconstruction cycle (one stripe unit rebuilt by the sweep)."""

    offset: int
    start_ms: float
    read_phase_ms: float
    write_phase_ms: float

    @property
    def cycle_ms(self) -> float:
        return self.read_phase_ms + self.write_phase_ms


@dataclass
class PhaseSummary:
    """Mean and standard deviation of a set of phase durations."""

    mean_ms: float
    std_ms: float
    count: int

    @classmethod
    def of(cls, samples: typing.Sequence[float]) -> "PhaseSummary":
        n = len(samples)
        if n == 0:
            return cls(mean_ms=0.0, std_ms=0.0, count=0)
        mean = sum(samples) / n
        variance = sum((s - mean) ** 2 for s in samples) / n
        return cls(mean_ms=mean, std_ms=math.sqrt(variance), count=n)


@dataclass
class ReconstructionResult:
    """Outcome of a completed reconstruction."""

    reconstruction_time_ms: float
    total_units: int
    swept_units: int          # distinct units rebuilt by the sweep itself
    user_built_units: int     # rebuilt by user writes / piggybacks
    resweeps: int             # extra cycles spent on baseline-dirtied units
    lost_units: int = 0       # units surrendered to a multi-failure
    cycles: typing.List[CycleRecord] = field(default_factory=list)

    def phase_summary(self, last_n: int = 300) -> typing.Tuple[PhaseSummary, PhaseSummary]:
        """(read phase, write phase) over the last ``last_n`` cycles."""
        tail = self.cycles[-last_n:]
        return (
            PhaseSummary.of([c.read_phase_ms for c in tail]),
            PhaseSummary.of([c.write_phase_ms for c in tail]),
        )


class Reconstructor:
    """Drives reconstruction of the failed disk on ``controller``.

    Parameters
    ----------
    controller:
        An array with a failed disk and an installed replacement.
    workers:
        Concurrent sweep processes (the paper evaluates 1 and 8).
    cycle_delay_ms:
        Reconstruction throttle (the paper's future-work extension):
        each worker idles this long between cycles, trading longer
        reconstruction for lower user response-time degradation.
    disk:
        The failed disk to rebuild; defaults to the earliest active
        failure. Dual-syndrome arrays run one Reconstructor per failed
        disk, concurrently — each sweeps its own disk and, on P+Q
        layouts, decodes through the *other* failure instead of
        aborting when a second disk dies mid-sweep.
    """

    def __init__(
        self,
        controller: "ArrayController",
        workers: int = 1,
        cycle_delay_ms: float = 0.0,
        disk: typing.Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if cycle_delay_ms < 0:
            raise ValueError(f"negative throttle delay {cycle_delay_ms}")
        if disk is None:
            disk = controller.faults.failed_disk
        status = (
            controller.recon_statuses.get(disk) if disk is not None else None
        )
        if status is None:
            raise RuntimeError("install a replacement before reconstructing")
        self.controller = controller
        self.disk = disk
        self.status = status
        self.workers = workers
        self.cycle_delay_ms = cycle_delay_ms
        self.cycles: typing.List[CycleRecord] = []
        self.lost_units = 0
        self._started = False

    def start(self):
        """Launch the sweep workers; returns the completion event.

        The completion event fires with the reconstruction time in ms.
        When it fires, the controller has already been returned to
        fault-free operation via :meth:`ArrayController.finish_repair`.
        """
        if self._started:
            raise RuntimeError("reconstruction already started")
        self._started = True
        env = self.controller.env
        status = self.status
        status.started_at = env.now
        for index in range(self.workers):
            env.process(self._worker(), name=f"recon-worker-{index}")
        env.process(self._finisher(), name="recon-finisher")
        return status.complete_event

    def result(self) -> ReconstructionResult:
        """Summary after completion (raises if reconstruction unfinished)."""
        status = self.status
        unique_swept = len({cycle.offset for cycle in self.cycles})
        return ReconstructionResult(
            reconstruction_time_ms=status.reconstruction_time_ms(),
            total_units=status.total_units,
            swept_units=unique_swept,
            user_built_units=status.total_units - unique_swept - self.lost_units,
            resweeps=len(self.cycles) - unique_swept,
            lost_units=self.lost_units,
            cycles=list(self.cycles),
        )

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _finisher(self):
        yield self.status.complete_event
        self.controller.finish_repair(self.disk)

    def _worker(self):
        controller = self.controller
        env = controller.env
        layout = controller.layout
        status = self.status
        failed = self.disk
        dual = layout.num_syndromes == 2
        while True:
            offset = status.claim_next()
            if offset is None:
                return
            stripe, _role = layout.stripe_of(failed, offset)
            yield controller.locks.acquire(stripe)
            try:
                if status.is_built(offset):
                    # A user reconstruct-write landed while we waited.
                    continue
                if controller._stripe_data_lost(stripe):
                    # A multi-failure destroyed more units of this
                    # stripe than the syndromes can recover: nothing
                    # left to rebuild the target from. Surrender the
                    # unit (marking it built lets the sweep terminate)
                    # and account the loss.
                    self._surrender(stripe, offset)
                    continue
                target = self._address(failed, offset)
                if dual:
                    # P+Q decode through up to one *other* dead unit —
                    # this is what lets a rebuild continue (rather than
                    # abort) when a second disk fails mid-sweep.
                    read_start = env.now
                    decoded, _erasures, ok = yield from controller._dual_stripe_decode(
                        stripe, treat_dead=(target,), kind=KIND_RECON,
                        repair_errored=True,
                    )
                    if not ok:
                        self._surrender(stripe, offset)
                        continue
                    value = controller._dual_unit_value(decoded, target)
                else:
                    peers = controller._surviving_peers(stripe, target)
                    value = controller._xor(
                        controller._ds_read(peer) for peer in peers
                    )
                    read_start = env.now
                    peer_events = [
                        controller._disk_access(peer, is_write=False, kind=KIND_RECON)
                        for peer in peers
                    ]
                    yield env.all_of(peer_events)
                    if controller._fault_enabled and any(
                        event.value.error is not None for event in peer_events
                    ):
                        # A peer was unreadable (latent error survived the
                        # retries): this unit cannot be rebuilt by the sweep.
                        self._surrender(stripe, offset)
                        continue
                write_start = env.now
                yield controller._disk_access(target, is_write=True, kind=KIND_RECON)
                controller._ds_write(target, value)
                status.mark_built(offset)
                self.cycles.append(
                    CycleRecord(
                        offset=offset,
                        start_ms=read_start,
                        read_phase_ms=write_start - read_start,
                        write_phase_ms=env.now - write_start,
                    )
                )
                if controller.metrics is not None:
                    controller.metrics.record_latency(
                        "recon-read", write_start - read_start, env.now
                    )
                    controller.metrics.record_latency(
                        "recon-write", env.now - write_start, env.now
                    )
            finally:
                controller.locks.release(stripe)
            if self.cycle_delay_ms > 0:
                yield env.timeout(self.cycle_delay_ms)

    def _surrender(self, stripe: int, offset: int) -> None:
        """Give up on a unit destroyed by a multi-failure.

        Marking it built is what lets the sweep terminate; the loss is
        accounted in ``lost_units`` and the fault log, never silently.
        """
        controller = self.controller
        self.lost_units += 1
        self.status.mark_built(offset)
        if controller.fault_log is not None:
            controller.fault_log.record(
                REBUILD_LOST, controller.env.now, stripe=stripe, offset=offset
            )

    @staticmethod
    def _address(disk: int, offset: int) -> UnitAddress:
        return UnitAddress(disk=disk, offset=offset)
