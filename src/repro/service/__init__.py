"""Simulation-as-a-service: an async job API over the sweep substrate.

The rest of the package turns "a script that runs experiments" into
"an engine that serves them":

- :mod:`repro.service.spec` — untrusted JSON job specs validated into
  :class:`~repro.experiments.runner.ScenarioConfig` points; the
  canonical spec is content-addressed, so identical submissions are
  one job;
- :mod:`repro.service.jobs` — the persistent job store: one atomic
  JSON document per job, states ``queued → running → done`` (or
  ``failed``/``cancelled``), crash recovery on startup;
- :mod:`repro.service.checkpoint` — trial-granular campaign
  checkpoints, so a killed service resumes a Monte Carlo campaign
  without rerunning finished trials;
- :mod:`repro.service.engine` — blocking job execution over
  :func:`~repro.sweep.run_sweep` (cache dedup, sharded worker
  processes, progress events, cancellation);
- :mod:`repro.service.server` — the asyncio HTTP server
  (``python -m repro serve``): submit/status/result endpoints plus a
  streaming NDJSON progress feed;
- :mod:`repro.service.client` — the stdlib HTTP client behind
  ``python -m repro job submit/list/status/watch/result/cancel``.
"""

from repro.service.checkpoint import CampaignCheckpoint
from repro.service.engine import EngineOptions, JobCancelled, execute_job
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobStore,
)
from repro.service.spec import JobSpec, SpecError, parse_spec

__all__ = [
    "CANCELLED",
    "CampaignCheckpoint",
    "DONE",
    "EngineOptions",
    "FAILED",
    "Job",
    "JobCancelled",
    "JobSpec",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "SpecError",
    "TERMINAL_STATES",
    "execute_job",
    "parse_spec",
]
