"""Trial-granular campaign checkpoints.

A Monte Carlo campaign is a list of independent trials; the only state
worth persisting mid-job is *which trials finished and what each one
measured*. The checkpoint stores exactly that — per-trial cursor plus
the :func:`~repro.experiments.campaign.trial_summary` facts the final
aggregation needs — so a service killed mid-campaign resumes without
rerunning finished trials, and the resumed aggregation is computed
from the same summaries an uninterrupted run would have produced.

Every record is an atomic whole-file rewrite (:mod:`repro.atomicio`):
cheap at campaign scale (one small JSON document per trial boundary)
and torn-write-proof by construction. A checkpoint whose identity
(total trial count, spec fingerprint) does not match the job is
discarded rather than trusted.
"""

from __future__ import annotations

import pathlib
import typing

from repro.atomicio import atomic_write_json, read_json

CHECKPOINT_FORMAT_VERSION = 1


class CampaignCheckpoint:
    """Completed-trial cursor + summaries for one campaign job."""

    def __init__(
        self,
        path: typing.Union[str, pathlib.Path],
        job_id: str,
        total_trials: int,
    ):
        self.path = pathlib.Path(path)
        self.job_id = job_id
        self.total_trials = total_trials
        #: trial index -> {"index", "config", "summary"}
        self.completed: typing.Dict[int, dict] = {}

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: typing.Union[str, pathlib.Path],
        job_id: str,
        total_trials: int,
    ) -> "CampaignCheckpoint":
        """Load a checkpoint, or start fresh if absent/mismatched."""
        checkpoint = cls(path, job_id, total_trials)
        document = read_json(path)
        if (
            isinstance(document, dict)
            and document.get("format") == CHECKPOINT_FORMAT_VERSION
            and document.get("job_id") == job_id
            and document.get("total_trials") == total_trials
            and isinstance(document.get("completed"), list)
        ):
            for entry in document["completed"]:
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("index"), int)
                    and 0 <= entry["index"] < total_trials
                    and isinstance(entry.get("summary"), dict)
                ):
                    checkpoint.completed[entry["index"]] = entry
        return checkpoint

    # ------------------------------------------------------------------
    @property
    def done_indices(self) -> typing.Set[int]:
        return set(self.completed)

    @property
    def complete(self) -> bool:
        return len(self.completed) >= self.total_trials

    def record(self, index: int, config_key: dict, summary: dict) -> None:
        """Persist one finished trial; atomic, idempotent."""
        self.completed[index] = {
            "index": index,
            "config": config_key,
            "summary": summary,
        }
        self.save()

    def save(self) -> None:
        atomic_write_json(
            self.path,
            {
                "format": CHECKPOINT_FORMAT_VERSION,
                "job_id": self.job_id,
                "total_trials": self.total_trials,
                "completed": [
                    self.completed[index] for index in sorted(self.completed)
                ],
            },
        )

    def summaries_in_order(self) -> typing.List[dict]:
        """Per-trial summaries for aggregation; requires completeness."""
        missing = [
            index for index in range(self.total_trials) if index not in self.completed
        ]
        if missing:
            raise ValueError(
                f"campaign checkpoint incomplete: trials {missing[:5]}"
                f"{'...' if len(missing) > 5 else ''} missing"
            )
        return [
            self.completed[index]["summary"] for index in range(self.total_trials)
        ]
