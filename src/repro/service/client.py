"""``python -m repro job ...`` — stdlib client for the job service.

Subcommands mirror the HTTP API one-to-one::

    repro job submit spec.json        POST /jobs        (use '-' for stdin)
    repro job list                    GET  /jobs
    repro job status <id>             GET  /jobs/<id>
    repro job watch <id>              GET  /jobs/<id>/events  (NDJSON)
    repro job result <id>             GET  /jobs/<id>/result
    repro job cancel <id>             POST /jobs/<id>/cancel

``watch`` (and ``submit --watch``) survives a killed or restarted
server: every event carries a per-job ``seq`` number, so when the
stream drops without a terminal state the client reconnects with
``?since=<last seq>&epoch=<stream epoch>`` and resumes where it left
off — bounded retries with exponential backoff, counters reset
whenever a reconnect actually makes progress. A restarted server
answers with a fresh epoch, which tells it to replay its (new) history
from the start rather than skip events the client never saw.

Exit codes follow the repro-wide convention: 0 success, 1 runtime
failure (connection refused, server error, job failed), 2 usage error
(bad arguments, unreadable spec file, spec rejected by validation).
Errors go to stderr as one-line messages, never tracebacks.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
import typing
import urllib.error
import urllib.parse
import urllib.request

DEFAULT_SERVER = "http://127.0.0.1:8765"

#: repro-wide exit codes (see repro.cli): usage errors are 2, runtime
#: failures are 1.
EXIT_OK = 0
EXIT_RUNTIME = 1
EXIT_USAGE = 2


#: Reconnect policy for ``watch`` when the event stream drops.
DEFAULT_WATCH_RETRIES = 5
DEFAULT_WATCH_BACKOFF_S = 0.5
MAX_WATCH_BACKOFF_S = 8.0


class ClientError(Exception):
    """A request failed; carries the exit code to use.

    ``retryable`` marks transient transport failures (connection
    refused, reset) that a watcher may retry; definitive server
    answers (HTTP 4xx/5xx) are not retryable.
    """

    def __init__(
        self,
        message: str,
        exit_code: int = EXIT_RUNTIME,
        retryable: bool = False,
    ):
        super().__init__(message)
        self.exit_code = exit_code
        self.retryable = retryable


class ServiceClient:
    """Minimal JSON-over-HTTP client (urllib, no dependencies)."""

    def __init__(self, base_url: str = DEFAULT_SERVER, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Stream epoch reported by the last ``events`` response; a
        #: reconnecting watcher echoes it back so the server can tell
        #: a resumed stream from one aimed at a restarted process.
        self.last_stream_epoch: typing.Optional[str] = None

    def _request(
        self,
        method: str,
        path: str,
        payload: typing.Optional[dict] = None,
    ) -> urllib.request.Request:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        return urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )

    def call(
        self,
        method: str,
        path: str,
        payload: typing.Optional[dict] = None,
    ) -> dict:
        """One request, parsed JSON response; :class:`ClientError` on failure."""
        request = self._request(method, path, payload)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            message = _error_message(error)
            # A rejected spec (400) is a usage error; everything else
            # the server reports is a runtime failure.
            code = EXIT_USAGE if error.code == 400 else EXIT_RUNTIME
            raise ClientError(
                f"{method} {path}: HTTP {error.code}: {message}", code
            ) from error
        except urllib.error.URLError as error:
            raise ClientError(
                f"cannot reach {self.base_url}: {error.reason}"
            ) from error
        except (ValueError, OSError) as error:
            raise ClientError(f"{method} {path}: {error}") from error

    def events(
        self,
        job_id: str,
        since: int = 0,
        epoch: typing.Optional[str] = None,
    ) -> typing.Iterator[dict]:
        """Follow a job's NDJSON event stream until it closes.

        ``since``/``epoch`` resume a dropped stream: the server skips
        the first ``since`` events when ``epoch`` matches its own, and
        replays from the start otherwise. A connection torn mid-stream
        ends the iterator cleanly (the caller decides whether the
        missing terminal state warrants a reconnect) — only an upfront
        HTTP error or an unreachable server raises.
        """
        path = f"/jobs/{job_id}/events"
        params = {}
        if since:
            params["since"] = str(since)
        if epoch:
            params["epoch"] = epoch
        if params:
            path += "?" + urllib.parse.urlencode(params)
        request = self._request("GET", path)
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise ClientError(
                f"GET /jobs/{job_id}/events: HTTP {error.code}: "
                f"{_error_message(error)}"
            ) from error
        except urllib.error.URLError as error:
            raise ClientError(
                f"cannot reach {self.base_url}: {error.reason}", retryable=True
            ) from error
        with response:
            self.last_stream_epoch = response.headers.get(
                "X-Repro-Stream-Epoch", self.last_stream_epoch
            )
            while True:
                try:
                    line = response.readline()
                except (OSError, http.client.HTTPException):
                    return  # stream torn mid-flight; caller reconnects
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except ValueError:
                    continue  # torn final line on disconnect


def _error_message(error: urllib.error.HTTPError) -> str:
    try:
        document = json.loads(error.read().decode("utf-8"))
        return str(document.get("error", document))
    except (ValueError, OSError):
        return error.reason or "unknown error"


def _print_json(document: typing.Any) -> None:
    print(json.dumps(document, indent=2, sort_keys=True))


def _load_spec(path: str) -> dict:
    try:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
    except OSError as error:
        raise ClientError(f"cannot read spec {path!r}: {error}", EXIT_USAGE)
    try:
        document = json.loads(text)
    except ValueError as error:
        raise ClientError(f"spec {path!r} is not valid JSON: {error}", EXIT_USAGE)
    if not isinstance(document, dict):
        raise ClientError(f"spec {path!r} must be a JSON object", EXIT_USAGE)
    return document


def _watch(
    client: ServiceClient,
    job_id: str,
    retries: int = DEFAULT_WATCH_RETRIES,
    backoff_s: float = DEFAULT_WATCH_BACKOFF_S,
    sleep: typing.Callable[[float], None] = time.sleep,
) -> int:
    """Stream events to stdout; exit by the job's terminal state.

    A stream that drops before a terminal state is reconnected with
    ``?since=<last seq>&epoch=<epoch>`` so already-printed events are
    not repeated. Up to ``retries`` consecutive barren attempts are
    made with exponential backoff; the counter resets whenever a
    reconnect delivers events.
    """
    final = None
    last_seq = 0
    epoch: typing.Optional[str] = None
    attempts = 0
    while True:
        progressed = False
        try:
            for event in client.events(job_id, since=last_seq, epoch=epoch):
                print(json.dumps(event, sort_keys=True), flush=True)
                progressed = True
                seq = event.get("seq")
                if isinstance(seq, int) and seq > 0:
                    last_seq = seq
                if event.get("event") == "state":
                    final = event.get("state")
        except ClientError as error:
            if not error.retryable:
                raise
        epoch = client.last_stream_epoch or epoch
        if final in ("done", "failed", "cancelled"):
            break
        if progressed:
            attempts = 0
        attempts += 1
        if attempts > retries:
            raise ClientError(
                f"job {job_id}: event stream lost after "
                f"{retries} reconnect attempt(s)"
            )
        delay = min(backoff_s * (2 ** (attempts - 1)), MAX_WATCH_BACKOFF_S)
        print(
            f"repro job: stream dropped before a terminal state; "
            f"reconnecting from seq {last_seq} in {delay:.1f}s "
            f"(attempt {attempts}/{retries})",
            file=sys.stderr,
        )
        sleep(delay)
    if final == "done":
        return EXIT_OK
    raise ClientError(f"job {job_id} ended {final}")


def cmd_submit(client: ServiceClient, args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    job = client.call("POST", "/jobs", spec)
    if not args.watch:
        _print_json(job)
        return EXIT_OK
    print(
        f"job {job.get('id')} {job.get('state')}"
        f"{' (existing)' if not job.get('created') else ''}",
        file=sys.stderr,
    )
    if job.get("state") in ("done", "failed", "cancelled"):
        _print_json(job)
        return EXIT_OK if job.get("state") == "done" else EXIT_RUNTIME
    return _watch(
        client, job["id"], retries=args.retries, backoff_s=args.backoff
    )


def cmd_list(client: ServiceClient, args: argparse.Namespace) -> int:
    document = client.call("GET", "/jobs")
    jobs = document.get("jobs", [])
    if args.json:
        _print_json(document)
        return EXIT_OK
    if not jobs:
        print("no jobs")
        return EXIT_OK
    print(f"{'id':16s}  {'kind':8s}  {'state':9s}  progress")
    for job in jobs:
        progress = job.get("progress") or {}
        completed = progress.get("completed", 0)
        total = progress.get("total", "?")
        print(
            f"{job.get('id', ''):16s}  {job.get('kind', ''):8s}  "
            f"{job.get('state', ''):9s}  {completed}/{total}"
        )
    return EXIT_OK


def cmd_status(client: ServiceClient, args: argparse.Namespace) -> int:
    _print_json(client.call("GET", f"/jobs/{args.job_id}"))
    return EXIT_OK


def cmd_watch(client: ServiceClient, args: argparse.Namespace) -> int:
    return _watch(
        client, args.job_id, retries=args.retries, backoff_s=args.backoff
    )


def cmd_result(client: ServiceClient, args: argparse.Namespace) -> int:
    _print_json(client.call("GET", f"/jobs/{args.job_id}/result"))
    return EXIT_OK


def cmd_cancel(client: ServiceClient, args: argparse.Namespace) -> int:
    _print_json(client.call("POST", f"/jobs/{args.job_id}/cancel"))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro job",
        description="Client for the repro simulation job service ('repro serve').",
    )
    parser.add_argument(
        "--server",
        default=DEFAULT_SERVER,
        metavar="URL",
        help=f"service base URL (default: {DEFAULT_SERVER})",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="per-request timeout in seconds (default: 60)",
    )
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")
    commands.required = True

    def add_watch_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--retries",
            type=int,
            default=DEFAULT_WATCH_RETRIES,
            metavar="N",
            help=(
                "consecutive reconnect attempts before giving up on a "
                f"dropped stream (default: {DEFAULT_WATCH_RETRIES})"
            ),
        )
        command.add_argument(
            "--backoff",
            type=float,
            default=DEFAULT_WATCH_BACKOFF_S,
            metavar="S",
            help=(
                "initial reconnect delay in seconds, doubled per attempt "
                f"up to {MAX_WATCH_BACKOFF_S:.0f}s "
                f"(default: {DEFAULT_WATCH_BACKOFF_S})"
            ),
        )

    submit = commands.add_parser("submit", help="submit a spec file ('-' = stdin)")
    submit.add_argument("spec", help="path to a JSON job spec, or '-' for stdin")
    submit.add_argument(
        "--watch",
        action="store_true",
        help="stream progress events until the job finishes",
    )
    add_watch_options(submit)
    submit.set_defaults(fn=cmd_submit)

    listing = commands.add_parser("list", help="list all jobs")
    listing.add_argument("--json", action="store_true", help="raw JSON output")
    listing.set_defaults(fn=cmd_list)

    status = commands.add_parser("status", help="show one job")
    status.add_argument("job_id")
    status.set_defaults(fn=cmd_status)

    watch = commands.add_parser("watch", help="stream a job's progress events")
    watch.add_argument("job_id")
    add_watch_options(watch)
    watch.set_defaults(fn=cmd_watch)

    result = commands.add_parser("result", help="fetch a finished job's result")
    result.add_argument("job_id")
    result.set_defaults(fn=cmd_result)

    cancel = commands.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job_id")
    cancel.set_defaults(fn=cmd_cancel)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = ServiceClient(args.server, timeout=args.timeout)
    try:
        return args.fn(client, args)
    except ClientError as error:
        print(f"repro job: {error}", file=sys.stderr)
        return error.exit_code
    except KeyboardInterrupt:
        return EXIT_RUNTIME


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(main())
