"""Blocking job execution: the engine the server drives from a thread.

:func:`execute_job` turns one persisted :class:`~repro.service.jobs.Job`
into a result document. All heavy lifting goes through
:func:`~repro.sweep.run_sweep` — content-addressed cache dedup first,
then sharding of the misses across worker processes — so the service
inherits exactly the execution semantics of the CLI, including the
guarantee that a warm resubmission touches no worker process at all.

Campaign jobs run trial-granular: every completed trial is recorded in
the job's :class:`~repro.service.checkpoint.CampaignCheckpoint` the
moment its result lands (via the sweep's ``on_event`` stream), so a
kill at any instant loses at most the trials still in flight. On
resume, checkpointed trials are skipped entirely and the final rows
are aggregated from checkpoint summaries through the same
:func:`~repro.experiments.campaign.rows_from_summaries` path the CLI
uses — interrupted and uninterrupted campaigns cannot diverge.

Per-point reports come from
:func:`repro.metrics.report.document_report`, the same function behind
``repro report --json``.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.experiments.campaign import rows_from_summaries, trial_summary
from repro.metrics.report import document_report
from repro.service.checkpoint import CampaignCheckpoint
from repro.service.jobs import Job, JobStore
from repro.service.spec import JobSpec, spec_from_normalized
from repro.sweep import (
    ResultCache,
    SweepCancelled,
    SweepOptions,
    result_from_dict,
    run_sweep,
)

ProgressFn = typing.Callable[[dict], None]


class JobCancelled(Exception):
    """The job's cancel token fired; the job ends in state ``cancelled``."""


@dataclass
class EngineOptions:
    """How the engine executes jobs (shared by every job of a service)."""

    cache: typing.Optional[ResultCache] = None
    #: Worker processes per job; 1 runs points in the engine thread.
    workers: int = 1
    retries: int = 2
    timeout_s: typing.Optional[float] = None
    #: Test hook: replaces the simulation (key dict -> result dict),
    #: forwarded to :func:`run_sweep`'s ``execute``.
    execute: typing.Optional[typing.Callable[[dict], dict]] = None


def condense_metrics(
    metrics: typing.Optional[typing.Mapping],
) -> typing.Optional[dict]:
    """The streamable slice of a MetricsRegistry snapshot.

    Progress events ride an NDJSON stream; full per-disk rows and
    progress series would bloat every line, so events carry counters
    and the per-class latency quantiles only. The full snapshot stays
    on the result document.
    """
    if not metrics:
        return None
    latency = metrics.get("latency_ms") or {}
    return {
        "window_ms": metrics.get("window_ms"),
        "counters": dict(metrics.get("counters") or {}),
        "latency_ms": {
            klass: {
                name: entry[name]
                for name in ("count", "mean", "p50", "p90", "p99")
                if name in entry
            }
            for klass, entry in sorted(latency.items())
        },
    }


def all_cached(spec: JobSpec, cache: typing.Optional[ResultCache]) -> bool:
    """Would this job be served entirely from cache, with no workers?"""
    if cache is None:
        return False
    return all(cache.get_dict(config) is not None for config in spec.configs)


def _sweep_options(
    options: EngineOptions,
    on_event: typing.Callable,
    cancel: typing.Optional[typing.Any],
) -> SweepOptions:
    return SweepOptions(
        jobs=options.workers,
        cache=options.cache,
        retries=options.retries,
        timeout_s=options.timeout_s,
        strict=True,
        on_event=on_event,
        cancel=cancel,
    )


def _point_report(result) -> dict:
    from repro.sweep import result_to_dict

    return {
        "config": result.config.to_key(),
        "report": document_report(result_to_dict(result)),
    }


def _run_points(
    spec: JobSpec,
    job: Job,
    options: EngineOptions,
    progress: ProgressFn,
    cancel: typing.Optional[typing.Any],
) -> dict:
    """Scenario/sweep jobs: one run_sweep over every point."""

    def on_event(event) -> None:
        job.progress.update(completed=event.completed, total=event.total)
        progress(
            {
                "event": "point",
                "kind": event.kind,
                "index": event.index,
                "completed": event.completed,
                "total": event.total,
                "message": event.message,
            }
        )

    try:
        outcome = run_sweep(
            spec.configs,
            _sweep_options(options, on_event, cancel),
            execute=options.execute,
        )
    except SweepCancelled as error:
        raise JobCancelled(str(error)) from error
    summary = outcome.summary
    return {
        "kind": spec.kind,
        "points": [_point_report(result) for result in outcome.results],
        "sweep": {
            "total": summary.total,
            "executed": summary.executed,
            "cache_hits": summary.cache_hits,
            "failures": summary.failures,
            "retries": summary.retries,
        },
    }


def _run_campaign(
    spec: JobSpec,
    job: Job,
    store: JobStore,
    options: EngineOptions,
    progress: ProgressFn,
    cancel: typing.Optional[typing.Any],
) -> dict:
    """Campaign jobs: trial-granular execution with checkpoint/resume."""
    assert spec.campaign is not None
    total = len(spec.configs)
    checkpoint = CampaignCheckpoint.load(
        store.checkpoint_path(job.id), job.id, total
    )
    resumed = len(checkpoint.completed)
    job.progress.update(
        total=total, completed=resumed, trials_from_checkpoint=resumed
    )
    if resumed:
        progress(
            {
                "event": "resume",
                "trials_from_checkpoint": resumed,
                "total": total,
            }
        )

    remaining = [
        (index, config)
        for index, config in enumerate(spec.configs)
        if index not in checkpoint.done_indices
    ]
    original_index = [index for index, _config in remaining]
    counts = {"executed": 0, "cache_hits": 0}

    def on_event(event) -> None:
        if (
            event.kind in ("executed", "cache-hit")
            and event.result is not None
            and event.index is not None
        ):
            index = original_index[event.index]
            result = result_from_dict(event.result)
            summary = trial_summary(result)
            # Checkpoint BEFORE announcing: once a trial is visible on
            # the progress stream it survives any kill.
            checkpoint.record(index, result.config.to_key(), summary)
            counts["executed" if event.kind == "executed" else "cache_hits"] += 1
            job.progress.update(completed=len(checkpoint.completed))
            progress(
                {
                    "event": "trial",
                    "kind": event.kind,
                    "index": index,
                    "completed": len(checkpoint.completed),
                    "total": total,
                    "data_lost": summary["data_lost"],
                    "metrics": condense_metrics(result.metrics),
                }
            )
        elif event.kind in ("failed", "retried", "note"):
            progress(
                {
                    "event": "point",
                    "kind": event.kind,
                    "index": (
                        original_index[event.index]
                        if event.index is not None
                        else None
                    ),
                    "completed": len(checkpoint.completed),
                    "total": total,
                    "message": event.message,
                }
            )

    if remaining:
        try:
            run_sweep(
                [config for _index, config in remaining],
                _sweep_options(options, on_event, cancel),
                execute=options.execute,
            )
        except SweepCancelled as error:
            raise JobCancelled(str(error)) from error

    summaries = checkpoint.summaries_in_order()
    rows = rows_from_summaries(
        summaries,
        spec.campaign["trials"],
        spec.campaign["mission_hours"],
    )
    return {
        "kind": "campaign",
        "rows": rows,
        "trials": [checkpoint.completed[index] for index in range(total)],
        "sweep": {
            "total": total,
            "executed": counts["executed"],
            "cache_hits": counts["cache_hits"],
            "trials_from_checkpoint": resumed,
            "failures": 0,
        },
    }


def execute_job(
    job: Job,
    store: JobStore,
    options: EngineOptions,
    progress: typing.Optional[ProgressFn] = None,
    cancel: typing.Optional[typing.Any] = None,
) -> dict:
    """Run one job to completion; persist and return its result document.

    Blocking — the server calls this from an executor thread. Raises
    :class:`JobCancelled` if the cancel token fires, and lets execution
    errors (:class:`~repro.sweep.SweepError` and friends) propagate for
    the caller to record on the job.
    """
    progress = progress or (lambda event: None)
    spec = spec_from_normalized(job.spec)
    job.progress.setdefault("total", len(spec.configs))
    if spec.kind == "campaign":
        document = _run_campaign(spec, job, store, options, progress, cancel)
    else:
        document = _run_points(spec, job, options, progress, cancel)
    store.save_result(job.id, document)
    return document
