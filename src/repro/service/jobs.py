"""First-class jobs and their persistent store.

One job is one submitted spec: content-addressed id, lifecycle state
(``queued → running → done | failed | cancelled``), progress counters,
and — once finished — a result document. Each job persists as a single
JSON file written atomically (:mod:`repro.atomicio`), so a killed
service never leaves a torn job record, and a restarted service
recovers exactly the jobs that were in flight.

The store is a directory::

    <data_dir>/jobs/<id>.json             job record
    <data_dir>/jobs/<id>.result.json      result document (terminal jobs)
    <data_dir>/jobs/<id>.checkpoint.json  campaign trial checkpoint

Submission order is a persisted sequence number, not a wall-clock
timestamp, so recovery replays the queue in the original order without
reading the host clock.
"""

from __future__ import annotations

import pathlib
import typing
from dataclasses import asdict, dataclass, field

from repro.atomicio import atomic_write_json, read_json

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

JOB_FORMAT_VERSION = 1


@dataclass
class Job:
    """One submitted spec and everything known about its execution."""

    id: str
    kind: str
    spec: dict
    state: str = QUEUED
    seq: int = 0
    error: typing.Optional[str] = None
    #: Running counters: total/completed/executed/cache_hits/failures,
    #: plus trials_from_checkpoint for resumed campaigns.
    progress: typing.Dict[str, typing.Any] = field(default_factory=dict)
    #: True once a cancel was requested (the state flips to
    #: ``cancelled`` at the next point boundary).
    cancel_requested: bool = False
    #: How many times this job resumed after a service restart.
    resumes: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        document = asdict(self)
        document["format"] = JOB_FORMAT_VERSION
        return document

    @classmethod
    def from_dict(cls, document: typing.Mapping) -> "Job":
        return cls(
            id=document["id"],
            kind=document["kind"],
            spec=dict(document["spec"]),
            state=document.get("state", QUEUED),
            seq=int(document.get("seq", 0)),
            error=document.get("error"),
            progress=dict(document.get("progress") or {}),
            cancel_requested=bool(document.get("cancel_requested", False)),
            resumes=int(document.get("resumes", 0)),
        )


class JobStore:
    """Directory-backed job persistence with atomic writes."""

    def __init__(self, directory: typing.Union[str, pathlib.Path]):
        self.directory = pathlib.Path(directory)
        self.jobs_dir = self.directory / "jobs"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def job_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.json"

    def result_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.result.json"

    def checkpoint_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.checkpoint.json"

    # ------------------------------------------------------------------
    # Job records
    # ------------------------------------------------------------------
    def load(self, job_id: str) -> typing.Optional[Job]:
        document = read_json(self.job_path(job_id))
        if not isinstance(document, dict):
            return None
        if document.get("format") != JOB_FORMAT_VERSION:
            return None
        try:
            return Job.from_dict(document)
        except (KeyError, TypeError, ValueError):
            return None

    def save(self, job: Job) -> None:
        atomic_write_json(self.job_path(job.id), job.to_dict())

    def list(self) -> typing.List[Job]:
        """Every stored job, in submission order."""
        jobs = []
        if self.jobs_dir.is_dir():
            for path in sorted(self.jobs_dir.glob("*.json")):
                if path.name.endswith((".result.json", ".checkpoint.json")):
                    continue
                document = read_json(path)
                if (
                    isinstance(document, dict)
                    and document.get("format") == JOB_FORMAT_VERSION
                ):
                    try:
                        jobs.append(Job.from_dict(document))
                    except (KeyError, TypeError, ValueError):
                        continue
        jobs.sort(key=lambda job: (job.seq, job.id))
        return jobs

    def next_seq(self) -> int:
        jobs = self.list()
        return (max(job.seq for job in jobs) + 1) if jobs else 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def save_result(self, job_id: str, document: dict) -> None:
        atomic_write_json(self.result_path(job_id), document)

    def load_result(self, job_id: str) -> typing.Optional[dict]:
        document = read_json(self.result_path(job_id))
        return document if isinstance(document, dict) else None

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> typing.List[Job]:
        """Requeue interrupted jobs; return everything runnable.

        A job found in ``running`` state was interrupted by a kill: it
        goes back to ``queued`` (its campaign checkpoint, if any, keeps
        the finished trials). The returned list is every queued job in
        submission order, ready to enqueue.
        """
        runnable = []
        for job in self.list():
            if job.state == RUNNING:
                job.state = QUEUED
                job.resumes += 1
                self.save(job)
            if job.state == QUEUED:
                runnable.append(job)
        return runnable
