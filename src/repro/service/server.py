"""``python -m repro serve`` — the asyncio HTTP job service.

A deliberately small HTTP/1.1 server on stdlib asyncio streams (no new
dependencies): one request per connection, JSON in, JSON out, plus one
streaming endpoint. Endpoints:

- ``POST /jobs`` — submit a spec (see :mod:`repro.service.spec`).
  Returns 201 with the job, or 200 with the *existing* job when an
  identical spec was submitted before (dedup by content address). A
  spec whose every point is already in the result cache completes
  inline — the response is already ``done`` and no worker ran.
- ``GET /jobs`` — all jobs, in submission order.
- ``GET /jobs/{id}`` — one job's state and progress.
- ``GET /jobs/{id}/events`` — NDJSON progress stream: replays the
  job's event history, then follows live events (sweep progress,
  per-trial campaign summaries with condensed metrics snapshots) until
  the job reaches a terminal state. Every event carries a per-job
  ``seq`` number and the response carries an ``X-Repro-Stream-Epoch``
  header (one value per server process): a reconnecting watcher sends
  ``?since=N&epoch=E`` to resume after the last event it saw. A
  matching epoch skips the first ``N`` events; a stale epoch (the
  server restarted, so sequence numbers restarted too) replays the new
  process's history from the start.
- ``GET /jobs/{id}/result`` — the result document (409 until done).
- ``POST /jobs/{id}/cancel`` — cancel: a queued job immediately, a
  running job at its next point boundary.
- ``GET /healthz`` — liveness.

Execution: queued jobs feed ``--max-jobs`` concurrent runner tasks;
each drives :func:`repro.service.engine.execute_job` in a thread, and
the engine shards cache misses over ``--workers`` worker processes.
On startup the store is recovered: jobs found ``running`` (a previous
process was killed) are requeued and — for campaigns — resume from
their trial checkpoint.
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import json
import os
import sys
import threading
import typing
import urllib.parse
import uuid

from repro._version import __version__
from repro.array.faults import DataLossError
from repro.atomicio import atomic_write_json
from repro.service import engine as engine_mod
from repro.service.engine import EngineOptions, JobCancelled
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
)
from repro.service.spec import JobSpec, SpecError, parse_spec
from repro.sweep import ResultCache

MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_LINES = 100

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _EventLog:
    """In-memory per-job event history + wakeup for streaming readers."""

    def __init__(self) -> None:
        self.history: typing.List[dict] = []
        self.changed = asyncio.Condition()


class _Request:
    def __init__(self, method: str, path: str, headers: dict, body: bytes,
                 query: typing.Optional[dict] = None):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        #: Last value per query-string parameter (parsed, URL-decoded).
        self.query: typing.Dict[str, str] = query or {}

    def json(self) -> typing.Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise SpecError(f"request body is not valid JSON: {error}") from error


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class Service:
    """Job state, queue, and executors behind the HTTP handlers.

    ``execute`` is a test hook forwarded to the engine (it replaces the
    simulation itself, key dict → result dict); production code leaves
    it None.
    """

    def __init__(
        self,
        data_dir: typing.Union[str, os.PathLike],
        cache_dir: typing.Union[str, os.PathLike, None] = None,
        workers: int = 1,
        max_jobs: int = 1,
        execute: typing.Optional[typing.Callable[[dict], dict]] = None,
    ):
        self.store = JobStore(data_dir)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.engine_options = EngineOptions(
            cache=self.cache, workers=workers, execute=execute
        )
        self.max_jobs = max_jobs
        #: One value per server process: lets a reconnecting watcher
        #: detect that event sequence numbers restarted with us.
        self.epoch = uuid.uuid4().hex[:12]
        self._jobs: typing.Dict[str, Job] = {}
        self._logs: typing.Dict[str, _EventLog] = {}
        self._cancels: typing.Dict[str, threading.Event] = {}
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._runners: typing.List[asyncio.Task] = []
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_jobs, thread_name_prefix="repro-job"
        )
        self._loop: typing.Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Recover persisted jobs and start the runner tasks."""
        self._loop = asyncio.get_running_loop()
        for job in self.store.recover():
            self._jobs[job.id] = job
            self._log_for(job.id)
            await self._queue.put(job.id)
        for job in self.store.list():
            self._jobs.setdefault(job.id, job)
        for _ in range(self.max_jobs):
            self._runners.append(asyncio.ensure_future(self._runner()))

    async def close(self) -> None:
        for task in self._runners:
            task.cancel()
        for task in self._runners:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _log_for(self, job_id: str) -> _EventLog:
        log = self._logs.get(job_id)
        if log is None:
            log = self._logs[job_id] = _EventLog()
        return log

    def _emit(self, job_id: str, event: dict) -> None:
        """Append an event and wake streaming readers (loop thread only)."""
        log = self._log_for(job_id)
        event = dict(event)
        event["seq"] = len(log.history) + 1
        log.history.append(event)

        async def _notify() -> None:
            async with log.changed:
                log.changed.notify_all()

        asyncio.ensure_future(_notify())

    def _emit_threadsafe(self, job_id: str, event: dict) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._emit, job_id, event)

    # ------------------------------------------------------------------
    # Job transitions
    # ------------------------------------------------------------------
    def _set_state(
        self, job: Job, state: str, error: typing.Optional[str] = None
    ) -> None:
        job.state = state
        job.error = error
        self.store.save(job)
        event: typing.Dict[str, typing.Any] = {
            "event": "state",
            "job": job.id,
            "state": state,
        }
        if error is not None:
            event["error"] = error
        if state in (DONE, FAILED, CANCELLED):
            event["progress"] = dict(job.progress)
        self._emit(job.id, event)

    async def submit(self, raw_spec: typing.Any) -> typing.Tuple[Job, bool]:
        """Validate, dedup, persist, and schedule one submission.

        Returns ``(job, created)``. An identical spec maps to the same
        job id: ``done``/``running``/``queued`` jobs are returned as
        they are; a ``failed`` or ``cancelled`` job is requeued.
        """
        spec = parse_spec(raw_spec)
        job_id = spec.job_id()
        job = self._jobs.get(job_id) or self.store.load(job_id)
        if job is not None:
            self._jobs[job_id] = job
            if job.state in (FAILED, CANCELLED):
                job.error = None
                job.cancel_requested = False
                self._cancels.pop(job_id, None)
                self._set_state(job, QUEUED)
                await self._queue.put(job_id)
            return job, False
        job = Job(
            id=job_id,
            kind=spec.kind,
            spec=spec.document,
            seq=self.store.next_seq(),
            progress={"total": len(spec.configs), "completed": 0},
        )
        self._jobs[job_id] = job
        self._log_for(job_id)
        self.store.save(job)
        self._emit(job.id, {"event": "state", "job": job.id, "state": QUEUED})
        if engine_mod.all_cached(spec, self.cache):
            # Every point is already in the content-addressed cache:
            # serve the job inline, without touching the worker queue.
            await self._run_job(job)
        else:
            await self._queue.put(job_id)
        return job, True

    async def cancel(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        if job.terminal:
            raise _HttpError(409, f"job is already {job.state}")
        job.cancel_requested = True
        self._cancels.setdefault(job_id, threading.Event()).set()
        if job.state == QUEUED:
            self._set_state(job, CANCELLED)
        else:
            self.store.save(job)
        return job

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _runner(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                continue  # cancelled (or superseded) while queued
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None
        cancel = self._cancels.setdefault(job.id, threading.Event())
        if cancel.is_set():
            self._set_state(job, CANCELLED)
            return
        self._set_state(job, RUNNING)

        def progress(event: dict, job_id: str = job.id) -> None:
            self._emit_threadsafe(job_id, event)

        try:
            await self._loop.run_in_executor(
                self._executor,
                engine_mod.execute_job,
                job,
                self.store,
                self.engine_options,
                progress,
                cancel,
            )
        except JobCancelled:
            self._set_state(job, CANCELLED)
        except SpecError as error:
            self._set_state(job, FAILED, error=f"stored spec unusable: {error}")
        except DataLossError as error:
            # A data-loss outcome that escapes the engine is still a
            # result, not a flake: record it verbatim on the job.
            self._set_state(job, FAILED, error=f"data loss: {error}")
        except Exception as error:
            self._set_state(job, FAILED, error=str(error) or repr(error))
        else:
            self._set_state(job, DONE)

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------
    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(request, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            pass
        except _HttpError as error:
            await self._send_json(
                writer, error.status, {"error": error.message}, best_effort=True
            )
        except DataLossError as error:  # pragma: no cover - engine records it
            await self._send_json(
                writer, 500, {"error": f"internal error: {error}"}, best_effort=True
            )
        except Exception as error:
            await self._send_json(
                writer, 500, {"error": f"internal error: {error}"}, best_effort=True
            )
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - socket already gone
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> typing.Optional[_Request]:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        if not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError as error:
            raise _HttpError(400, "malformed request line") from error
        headers: typing.Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as error:
            raise _HttpError(400, "bad Content-Length") from error
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        path, _sep, query_string = target.partition("?")
        query = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(query_string).items()
        }
        return _Request(method.upper(), path, headers, body, query=query)

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: typing.Any,
        best_effort: bool = False,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            if not best_effort:
                raise

    def _job_payload(self, job: Job) -> dict:
        return job.to_dict()

    async def _route(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/" and method == "GET":
            by_state: typing.Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            await self._send_json(
                writer,
                200,
                {
                    "service": "repro",
                    "version": __version__,
                    "jobs": {state: by_state[state] for state in sorted(by_state)},
                },
            )
            return
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
            return
        if path == "/jobs":
            if method == "POST":
                try:
                    job, created = await self.submit(request.json())
                except SpecError as error:
                    raise _HttpError(400, str(error)) from error
                payload = self._job_payload(job)
                payload["created"] = created
                await self._send_json(writer, 201 if created else 200, payload)
                return
            if method == "GET":
                jobs = sorted(
                    self._jobs.values(), key=lambda job: (job.seq, job.id)
                )
                await self._send_json(
                    writer, 200, {"jobs": [self._job_payload(job) for job in jobs]}
                )
                return
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            parts = path.split("/")  # ['', 'jobs', id, tail?]
            job_id = parts[2]
            tail = parts[3] if len(parts) > 3 else None
            if tail is None and method == "GET":
                job = self._jobs.get(job_id)
                if job is None:
                    raise _HttpError(404, f"no such job: {job_id}")
                await self._send_json(writer, 200, self._job_payload(job))
                return
            if tail == "cancel" and method == "POST":
                job = await self.cancel(job_id)
                await self._send_json(writer, 200, self._job_payload(job))
                return
            if tail == "result" and method == "GET":
                job = self._jobs.get(job_id)
                if job is None:
                    raise _HttpError(404, f"no such job: {job_id}")
                if job.state != DONE:
                    raise _HttpError(409, f"job is {job.state}, not done")
                result = self.store.load_result(job_id)
                if result is None:
                    raise _HttpError(500, "result document missing")
                await self._send_json(
                    writer, 200, {"job": self._job_payload(job), "result": result}
                )
                return
            if tail == "events" and method == "GET":
                try:
                    since = int(request.query.get("since", "0"))
                except ValueError as error:
                    raise _HttpError(400, "'since' must be an integer") from error
                if since < 0:
                    raise _HttpError(400, "'since' must be non-negative")
                await self._stream_events(
                    writer, job_id, since=since,
                    epoch=request.query.get("epoch"),
                )
                return
        raise _HttpError(404, f"no route for {method} {request.path}")

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        since: int = 0,
        epoch: typing.Optional[str] = None,
    ) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            f"X-Repro-Stream-Epoch: {self.epoch}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        log = self._log_for(job_id)
        if not log.history and job.terminal:
            # Restarted service: history predates this process. Replay
            # the one fact that persists — the terminal state.
            self._emit(
                job.id, {"event": "state", "job": job.id, "state": job.state}
            )
        # A matching epoch resumes after the last event the client saw;
        # any other epoch means the sequence restarted with this
        # process, so its history replays from the start.
        position = min(since, len(log.history)) if epoch == self.epoch else 0
        if job.terminal and position >= len(log.history) and log.history:
            # Nothing left to say and nothing more will come: re-send
            # the terminal event so the stream ends instead of hanging.
            position = len(log.history) - 1
        try:
            while True:
                while position < len(log.history):
                    event = log.history[position]
                    position += 1
                    writer.write(
                        (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                    )
                    await writer.drain()
                    if event.get("event") == "state" and event.get("state") in (
                        DONE,
                        FAILED,
                        CANCELLED,
                    ):
                        return
                async with log.changed:
                    if position >= len(log.history):
                        await log.changed.wait()
        except (ConnectionResetError, BrokenPipeError):
            return  # reader went away; nothing to clean up


async def _serve(args: argparse.Namespace) -> int:
    service = Service(
        data_dir=args.data_dir,
        cache_dir=args.cache_dir,
        workers=args.workers,
        max_jobs=args.max_jobs,
    )
    await service.start()
    server = await asyncio.start_server(service.handle_client, args.host, args.port)
    sockets = server.sockets or []
    port = sockets[0].getsockname()[1] if sockets else args.port
    print(
        f"repro serve: listening on http://{args.host}:{port} "
        f"(data={args.data_dir}, cache={args.cache_dir}, "
        f"workers={args.workers}, max-jobs={args.max_jobs})",
        flush=True,
    )
    if args.port_file:
        atomic_write_json(
            args.port_file,
            {"host": args.host, "port": port, "pid": os.getpid()},
        )
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the simulation job service: an HTTP API that accepts "
            "scenario/sweep/campaign specs, dedups them against the "
            "content-addressed result cache, shards misses across worker "
            "processes, streams progress, and checkpoints campaigns for "
            "kill-safe resume."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 picks an ephemeral port (default: 8765)",
    )
    parser.add_argument(
        "--data-dir",
        default=os.path.join("results", "service"),
        help="job store location (default: results/service)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "sweep result cache shared with CLI runs (default: "
            "$REPRO_SWEEP_CACHE or results/sweep-cache; 'none' disables)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per job (default: 1, in-process)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=1,
        metavar="N",
        help="jobs executed concurrently (default: 1)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write {host, port, pid} JSON here once listening",
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.port < 0 or args.port > 65535:
        print("repro serve: --port must be 0..65535", file=sys.stderr)
        return 2
    if args.workers < 1 or args.max_jobs < 1:
        print("repro serve: --workers and --max-jobs must be >= 1", file=sys.stderr)
        return 2
    if args.cache_dir is None:
        from repro.sweep import default_cache_dir

        args.cache_dir = str(default_cache_dir())
    elif args.cache_dir.lower() == "none":
        args.cache_dir = None
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli
    sys.exit(main())
