"""Job specs: untrusted JSON in, validated scenario configs out.

A client submits one of three spec kinds:

``{"kind": "scenario", "config": {...}}``
    One :class:`~repro.experiments.runner.ScenarioConfig` canonical key
    (the same form :meth:`ScenarioConfig.to_key` emits — algorithm by
    name, scale by preset name or fields).

``{"kind": "sweep", "axes": [["field", [v, ...]], ...], "base": {...}}``
    A parameter grid, crossed row-major with the first axis slowest —
    the exact enumeration :class:`~repro.sweep.grid.SweepSpec` uses, so
    a sweep submitted to the service addresses the same cache entries
    as the CLI figure that defined it.

``{"kind": "campaign", "stripe_sizes": [...], "trials": N, ...}``
    A Monte Carlo fault campaign (the grid of
    :func:`repro.experiments.campaign.campaign_spec`), executed
    trial-granular with checkpoint/resume.

Validation is strict and total: any malformed document raises
:class:`SpecError` with a human-readable message — the service maps it
to a 400 response, never a traceback. The validated spec normalizes to
a canonical JSON document whose SHA-256 is the job id, so two requests
describing the same work — whatever their spelling — are one job.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import typing
from dataclasses import dataclass, field

from repro._version import __version__
from repro.experiments.campaign import (
    CAMPAIGN_PQ_STRIPE_SIZES,
    CAMPAIGN_STRIPE_SIZES,
    MISSION_HOURS,
    TRIALS,
    campaign_spec,
)
from repro.experiments.runner import ScenarioConfig

#: Bump when the normalized spec layout changes; separates job ids the
#: way the sweep cache separates result formats.
#: v2: normalized configs carry ScenarioConfig.layout (implementation
#: family), so every stored config key changed shape.
SPEC_FORMAT_VERSION = 2

KINDS = ("scenario", "sweep", "campaign")

#: Upper bound on points per job: a typo'd axis must not enqueue a
#: million simulations.
MAX_POINTS = 4096


class SpecError(ValueError):
    """A submitted job spec is invalid; ``str(error)`` says why."""


@dataclass
class JobSpec:
    """A validated job: its kind, its points, and campaign parameters."""

    kind: str
    configs: typing.List[ScenarioConfig]
    #: Campaign aggregation parameters; None for scenario/sweep jobs.
    campaign: typing.Optional[dict] = None
    #: The normalized, JSON-safe document this spec round-trips through.
    document: dict = field(default_factory=dict)

    def job_id(self) -> str:
        """Content address of the normalized spec (+ versions)."""
        payload = json.dumps(
            {
                "spec_format": SPEC_FORMAT_VERSION,
                "package_version": __version__,
                "spec": self.document,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _require_mapping(document: typing.Any) -> typing.Mapping:
    if not isinstance(document, dict):
        raise SpecError(
            f"spec must be a JSON object, got {type(document).__name__}"
        )
    return document


def _config_from_key(key: typing.Any, where: str) -> ScenarioConfig:
    if not isinstance(key, dict):
        raise SpecError(f"{where} must be a JSON object of ScenarioConfig fields")
    try:
        return ScenarioConfig.from_key(key)
    except (TypeError, ValueError, KeyError) as error:
        raise SpecError(f"invalid {where}: {error}") from error


def _parse_scenario(document: typing.Mapping) -> JobSpec:
    config = _config_from_key(document.get("config"), "scenario config")
    return JobSpec(
        kind="scenario",
        configs=[config],
        document={"kind": "scenario", "configs": [config.to_key()]},
    )


def _parse_sweep(document: typing.Mapping) -> JobSpec:
    axes = document.get("axes")
    if not isinstance(axes, (list, tuple)) or not axes:
        raise SpecError("sweep spec needs a non-empty 'axes' list")
    names: typing.List[str] = []
    value_lists: typing.List[typing.Sequence] = []
    for axis in axes:
        if (
            not isinstance(axis, (list, tuple))
            or len(axis) != 2
            or not isinstance(axis[0], str)
        ):
            raise SpecError(
                "each axis must be a ['field_name', [values...]] pair"
            )
        name, values = axis
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(f"axis {name!r} needs a non-empty list of values")
        if name in names:
            raise SpecError(f"axis {name!r} appears twice")
        names.append(name)
        value_lists.append(values)
    base = document.get("base", {})
    if not isinstance(base, dict):
        raise SpecError("'base' must be a JSON object of ScenarioConfig fields")
    for name in names:
        if name in base:
            raise SpecError(f"{name!r} is both an axis and a base field")
    size = 1
    for values in value_lists:
        size *= len(values)
    if size > MAX_POINTS:
        raise SpecError(f"sweep enumerates {size} points; the limit is {MAX_POINTS}")
    # Row-major, first axis slowest — SweepSpec's enumeration order.
    # Each point goes through ScenarioConfig.from_key so axis values may
    # be canonical-key forms (algorithm names, scale field dicts).
    configs = [
        _config_from_key(
            {**base, **dict(zip(names, combo))}, f"sweep point {index}"
        )
        for index, combo in enumerate(itertools.product(*value_lists))
    ]
    return JobSpec(
        kind="sweep",
        configs=configs,
        document={"kind": "sweep", "configs": [c.to_key() for c in configs]},
    )


def _parse_campaign(document: typing.Mapping) -> JobSpec:
    scale = document.get("scale", "tiny")
    if not isinstance(scale, str) or scale not in TRIALS:
        raise SpecError(
            f"campaign 'scale' must be one of {sorted(TRIALS)}, got {scale!r}"
        )
    syndromes = document.get("syndromes", 1)
    if syndromes not in (1, 2) or isinstance(syndromes, bool):
        raise SpecError("'syndromes' must be 1 or 2")
    default_sizes = (
        CAMPAIGN_PQ_STRIPE_SIZES if syndromes == 2 else CAMPAIGN_STRIPE_SIZES
    )
    stripe_sizes = document.get("stripe_sizes", list(default_sizes))
    if (
        not isinstance(stripe_sizes, (list, tuple))
        or not stripe_sizes
        or not all(isinstance(g, int) and not isinstance(g, bool) for g in stripe_sizes)
    ):
        raise SpecError("'stripe_sizes' must be a non-empty list of integers")
    trials = document.get("trials", TRIALS[scale])
    if not isinstance(trials, int) or isinstance(trials, bool) or trials < 1:
        raise SpecError("'trials' must be a positive integer")
    seed = document.get("seed", 1992)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise SpecError("'seed' must be an integer")
    mission_hours = document.get("mission_hours", MISSION_HOURS)
    if not isinstance(mission_hours, (int, float)) or mission_hours <= 0:
        raise SpecError("'mission_hours' must be a positive number")
    if len(stripe_sizes) * trials > MAX_POINTS:
        raise SpecError(
            f"campaign enumerates {len(stripe_sizes) * trials} trials; "
            f"the limit is {MAX_POINTS}"
        )
    try:
        grid = campaign_spec(
            scale,
            stripe_sizes=stripe_sizes,
            seed=seed,
            trials=trials,
            mission_hours=float(mission_hours),
            syndromes=syndromes,
        )
        configs = grid.configs()
    except (TypeError, ValueError) as error:
        raise SpecError(f"invalid campaign grid: {error}") from error
    campaign = {
        "trials": trials,
        "mission_hours": float(mission_hours),
        "stripe_sizes": [int(g) for g in stripe_sizes],
        "seed": seed,
        "syndromes": syndromes,
    }
    return JobSpec(
        kind="campaign",
        configs=configs,
        campaign=campaign,
        document={
            "kind": "campaign",
            "campaign": campaign,
            "configs": [c.to_key() for c in configs],
        },
    )


def parse_spec(document: typing.Any) -> JobSpec:
    """Validate a submitted spec document; :class:`SpecError` on any flaw."""
    document = _require_mapping(document)
    kind = document.get("kind")
    if kind == "scenario":
        return _parse_scenario(document)
    if kind == "sweep":
        return _parse_sweep(document)
    if kind == "campaign":
        return _parse_campaign(document)
    raise SpecError(f"'kind' must be one of {KINDS}, got {kind!r}")


def spec_from_normalized(document: typing.Any) -> JobSpec:
    """Rebuild a :class:`JobSpec` from a stored normalized document.

    The job store persists the normalized form (explicit config keys);
    restart-time recovery rebuilds the executable spec from it without
    re-deriving grids. Raises :class:`SpecError` if the stored document
    is unusable (e.g. written by an incompatible version).
    """
    document = _require_mapping(document)
    kind = document.get("kind")
    if kind not in KINDS:
        raise SpecError(f"stored spec has unknown kind {kind!r}")
    keys = document.get("configs")
    if not isinstance(keys, list) or not keys:
        raise SpecError("stored spec has no configs")
    configs = [
        _config_from_key(key, f"stored config {index}")
        for index, key in enumerate(keys)
    ]
    campaign = document.get("campaign")
    if kind == "campaign" and not isinstance(campaign, dict):
        raise SpecError("stored campaign spec lacks campaign parameters")
    return JobSpec(
        kind=kind,
        configs=configs,
        campaign=campaign if kind == "campaign" else None,
        document=dict(document),
    )
