"""Discrete-event simulation kernel (the raidSim substrate).

This package provides a compact, dependency-free event-driven simulator
in the style of simpy: an :class:`Environment` advances simulated time by
popping events from a heap, and *processes* are Python generators that
yield events (timeouts, other processes, conditions) to suspend until
they fire.

The kernel is the lowest layer of the reproduction: the disk model,
striping driver, workload generator, and reconstruction engine all run
as processes inside one :class:`Environment`.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env):
...     yield env.timeout(3.0)
...     log.append(env.now)
>>> _ = env.process(worker(env))
>>> env.run()
>>> log
[3.0]
"""

from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.stores import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Store",
    "Timeout",
]
