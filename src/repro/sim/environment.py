"""The simulation environment: clock, event schedule, and run loop.

The schedule has two lanes ordered by one global ``(time, seq)`` key:

- a **heap** for events scheduled into the future (positive delays), and
- an **immediate deque** for events scheduled *at the current time* —
  ``succeed``/``fail``, zero-delay timeouts, and process kickoffs, which
  together are the majority of all schedules in an array simulation.

Immediate entries are appended in ``seq`` order at the then-current
time, and time never moves backwards, so the deque is always sorted and
its head is its minimum; dispatch takes whichever lane holds the
smaller ``(time, seq)`` key. Because every immediate entry's time is
``now`` and its seq is implied by append order, the lane stores **bare
event objects** — no key tuples at all — and the lane comparison
"``heap[0] < imm[0]``" reduces to ``heap[0][0] <= now`` (a heap entry
at ``now`` always carries a smaller seq; see invariant 2 below). That
makes the common zero-delay schedule an O(1) allocation-free append and
its dispatch an O(1) popleft — instead of two O(log n) sift passes
through the heap — while dispatch order stays exactly what a single
heap would produce.

Cohort-batched dispatch
-----------------------
:meth:`Environment.run` drains every event sharing the next time
instant into one *cohort* and dispatches it through a single loop,
amortizing the per-event lane bookkeeping (lane choice, heap/deque
pops, clock writes) that otherwise dominates bursty workloads —
parallel stripe-unit accesses completing together, fan-out process
kickoffs, zero-delay hand-off storms.

Why the cohort order equals the one-at-a-time order, exactly:

1. While the immediate deque is non-empty, every entry in it carries
   ``time == now`` (entries are appended at the then-current time, and
   the run loop never advances the clock past a non-empty deque), and
   the deque is in ascending ``seq`` order.
2. A heap entry at ``time == now`` was necessarily pushed *before*
   ``now`` was reached (a push at ``now`` itself requires a positive
   delay and therefore lands strictly later), so its ``seq`` is smaller
   than that of every immediate entry, all of which were appended *at*
   ``now``.
3. Events created by cohort callbacks enter the immediate lane with
   ``seq`` values larger than every cohort member's, or enter the heap
   strictly later than ``now`` — nothing that appears mid-dispatch can
   sort before a not-yet-dispatched cohort member.

(1) and (2) make "pop every heap entry at ``now``, then extend with the
immediate deque" an ascending-``seq`` sequence without sorting; (3)
makes eager collection safe. Bit-identical ordering is pinned by
``tests/integration/test_golden_trace.py``.

Mid-cohort control flow keeps the one-at-a-time semantics: an escaping
exception (or an ``until=event`` stop) requeues the undispatched
remainder at the *front* of the immediate lane — where those entries
would still have been had they never been collected — and ``close()``
drops the remainder, exactly as it clears the lanes.

Hot-path notes: the dispatch loops are the most executed code in the
project, so they read event state through the ``_state``/``_exception``
slots directly and inline singleton dispatch (a cohort of one — the
common case for heap-paced workloads) without building a list.
Observation hooks: :meth:`Environment.add_observer` registers a
per-dispatch callback used by the tracing subsystem
(:class:`~repro.sim.tracing.EnvironmentTracer`); observed runs go
through the same cohort collection, so traces record the exact
production dispatch order. The class deliberately has **no**
``__slots__`` and still honors a legacy ``step`` instance-attribute
override (external instrumentation) by falling back to a
``self.step()`` loop.
"""

from __future__ import annotations

import typing
from collections import deque
from heapq import heappop, heappush

from repro.sim.events import PROCESSED, AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import GeneratorType, Process


class Environment:
    """Coordinates simulated time and event dispatch.

    Time is a float in **milliseconds** by convention throughout this
    project (disk service times are naturally expressed in ms), though
    the kernel itself is unit-agnostic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._heap: list = []
        #: Events scheduled at the current instant, in FIFO (= seq)
        #: order. Bare event objects — conceptually each entry's key is
        #: (now, its seq), but since every entry is at ``now`` and the
        #: deque preserves append order, the keys are redundant and no
        #: tuple is allocated (see the module docstring).
        self._imm: typing.Deque = deque()
        #: Pre-bound ``self._imm.append`` — one attribute lookup instead
        #: of two on every zero-delay schedule (``close()`` clears the
        #: deque in place, so the binding never goes stale).
        self._imm_append = self._imm.append
        self._seq = 0  # tie-breaker keeps FIFO order among same-time events
        self._closed = False
        #: Per-dispatch observers (see :meth:`add_observer`). Kept out
        #: of the uninstrumented hot loops entirely: ``run()`` switches
        #: to the observed cohort loop only while this list is non-empty.
        self._observers: list = []

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event, to be succeeded/failed by user code."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: GeneratorType, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event firing once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for callback dispatch after ``delay``.

        Zero-delay schedules take the immediate lane (see the module
        docstring); both lanes share the ``(time, seq)`` key space, so
        the split never reorders dispatch.
        """
        if self._closed:
            raise SimulationError("cannot schedule on a closed environment")
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            heappush(self._heap, (self._now + delay, self._seq, event))
        else:
            # The immediate lane stores bare events: every entry is at
            # the current time in append (= seq) order, so the deque's
            # FIFO order *is* the (time, seq) order and no key tuple is
            # needed (see the module docstring).
            self._imm_append(event)
        self._seq += 1

    def close(self) -> None:
        """Shut the environment down: drop pending events, refuse new ones.

        After ``close()`` any attempt to schedule — including the
        :class:`~repro.sim.events.Timeout` fast path — raises
        :class:`SimulationError`. Used when a scenario ends mid-flight
        (e.g. a mission deadline) and stray completions must not fire.
        Closing from inside a callback also drops the undispatched
        remainder of the current same-instant cohort.
        """
        self._closed = True
        self._heap.clear()
        self._imm.clear()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: typing.Callable[[Event], None]) -> None:
        """Register a per-dispatch hook, called as ``observer(event)``.

        The hook runs after the event's callbacks have completed and
        only when dispatch did not raise — the same visibility a
        wrapper around :meth:`step` used to have. Observers stack;
        remove them in reverse attach order via :meth:`remove_observer`.
        While any observer is attached, :meth:`run` dispatches through
        the observed cohort loop instead of the inlined fast loops, so
        observers add zero cost to unobserved runs.
        """
        self._observers.append(observer)

    def remove_observer(self, observer: typing.Callable[[Event], None]) -> None:
        """Unregister the most recently attached observer.

        Raises
        ------
        RuntimeError
            If ``observer`` is not the most recently attached one —
            observers must be removed in reverse attach order, exactly
            once. Removing blindly out of order would silently detach a
            live observer or "remove" one that is already gone.
        """
        if not self._observers or self._observers[-1] is not observer:
            raise RuntimeError(
                "cannot remove observer: not the most recently attached "
                "(observers must be removed in reverse attach order, "
                "exactly once)"
            )
        self._observers.pop()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        A non-empty immediate lane always means "an event at ``now``"
        unless the heap holds an even-earlier entry (only possible
        after external interleaving — see :meth:`_merge_instant`).
        """
        heap = self._heap
        if self._imm:
            now = self._now
            if heap and heap[0][0] < now:
                return heap[0][0]
            return now
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Advance to the next event and run its callbacks."""
        imm = self._imm
        heap = self._heap
        if imm:
            # Heap entries at `now` carry smaller seqs than every
            # immediate entry (module docstring, invariant 2), so the
            # heap goes first whenever its head time is <= now — the
            # exact condition `heap[0] < (now, imm-head seq)` reduces to.
            if heap and heap[0][0] <= self._now:
                when, _seq, event = heappop(heap)
                self._now = when
            else:
                event = imm.popleft()
        elif heap:
            when, _seq, event = heappop(heap)
            self._now = when
        else:
            raise SimulationError("step() on an empty schedule")
        event._run_callbacks()
        if event._exception is not None and not event.defused:
            raise event._exception
        for observe in self._observers:
            observe(event)

    # ------------------------------------------------------------------
    # Cohort collection and dispatch
    # ------------------------------------------------------------------
    def _merge_instant(self) -> list:
        """Collect the cohort when the heap holds entries at ``now``.

        Only reachable when the immediate deque is non-empty *and* the
        heap head shares its time — which, per the ordering proof in
        the module docstring, means the heap entries carry smaller
        ``seq`` values than every immediate entry. Normal ``run()``
        loops drain heap-at-now entries into the cohort before any
        immediate entry can exist at that instant, so this path only
        fires when dispatch was interleaved externally (a manual
        ``step()`` between ``run()`` calls, a requeue after an
        exception).
        """
        heap = self._heap
        imm = self._imm
        now = self._now
        cohort = []
        # Exact float equality is the contract here: cohort membership
        # means *the same* (bit-identical) time key, never "close to".
        # Heap pops come out in ascending (time, seq); all their seqs
        # precede every immediate entry's (module docstring, invariant
        # 2), so appending the lanes in this order is already the exact
        # dispatch order.
        while heap and heap[0][0] == now:  # simlint: disable=TIME001 (cohort = identical time key, not a tolerance comparison)
            cohort.append(heappop(heap)[2])
        cohort.extend(imm)
        imm.clear()
        return cohort

    def _requeue_after(self, cohort: list, event) -> None:
        """Return cohort members after ``event`` to the schedule.

        Used when dispatch stops mid-cohort (escaping exception,
        ``until=event`` satisfied). The remainder goes to the *front*
        of the immediate lane: every member is at ``time == now`` and
        precedes anything callbacks appended during the cohort, so the
        deque stays in dispatch order. No-op on a closed environment —
        ``close()`` drops pending events.
        """
        if self._closed:
            return
        index = cohort.index(event)
        rest = cohort[index + 1:]
        if rest:
            self._imm.extendleft(reversed(rest))

    def _dispatch_cohort(self, cohort: list) -> None:
        """Dispatch a same-instant cohort in ascending ``seq`` order.

        The per-event body must stay semantically identical to
        ``Event._run_callbacks`` plus the exception check in
        :meth:`step` — keep them in sync.
        """
        processed = PROCESSED
        event = None
        try:
            for event in cohort:
                event._state = processed
                callbacks = event._callbacks
                if callbacks:
                    event._callbacks = None
                    if len(callbacks) == 1:  # one waiter is the common case
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if event._exception is not None and not event.defused:
                        raise event._exception
                    # `close()` can only be reached from inside a
                    # callback, so the flag needs checking only here —
                    # waiterless events skip the load entirely.
                    if self._closed:
                        return
                elif event._exception is not None and not event.defused:
                    raise event._exception
        except BaseException:
            self._requeue_after(cohort, event)
            raise

    def _dispatch_cohort_until(self, cohort: list, stop_on: Event) -> None:
        """:meth:`_dispatch_cohort`, stopping after ``stop_on`` fires.

        The undispatched remainder is requeued so a later ``run()``
        resumes exactly where this one stopped.
        """
        processed = PROCESSED
        event = None
        try:
            for event in cohort:
                event._state = processed
                callbacks = event._callbacks
                if callbacks:
                    event._callbacks = None
                    if len(callbacks) == 1:  # one waiter is the common case
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if event._exception is not None and not event.defused:
                        raise event._exception
                    if event is stop_on:
                        self._requeue_after(cohort, event)
                        return
                    # `close()` is only reachable from inside a callback
                    # (see _dispatch_cohort) — checked here only.
                    if self._closed:
                        return
                elif event._exception is not None and not event.defused:
                    raise event._exception
                elif event is stop_on:
                    self._requeue_after(cohort, event)
                    return
        except BaseException:
            self._requeue_after(cohort, event)
            raise

    def run(self, until: typing.Union[None, float, Event] = None) -> object:
        """Run until the schedule drains, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain. A number runs until the
            clock reaches that time. An :class:`Event` runs until that
            event has fired, returning its value.

        When nothing has instrumented the environment, the loops below
        inline singleton dispatch (the body of :meth:`step`) and batch
        same-instant events into cohorts (see the module docstring) —
        one method call per event is the dominant fixed cost of the
        kernel. The inlined bodies must stay semantically identical to
        ``step()``; instrumentation attached *mid-run* (no current
        caller does this) only takes effect on the next ``run()`` call.
        """
        if "step" in self.__dict__:
            return self._run_instrumented(until)
        if self._observers:
            return self._run_observed(until)
        heap = self._heap
        imm = self._imm
        pop = heappop
        popleft = imm.popleft
        processed = PROCESSED
        if until is None:
            while True:
                # Immediate entries carry when == self._now (they drain
                # before time can advance — see the module docstring),
                # so the deque branches skip the clock write.
                if imm:
                    if heap and heap[0][0] <= self._now:
                        cohort = self._merge_instant()
                    elif len(imm) == 1:
                        event = popleft()
                        event._state = processed
                        callbacks = event._callbacks
                        if callbacks:
                            event._callbacks = None
                            if len(callbacks) == 1:  # one waiter is the common case
                                callbacks[0](event)
                            else:
                                for callback in callbacks:
                                    callback(event)
                        if event._exception is not None and not event.defused:
                            raise event._exception
                        continue
                    else:
                        cohort = list(imm)
                        imm.clear()
                elif heap:
                    when, _seq, event = pop(heap)
                    self._now = when
                    if heap and heap[0][0] == when:
                        cohort = [event]
                        while heap and heap[0][0] == when:
                            cohort.append(pop(heap)[2])
                    else:
                        event._state = processed
                        callbacks = event._callbacks
                        if callbacks:
                            event._callbacks = None
                            if len(callbacks) == 1:  # one waiter is the common case
                                callbacks[0](event)
                            else:
                                for callback in callbacks:
                                    callback(event)
                        if event._exception is not None and not event.defused:
                            raise event._exception
                        continue
                else:
                    break
                self._dispatch_cohort(cohort)
            return None
        if isinstance(until, Event):
            stop_on = until
            while stop_on._state != processed:
                if imm:
                    if heap and heap[0][0] <= self._now:
                        cohort = self._merge_instant()
                    elif len(imm) == 1:
                        event = popleft()
                        event._state = processed
                        callbacks = event._callbacks
                        if callbacks:
                            event._callbacks = None
                            if len(callbacks) == 1:  # one waiter is the common case
                                callbacks[0](event)
                            else:
                                for callback in callbacks:
                                    callback(event)
                        if event._exception is not None and not event.defused:
                            raise event._exception
                        continue
                    else:
                        cohort = list(imm)
                        imm.clear()
                elif heap:
                    when, _seq, event = pop(heap)
                    self._now = when
                    if heap and heap[0][0] == when:
                        cohort = [event]
                        while heap and heap[0][0] == when:
                            cohort.append(pop(heap)[2])
                    else:
                        event._state = processed
                        callbacks = event._callbacks
                        if callbacks:
                            event._callbacks = None
                            if len(callbacks) == 1:  # one waiter is the common case
                                callbacks[0](event)
                            else:
                                for callback in callbacks:
                                    callback(event)
                        if event._exception is not None and not event.defused:
                            raise event._exception
                        continue
                else:
                    raise SimulationError("schedule drained before `until` event fired")
                self._dispatch_cohort_until(cohort, stop_on)
            return stop_on.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while True:
            if imm:
                # Immediate entries were appended at times <= now <=
                # deadline, so this lane can never overshoot; and when
                # the heap head wins the comparison it is smaller still.
                if heap and heap[0][0] <= self._now:
                    cohort = self._merge_instant()
                elif len(imm) == 1:
                    event = popleft()
                    event._state = processed
                    callbacks = event._callbacks
                    if callbacks:
                        event._callbacks = None
                        if len(callbacks) == 1:  # one waiter is the common case
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                    if event._exception is not None and not event.defused:
                        raise event._exception
                    continue
                else:
                    cohort = list(imm)
                    imm.clear()
            elif heap:
                if heap[0][0] > deadline:
                    break
                when, _seq, event = pop(heap)
                self._now = when
                if heap and heap[0][0] == when:
                    # Cohort members share `when`, so the deadline check
                    # on the first entry covers them all.
                    cohort = [event]
                    while heap and heap[0][0] == when:
                        cohort.append(pop(heap)[2])
                else:
                    event._state = processed
                    callbacks = event._callbacks
                    if callbacks:
                        event._callbacks = None
                        if len(callbacks) == 1:  # one waiter is the common case
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                    if event._exception is not None and not event.defused:
                        raise event._exception
                    continue
            else:
                break
            self._dispatch_cohort(cohort)
        self._now = deadline
        return None

    def _next_cohort(self, deadline: typing.Optional[float]) -> typing.Optional[list]:
        """Pop every event at the next instant, in dispatch order.

        Returns ``None`` when the schedule is empty or the next instant
        lies beyond ``deadline``. Advances the clock when the cohort
        comes off the heap.
        """
        imm = self._imm
        heap = self._heap
        if imm:
            if heap and heap[0][0] <= self._now:
                return self._merge_instant()
            cohort = list(imm)
            imm.clear()
            return cohort
        if heap:
            when = heap[0][0]
            if deadline is not None and when > deadline:
                return None
            cohort = [heappop(heap)[2]]
            while heap and heap[0][0] == when:
                cohort.append(heappop(heap)[2])
            self._now = when
            return cohort
        return None

    def _run_observed(self, until: typing.Union[None, float, Event]) -> object:
        """The :meth:`run` modes with per-event observer notification.

        Uses the same cohort collection as the inlined fast loops, so
        observers (tracers) record the exact production dispatch order.
        """
        stop_on: typing.Optional[Event] = None
        deadline: typing.Optional[float] = None
        if isinstance(until, Event):
            stop_on = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )
        while True:
            if stop_on is not None and stop_on._state == PROCESSED:
                return stop_on.value
            cohort = self._next_cohort(deadline)
            if cohort is None:
                if stop_on is not None:
                    raise SimulationError("schedule drained before `until` event fired")
                break
            event = None
            try:
                for event in cohort:
                    event._run_callbacks()
                    if event._exception is not None and not event.defused:
                        raise event._exception
                    for observe in self._observers:
                        observe(event)
                    if event is stop_on:
                        self._requeue_after(cohort, event)
                        return stop_on.value
                    if self._closed:
                        break
            except BaseException:
                self._requeue_after(cohort, event)
                raise
        if deadline is not None:
            self._now = deadline
        return None

    def _run_instrumented(self, until: typing.Union[None, float, Event]) -> object:
        """The :meth:`run` loops, dispatching through ``self.step()`` so
        that a legacy ``step``-wrapping instrument observes every event."""
        if until is None:
            while self._heap or self._imm:
                self.step()
            return None
        if isinstance(until, Event):
            stop_on = until
            while stop_on._state != PROCESSED:
                if not self._heap and not self._imm:
                    raise SimulationError("schedule drained before `until` event fired")
                self.step()
            return stop_on.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        heap = self._heap
        # The immediate lane never holds entries beyond `now`, hence
        # never beyond the deadline (see the inlined loop above).
        while self._imm or (heap and heap[0][0] <= deadline):
            self.step()
        self._now = deadline
        return None
