"""The simulation environment: clock, event schedule, and run loop.

The schedule has two lanes ordered by one global ``(time, seq)`` key:

- a **heap** for events scheduled into the future (positive delays), and
- an **immediate deque** for events scheduled *at the current time* —
  ``succeed``/``fail``, zero-delay timeouts, and process kickoffs, which
  together are the majority of all schedules in an array simulation.

Immediate entries are appended in ``seq`` order at the then-current
time, and time never moves backwards, so the deque is always sorted and
its head is its minimum; dispatch takes whichever lane holds the
smaller ``(time, seq)`` key. That makes the common zero-delay schedule
an O(1) append and its dispatch an O(1) popleft — instead of two
O(log n) sift passes through the heap — while dispatch order stays
exactly what a single heap would produce. Bit-identical ordering is
pinned by ``tests/integration/test_golden_trace.py``.

Hot-path notes: :meth:`Environment.step` is the most executed function
in the project, so it reads event state through the ``_state``/
``_exception`` slots directly. The class itself deliberately has **no**
``__slots__`` — the tracing subsystem
(:class:`~repro.sim.tracing.EnvironmentTracer`) instruments an
environment by assigning a wrapper over the ``step`` instance
attribute, and :meth:`run` falls back to a ``self.step()`` loop when it
detects one.
"""

from __future__ import annotations

import typing
from collections import deque
from heapq import heappop, heappush

from repro.sim.events import PROCESSED, AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import GeneratorType, Process


class Environment:
    """Coordinates simulated time and event dispatch.

    Time is a float in **milliseconds** by convention throughout this
    project (disk service times are naturally expressed in ms), though
    the kernel itself is unit-agnostic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._heap: list = []
        #: Events scheduled at the current instant, in FIFO (= seq) order.
        self._imm: typing.Deque[tuple] = deque()
        #: Pre-bound ``self._imm.append`` — one attribute lookup instead
        #: of two on every zero-delay schedule (``close()`` clears the
        #: deque in place, so the binding never goes stale).
        self._imm_append = self._imm.append
        self._seq = 0  # tie-breaker keeps FIFO order among same-time events
        self._closed = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event, to be succeeded/failed by user code."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: GeneratorType, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event firing once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for callback dispatch after ``delay``.

        Zero-delay schedules take the immediate lane (see the module
        docstring); both lanes share the ``(time, seq)`` key space, so
        the split never reorders dispatch.
        """
        if self._closed:
            raise SimulationError("cannot schedule on a closed environment")
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            heappush(self._heap, (self._now + delay, self._seq, event))
        else:
            self._imm_append((self._now, self._seq, event))
        self._seq += 1

    def close(self) -> None:
        """Shut the environment down: drop pending events, refuse new ones.

        After ``close()`` any attempt to schedule — including the
        :class:`~repro.sim.events.Timeout` fast path — raises
        :class:`SimulationError`. Used when a scenario ends mid-flight
        (e.g. a mission deadline) and stray completions must not fire.
        """
        self._closed = True
        self._heap.clear()
        self._imm.clear()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def _peek_entry(self) -> typing.Optional[tuple]:
        """The next ``(when, seq, event)`` to dispatch, without popping."""
        imm = self._imm
        heap = self._heap
        if imm:
            if heap and heap[0] < imm[0]:
                return heap[0]
            return imm[0]
        return heap[0] if heap else None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        entry = self._peek_entry()
        return entry[0] if entry is not None else float("inf")

    def step(self) -> None:
        """Advance to the next event and run its callbacks."""
        imm = self._imm
        heap = self._heap
        if imm:
            if heap and heap[0] < imm[0]:
                when, _seq, event = heappop(heap)
            else:
                when, _seq, event = imm.popleft()
        elif heap:
            when, _seq, event = heappop(heap)
        else:
            raise SimulationError("step() on an empty schedule")
        self._now = when
        event._run_callbacks()
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: typing.Union[None, float, Event] = None) -> object:
        """Run until the schedule drains, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain. A number runs until the
            clock reaches that time. An :class:`Event` runs until that
            event has fired, returning its value.

        When nothing has instrumented ``step`` (no tracer attached), the
        loops below inline the pop-and-dispatch body of :meth:`step`
        rather than calling it — one method call per event is the
        dominant fixed cost of the kernel. The inlined body must stay
        semantically identical to ``step()``; instrumentation attached
        *mid-run* (no current caller does this) only takes effect on the
        next ``run()`` call.
        """
        if "step" in self.__dict__:
            return self._run_instrumented(until)
        heap = self._heap
        imm = self._imm
        pop = heappop
        popleft = imm.popleft
        processed = PROCESSED
        if until is None:
            while True:
                # Immediate entries carry when == self._now (they drain
                # before time can advance — see the module docstring),
                # so the popleft branches skip the clock write.
                if imm:
                    if heap and heap[0] < imm[0]:
                        when, _seq, event = pop(heap)
                        self._now = when
                    else:
                        event = popleft()[2]
                elif heap:
                    when, _seq, event = pop(heap)
                    self._now = when
                else:
                    break
                event._state = processed
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = None
                    if len(callbacks) == 1:  # one waiter is the common case
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if event._exception is not None and not event.defused:
                    raise event._exception
            return None
        if isinstance(until, Event):
            stop_on = until
            while stop_on._state != processed:
                if imm:
                    if heap and heap[0] < imm[0]:
                        when, _seq, event = pop(heap)
                        self._now = when
                    else:
                        event = popleft()[2]
                elif heap:
                    when, _seq, event = pop(heap)
                    self._now = when
                else:
                    raise SimulationError("schedule drained before `until` event fired")
                event._state = processed
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = None
                    if len(callbacks) == 1:  # one waiter is the common case
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if event._exception is not None and not event.defused:
                    raise event._exception
            return stop_on.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while True:
            if imm:
                # Immediate entries were appended at times <= now <=
                # deadline, so this lane can never overshoot; and when
                # the heap head wins the comparison it is smaller still.
                if heap and heap[0] < imm[0]:
                    when, _seq, event = pop(heap)
                    self._now = when
                else:
                    event = popleft()[2]
            elif heap:
                if heap[0][0] > deadline:
                    break
                when, _seq, event = pop(heap)
                self._now = when
            else:
                break
            event._state = processed
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
            if event._exception is not None and not event.defused:
                raise event._exception
        self._now = deadline
        return None

    def _run_instrumented(self, until: typing.Union[None, float, Event]) -> object:
        """The :meth:`run` loops, dispatching through ``self.step()`` so
        that an attached tracer observes every event."""
        if until is None:
            while self._heap or self._imm:
                self.step()
            return None
        if isinstance(until, Event):
            stop_on = until
            while stop_on._state != PROCESSED:
                if not self._heap and not self._imm:
                    raise SimulationError("schedule drained before `until` event fired")
                self.step()
            return stop_on.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        heap = self._heap
        # The immediate lane never holds entries beyond `now`, hence
        # never beyond the deadline (see the inlined loop above).
        while self._imm or (heap and heap[0][0] <= deadline):
            self.step()
        self._now = deadline
        return None
