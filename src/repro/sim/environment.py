"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import GeneratorType, Process


class Environment:
    """Coordinates simulated time and event dispatch.

    Time is a float in **milliseconds** by convention throughout this
    project (disk service times are naturally expressed in ms), though
    the kernel itself is unit-agnostic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._heap: list = []
        self._seq = 0  # tie-breaker keeps FIFO order among same-time events

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event, to be succeeded/failed by user code."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: GeneratorType, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event firing once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for callback dispatch after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Advance to the next event and run its callbacks."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()
        if not event.ok and not event.defused:
            raise event._exception

    def run(self, until: typing.Union[None, float, Event] = None) -> object:
        """Run until the schedule drains, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain. A number runs until the
            clock reaches that time. An :class:`Event` runs until that
            event has fired, returning its value.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            stop_on = until
            while not stop_on.processed:
                if not self._heap:
                    raise SimulationError("schedule drained before `until` event fired")
                self.step()
            return stop_on.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while self._heap and self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None
