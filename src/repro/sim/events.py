"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence: it starts *pending*, is
*triggered* exactly once with either a value (``succeed``) or an
exception (``fail``), and then has its callbacks run by the environment.
Processes suspend by yielding events; the environment resumes them from
the event's callback list.

Hot-path notes
--------------
This module is the innermost loop of every simulation: a 21-disk
scenario dispatches tens of thousands of events per simulated second,
and the Monte Carlo reliability campaign multiplies that by mission
hours. The implementation therefore trades a little elegance for
throughput, under one inviolable constraint — **bit-identical event
ordering** (pinned by ``tests/integration/test_golden_trace.py``):

- every class carries ``__slots__`` (no per-event ``__dict__``);
- state checks read ``_state`` directly instead of going through the
  ``triggered``/``processed`` properties (kept for the public API);
- :class:`Timeout` skips pending-state bookkeeping entirely: it is
  born triggered and enters the schedule directly;
- ``succeed``/``fail`` append the event itself to the environment's
  immediate lane (``env._imm`` — see :mod:`repro.sim.environment`)
  instead of paying a heap push: the lane's FIFO order *is* the
  ``(time, seq)`` order, so no key tuple is allocated at all;
- the callback list is lazy: events are born with ``_callbacks = None``
  and the list is only allocated when the first waiter attaches (many
  events — bare completion signals, unwaited timeouts — never get one).
  The public ``callbacks`` property materializes the list on demand, so
  ``event.callbacks.append(cb)`` keeps working unchanged; kernel-internal
  attach sites use the ``_callbacks`` slot directly. A dispatched
  event's list is released (``_callbacks = None``) and the property then
  returns ``None`` — appending after dispatch is a bug and still raises
  ``AttributeError``, exactly as before. Check ``processed`` first, as
  :class:`Condition` and ``Process._resume`` do;
- ``defused`` is likewise lazy (a property over a ``_defused`` slot set
  only when a failure is actually consumed), saving a store on every
  construction.
"""

from __future__ import annotations

import typing
from heapq import heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yielding non-events...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as
    ``interrupt.cause`` in the interrupted process.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment that will dispatch this event's callbacks.
    """

    __slots__ = ("env", "_callbacks", "_state", "_value", "_exception", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callback list; ``None`` while no waiter has attached and
        #: again once dispatched (the environment releases the list).
        self._callbacks: typing.Optional[list] = None
        self._state = PENDING
        self._value: object = None
        self._exception: typing.Optional[BaseException] = None

    @property
    def callbacks(self) -> typing.Optional[list]:
        """Callbacks run at dispatch; ``None`` once dispatched.

        Reading this on a not-yet-dispatched event materializes the
        lazy list, so ``event.callbacks.append(cb)`` works as always;
        after dispatch it returns ``None`` and appending raises
        ``AttributeError`` (check ``processed`` first).
        """
        cbs = self._callbacks
        if cbs is None and self._state != PROCESSED:
            cbs = self._callbacks = []
        return cbs

    @property
    def defused(self) -> bool:
        """True once a waiter consumed this event's failure, so the
        kernel does not complain about an unhandled exception."""
        return getattr(self, "_defused", False)

    @defused.setter
    def defused(self, consumed: bool) -> None:
        self._defused = consumed

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value or error."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._state >= TRIGGERED and self._exception is None

    @property
    def value(self) -> object:
        """The value the event succeeded with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if self._state == PENDING:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} already triggered")
        env = self.env
        if env._closed:
            raise SimulationError("cannot schedule on a closed environment")
        self._state = TRIGGERED
        self._value = value
        # Inline of env.schedule(self) with delay 0 — the only case here.
        env._imm_append(self)
        env._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, delivered to waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._state != PENDING:
            raise SimulationError(f"{self!r} already triggered")
        env = self.env
        if env._closed:
            raise SimulationError("cannot schedule on a closed environment")
        self._state = TRIGGERED
        self._exception = exception
        env._imm_append(self)
        env._seq += 1
        return self

    def _run_callbacks(self) -> None:
        """Invoked by the environment when the event comes off the heap.

        ``Environment.run`` inlines this body in its uninstrumented
        singleton fast paths and in ``Environment._dispatch_cohort`` —
        keep all of them in sync.
        """
        self._state = PROCESSED
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are the most common event by far (every disk service slice
    and every arrival delay is one), so construction is the fast path:
    the event is born ``TRIGGERED`` — skipping ``succeed()``'s
    pending-state bookkeeping — and enters the schedule directly (heap
    for positive delays, immediate lane for zero) with the same
    ``(time, seq)`` key :meth:`Environment.schedule` would have
    assigned, preserving dispatch order exactly.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if env._closed:
            # The direct heap push below bypasses Environment.schedule,
            # so the closed-environment guard must be replicated here:
            # a Timeout must never mark itself TRIGGERED and then fail
            # to enter the schedule (it could then be succeed()ed a
            # second time with no record of the first).
            raise SimulationError("cannot schedule a Timeout on a closed environment")
        self.env = env
        self._callbacks = None
        self._state = TRIGGERED
        self._value = value
        self._exception = None
        self.delay = delay
        if delay:
            # The negative check rides inside the truthy branch: a
            # zero delay (the hot case) needs neither comparison.
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            heappush(env._heap, (env._now + delay, env._seq, self))
        else:
            env._imm_append(self)
        env._seq += 1

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Base for composite events over a fixed list of child events.

    Subclasses define :meth:`_satisfied`. The condition fires as soon as
    the predicate holds (checked whenever a child fires). A failing
    child fails the whole condition immediately.
    """

    __slots__ = ("events", "_fired_count", "_target")

    def __init__(self, env: "Environment", events: typing.Sequence[Event]):
        super().__init__(env)
        self.events = list(events)
        self._fired_count = 0
        self._target = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        on_child = self._on_child
        for event in self.events:
            if event._state == PROCESSED:
                on_child(event)
            else:
                cbs = event._callbacks
                if cbs is None:
                    event._callbacks = [on_child]
                else:
                    cbs.append(on_child)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        """Values of all successfully fired children, keyed by event."""
        return {
            e: e._value
            for e in self.events
            if e._state == PROCESSED and e._exception is None
        }

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._fired_count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every child event has fired (a join / barrier)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired_count == self._target

    def _on_child(self, event: Event) -> None:
        # Specialized copy of Condition._on_child with the predicate
        # inlined: one method call per child firing adds up when every
        # striped write joins G events. Semantics must stay identical.
        if self._state != PENDING:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._fired_count += 1
        if self._fired_count == self._target:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as any single child event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired_count >= 1

    def _on_child(self, event: Event) -> None:
        # Specialized like AllOf._on_child: the first successful child
        # always satisfies, so no predicate call at all.
        if self._state != PENDING:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._fired_count += 1
        self.succeed(self._collect())
