"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence: it starts *pending*, is
*triggered* exactly once with either a value (``succeed``) or an
exception (``fail``), and then has its callbacks run by the environment.
Processes suspend by yielding events; the environment resumes them from
the event's callback list.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, yielding non-events...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as
    ``interrupt.cause`` in the interrupted process.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment that will dispatch this event's callbacks.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list = []
        self._state = PENDING
        self._value: object = None
        self._exception: typing.Optional[BaseException] = None
        #: Set by a waiting process when the failure is consumed, so the
        #: kernel does not complain about unhandled failures.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value or error."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> object:
        """The value the event succeeded with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._state = TRIGGERED
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, delivered to waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._state = TRIGGERED
        self._exception = exception
        self.env.schedule(self)
        return self

    def _run_callbacks(self) -> None:
        """Invoked by the environment when the event comes off the heap."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._state = TRIGGERED
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Base for composite events over a fixed list of child events.

    Subclasses define :meth:`_satisfied`. The condition fires as soon as
    the predicate holds (checked whenever a child fires). A failing
    child fails the whole condition immediately.
    """

    def __init__(self, env: "Environment", events: typing.Sequence[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._fired_count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        """Values of all successfully fired children, keyed by event."""
        return {e: e._value for e in self.events if e.processed and e.ok}

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event._exception)
            return
        self._fired_count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every child event has fired (a join / barrier)."""

    def _satisfied(self) -> bool:
        return self._fired_count == len(self.events)


class AnyOf(Condition):
    """Fires as soon as any single child event fires."""

    def _satisfied(self) -> bool:
        return self._fired_count >= 1
