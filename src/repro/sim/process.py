"""Generator-based simulation processes.

A process wraps a Python generator. The generator yields events; the
process registers itself as a callback on each yielded event and resumes
the generator with the event's value (or throws the event's exception
into it) when the event fires. A :class:`Process` is itself an
:class:`~repro.sim.events.Event` that fires when the generator returns,
so processes can wait on each other by yielding them.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

GeneratorType = typing.Generator[Event, object, object]


class Process(Event):
    """A running simulation process (and the event of its completion)."""

    def __init__(self, env: "Environment", generator: GeneratorType, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: typing.Optional[Event] = None
        # Kick the process off via an immediately-scheduled event so that
        # creation order does not matter within a time step.
        start = Event(env)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        self._waiting_on = None
        try:
            if event.ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(event._exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_event!r}, which is not an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = next_event
        if next_event.processed:
            # Already fired and dispatched: resume on a fresh tick so the
            # value/exception is still delivered exactly once.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if next_event.ok:
                relay.succeed(next_event._value)
            else:
                next_event.defused = True
                relay.fail(next_event._exception)
        else:
            next_event.callbacks.append(self._resume)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {status}>"
