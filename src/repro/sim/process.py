"""Generator-based simulation processes.

A process wraps a Python generator. The generator yields events; the
process registers itself as a callback on each yielded event and resumes
the generator with the event's value (or throws the event's exception
into it) when the event fires. A :class:`Process` is itself an
:class:`~repro.sim.events.Event` that fires when the generator returns,
so processes can wait on each other by yielding them.

``_resume`` runs once per yield of every process in the simulation, so
it reads event state through the ``_state``/``_exception`` slots
directly; the kickoff event in ``__init__`` is likewise scheduled
inline. Both must schedule exactly the same events in the same order as
the straightforward ``succeed()`` spelling — bit-identical ordering is
pinned by ``tests/integration/test_golden_trace.py``.
"""

from __future__ import annotations

import typing

from repro.sim.events import PENDING, PROCESSED, TRIGGERED, Event, Interrupt, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

GeneratorType = typing.Generator[Event, object, object]


class Process(Event):
    """A running simulation process (and the event of its completion)."""

    __slots__ = ("name", "_generator", "_send", "_throw", "_waiting_on", "_resume_cb")

    def __init__(self, env: "Environment", generator: GeneratorType, name: str = ""):
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise SimulationError(
                f"process body must be a generator, got {generator!r}"
            ) from None
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: typing.Optional[Event] = None
        # One bound method for the process's whole life: registering
        # ``self._resume`` directly would allocate a fresh bound-method
        # object on every yield.
        self._resume_cb = self._resume
        # Kick the process off via an immediately-scheduled event so that
        # creation order does not matter within a time step. Inline of
        # env.schedule(start) with delay 0, guard included.
        if env._closed:
            raise SimulationError("cannot schedule on a closed environment")
        start = Event(env)
        start._callbacks = [self._resume_cb]
        start._state = TRIGGERED
        env._imm_append(start)
        env._seq += 1

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._state != PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        # A dispatched (or never-waited) target has no callback list,
        # so only un-dispatched targets need the deregistration.
        if target is not None and target._state != PROCESSED:
            cbs = target._callbacks
            if cbs is not None and self._resume_cb in cbs:
                cbs.remove(self._resume_cb)
        self._waiting_on = None
        interrupt_event = Event(self.env)
        interrupt_event._callbacks = [self._resume_cb]
        interrupt_event.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        self._waiting_on = None
        try:
            if event._exception is None:
                next_event = self._send(event._value)
            else:
                event.defused = True
                next_event = self._throw(event._exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        # simlint: disable=ERR001 (kernel trampoline: the caught exception is forwarded verbatim into the process event via self.fail, so DataLossError propagates to whoever joins the process; nothing is swallowed)
        except BaseException as exc:
            self.fail(exc)
            return
        # Duck-typed validity check: reading `_state` replaces an
        # isinstance(next_event, Event) call — zero-cost on success
        # (Python 3.11 try), and any non-event yield lacks the slot.
        try:
            state = next_event._state
        except AttributeError:
            error = SimulationError(
                f"process {self.name!r} yielded {next_event!r}, which is not an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = next_event
        if state == PROCESSED:
            # Already fired and dispatched: resume on a fresh tick so the
            # value/exception is still delivered exactly once.
            relay = Event(self.env)
            relay._callbacks = [self._resume_cb]
            if next_event._exception is None:
                relay.succeed(next_event._value)
            else:
                next_event.defused = True
                relay.fail(next_event._exception)
        else:
            cbs = next_event._callbacks
            if cbs is None:
                next_event._callbacks = [self._resume_cb]
            else:
                cbs.append(self._resume_cb)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {status}>"
