"""Deterministic per-purpose random number streams.

Simulation reproducibility requires that adding a new consumer of
randomness must not perturb existing streams. ``RandomStreams`` hands
out independent :class:`random.Random` instances keyed by name, each
seeded from the master seed and the name, so every subsystem (arrival
times, addresses, read/write coin flips...) owns a stable stream.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of named, independently-seeded random streams."""

    def __init__(self, seed: int = 1992):
        self.seed = int(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.seed}//{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
