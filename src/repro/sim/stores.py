"""FIFO stores for producer/consumer coordination between processes."""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Store:
    """An unbounded FIFO channel of items between processes.

    ``put`` never blocks. ``get`` returns an event that fires with the
    oldest item, immediately if one is available, otherwise when the
    next ``put`` arrives. Waiting getters are served in FIFO order.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip getters cancelled by user code
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> tuple:
        """Snapshot of queued items (oldest first) without consuming."""
        return tuple(self._items)
