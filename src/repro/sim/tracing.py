"""Kernel-level event tracing for debugging simulations.

Registers an observer on an :class:`~repro.sim.environment.Environment`
that records every dispatched event as a ``(time, kind, name)`` tuple.
Traces answer the questions that arise when a simulation misbehaves —
what fired at t, in what order, which processes were alive — without
sprinkling prints through model code.

Observed runs dispatch through the environment's cohort loop (the same
collection order as production runs — see the ordering proof in
:mod:`repro.sim.environment`), so a trace is a faithful record of the
untraced dispatch sequence. Tracing costs a callback per event; enable
it for diagnosis, not for benchmark runs.
"""

from __future__ import annotations

import collections
import typing
from dataclasses import dataclass

from repro.sim.environment import Environment
from repro.sim.events import Timeout
from repro.sim.process import Process


@dataclass(frozen=True)
class TraceEntry:
    """One dispatched event."""

    at_ms: float
    kind: str      # "timeout", "process", "event"
    name: str
    ok: bool


class EnvironmentTracer:
    """Records every event the environment dispatches.

    Parameters
    ----------
    env:
        Environment to observe. The tracer registers a dispatch
        observer (:meth:`Environment.add_observer`); :meth:`detach`
        removes it.
    capacity:
        Oldest entries are dropped beyond this bound, so long runs
        cannot exhaust memory.
    """

    def __init__(self, env: Environment, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        # A bounded deque keeps _record O(1); a list's pop(0) would make
        # a long saturated trace O(n²).
        self.entries: typing.Deque[TraceEntry] = collections.deque(maxlen=capacity)
        self.dropped = 0
        # One cached bound method: add/remove_observer match by
        # identity, and each `self._on_event` attribute access would
        # build a fresh bound-method object.
        self._observer = self._on_event
        env.add_observer(self._observer)

    def detach(self) -> None:
        """Stop tracing: remove this tracer's observer.

        Tracers nest; they must detach innermost-first, exactly once
        (:meth:`Environment.remove_observer` enforces this — detaching
        out of order would silently disturb the live observer stack).

        Raises
        ------
        RuntimeError
            If another tracer is attached on top of this one, or this
            tracer was already detached.
        """
        self.env.remove_observer(self._observer)

    def _on_event(self, event) -> None:
        if isinstance(event, Process):
            kind, name = "process", event.name
        elif isinstance(event, Timeout):
            kind, name = "timeout", f"delay={event.delay}"
        else:
            kind, name = "event", type(event).__name__
        self._record(TraceEntry(at_ms=self.env.now, kind=kind, name=name,
                                ok=event.ok))

    def _record(self, entry: TraceEntry) -> None:
        if len(self.entries) == self.capacity:
            self.dropped += 1  # the deque evicts the oldest entry itself
        self.entries.append(entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def between(self, start_ms: float, end_ms: float) -> typing.List[TraceEntry]:
        """Entries dispatched in the half-open window [start, end)."""
        return [e for e in self.entries if start_ms <= e.at_ms < end_ms]

    def of_kind(self, kind: str) -> typing.List[TraceEntry]:
        return [e for e in self.entries if e.kind == kind]

    def format_tail(self, count: int = 20) -> str:
        """The last ``count`` entries, one per line."""
        tail = list(self.entries)[-count:] if count > 0 else []
        lines = [
            f"{e.at_ms:12.3f}  {e.kind:8s}  {'ok ' if e.ok else 'ERR'}  {e.name}"
            for e in tail
        ]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier entries dropped ...")
        return "\n".join(lines)
