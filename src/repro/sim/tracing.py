"""Kernel-level event tracing for debugging simulations.

Wraps an :class:`~repro.sim.environment.Environment` with an observer
that records every dispatched event as a ``(time, kind, name)`` tuple.
Traces answer the questions that arise when a simulation misbehaves —
what fired at t, in what order, which processes were alive — without
sprinkling prints through model code.

Tracing costs a callback per event; enable it for diagnosis, not for
benchmark runs.
"""

from __future__ import annotations

import collections
import typing
from dataclasses import dataclass

from repro.sim.environment import Environment
from repro.sim.events import Timeout
from repro.sim.process import Process


@dataclass(frozen=True)
class TraceEntry:
    """One dispatched event."""

    at_ms: float
    kind: str      # "timeout", "process", "event"
    name: str
    ok: bool


class EnvironmentTracer:
    """Records every event the environment dispatches.

    Parameters
    ----------
    env:
        Environment to observe. The tracer replaces ``env.step`` with a
        recording wrapper; :meth:`detach` restores the original.
    capacity:
        Oldest entries are dropped beyond this bound, so long runs
        cannot exhaust memory.
    """

    def __init__(self, env: Environment, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        # A bounded deque keeps _record O(1); a list's pop(0) would make
        # a long saturated trace O(n²).
        self.entries: typing.Deque[TraceEntry] = collections.deque(maxlen=capacity)
        self.dropped = 0
        self._original_step = env.step
        env.step = self._traced_step  # type: ignore[method-assign]

    def detach(self) -> None:
        """Stop tracing and restore the environment's step method.

        Tracers nest (each wraps whatever ``env.step`` it found), so
        they must detach innermost-first. Restoring blindly out of
        order would silently re-install a stale ``step`` — reviving an
        already-detached tracer and orphaning live ones — so detach
        refuses unless ``env.step`` is still *this* tracer's wrapper.

        Raises
        ------
        RuntimeError
            If another tracer is attached on top of this one, or this
            tracer was already detached.
        """
        if self.env.step != self._traced_step:
            raise RuntimeError(
                "cannot detach: env.step is not this tracer's wrapper "
                "(tracers must detach in reverse attach order, exactly once)"
            )
        self.env.step = self._original_step  # type: ignore[method-assign]

    def _traced_step(self) -> None:
        entry = self.env._peek_entry()
        if entry is not None:
            _when, _seq, event = entry
            if isinstance(event, Process):
                kind, name = "process", event.name
            elif isinstance(event, Timeout):
                kind, name = "timeout", f"delay={event.delay}"
            else:
                kind, name = "event", type(event).__name__
            entry_builder = (kind, name, event)
        else:
            entry_builder = None
        self._original_step()
        if entry_builder is not None:
            kind, name, event = entry_builder
            self._record(TraceEntry(at_ms=self.env.now, kind=kind, name=name,
                                    ok=event.ok))

    def _record(self, entry: TraceEntry) -> None:
        if len(self.entries) == self.capacity:
            self.dropped += 1  # the deque evicts the oldest entry itself
        self.entries.append(entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def between(self, start_ms: float, end_ms: float) -> typing.List[TraceEntry]:
        """Entries dispatched in the half-open window [start, end)."""
        return [e for e in self.entries if start_ms <= e.at_ms < end_ms]

    def of_kind(self, kind: str) -> typing.List[TraceEntry]:
        return [e for e in self.entries if e.kind == kind]

    def format_tail(self, count: int = 20) -> str:
        """The last ``count`` entries, one per line."""
        tail = list(self.entries)[-count:] if count > 0 else []
        lines = [
            f"{e.at_ms:12.3f}  {e.kind:8s}  {'ok ' if e.ok else 'ERR'}  {e.name}"
            for e in tail
        ]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier entries dropped ...")
        return "\n".join(lines)
