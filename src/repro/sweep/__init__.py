"""Sweep orchestration: run many scenario points well.

Every figure of the paper is a sweep over independent
:class:`~repro.experiments.runner.ScenarioConfig` points. This package
owns that execution shape end to end:

- :mod:`repro.sweep.grid` — declarative grids (:class:`SweepSpec`)
  that enumerate config points deterministically;
- :mod:`repro.sweep.cache` — a content-addressed on-disk result cache
  (:class:`ResultCache`) so repeated runs are near-instant;
- :mod:`repro.sweep.pool` — :func:`run_sweep`, the front door: a
  process-pool executor with per-point timeout, bounded retry, and a
  serial in-process fallback;
- :mod:`repro.sweep.progress` — throughput/ETA reporting and the
  per-sweep :class:`SweepSummary`.

The figure modules, the CLI (``--jobs``/``--no-cache``), and the
benchmark suite all route through :func:`run_sweep`; any new
experiment inherits parallelism and caching by building a spec.
"""

from repro.sweep.cache import (
    ResultCache,
    config_cache_key,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.sweep.grid import SweepPoint, SweepSpec, point_seed
from repro.sweep.pool import (
    SweepCancelled,
    SweepError,
    SweepOptions,
    SweepOutcome,
    run_sweep,
)
from repro.sweep.progress import ProgressReporter, SweepEvent, SweepSummary

__all__ = [
    "ProgressReporter",
    "ResultCache",
    "SweepCancelled",
    "SweepError",
    "SweepEvent",
    "SweepOptions",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "SweepSummary",
    "config_cache_key",
    "default_cache_dir",
    "point_seed",
    "result_from_dict",
    "result_to_dict",
    "run_sweep",
]
