"""Content-addressed on-disk cache of scenario results.

A cache entry's address is a SHA-256 over the scenario config's
canonical key (:meth:`ScenarioConfig.to_key`) plus the package version
and the cache's own format version — so a release or a format change
invalidates every prior entry without any bookkeeping, and two configs
collide exactly when they would simulate identically. Entries are
self-describing JSON documents in the persistence idiom of
:mod:`repro.experiments.persistence`: the stored config key and
versions ride along with the result, so a cache directory can be
audited with nothing but a JSON reader.

Results round-trip losslessly: JSON preserves Python floats exactly
(shortest-repr encoding), so rows derived from a cached result are
byte-identical to rows derived from the live simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import typing
import warnings

from repro._version import __version__
from repro.atomicio import atomic_write_json
from repro.experiments.runner import ScenarioConfig, ScenarioResult
from repro.recon.sweeper import CycleRecord, ReconstructionResult
from repro.workload.recorder import ResponseSummary

#: Bump when the stored result schema changes; invalidates all entries.
#: v2: fault_summary on results, lost_units on reconstructions.
#: v3: metrics block (latency histograms, windowed per-disk stats,
#: recon progress) on results; percentiles and utilization computed by
#: repro.metrics (nearest-rank, measurement-windowed).
#: v4: ScenarioConfig.layout joins the canonical config key (layout
#: implementation family), so every key dict changed shape.
CACHE_FORMAT_VERSION = 4


def default_cache_dir() -> pathlib.Path:
    """Cache location: ``$REPRO_SWEEP_CACHE`` or ``results/sweep-cache``."""
    return pathlib.Path(
        os.environ.get("REPRO_SWEEP_CACHE", os.path.join("results", "sweep-cache"))
    )


def config_cache_key(config: ScenarioConfig, version: str = __version__) -> str:
    """Stable content address for one scenario config."""
    payload = json.dumps(
        {
            "cache_format": CACHE_FORMAT_VERSION,
            "package_version": version,
            "config": config.to_key(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _summary_to_dict(summary: ResponseSummary) -> dict:
    return dict(vars(summary))


def result_to_dict(result: ScenarioResult) -> dict:
    """JSON-safe form of a :class:`ScenarioResult` (see :func:`result_from_dict`)."""
    recon = result.reconstruction
    return {
        "config": result.config.to_key(),
        "response": _summary_to_dict(result.response),
        "read_response": _summary_to_dict(result.read_response),
        "write_response": _summary_to_dict(result.write_response),
        "simulated_ms": result.simulated_ms,
        "requests_completed": result.requests_completed,
        "mapped_units_per_disk": result.mapped_units_per_disk,
        "disk_utilization": list(result.disk_utilization),
        "reconstruction": None
        if recon is None
        else {
            "reconstruction_time_ms": recon.reconstruction_time_ms,
            "total_units": recon.total_units,
            "swept_units": recon.swept_units,
            "user_built_units": recon.user_built_units,
            "resweeps": recon.resweeps,
            "lost_units": recon.lost_units,
            # Compact: one [offset, start, read_phase, write_phase] per cycle.
            "cycles": [
                [c.offset, c.start_ms, c.read_phase_ms, c.write_phase_ms]
                for c in recon.cycles
            ],
        },
        "integrity_errors": list(result.integrity_errors),
        "fault_summary": result.fault_summary,
        # Already JSON-safe by construction (MetricsRegistry.to_dict);
        # carried verbatim so cached and fresh runs report identically.
        "metrics": result.metrics,
    }


def result_from_dict(document: typing.Mapping) -> ScenarioResult:
    """Rebuild a :class:`ScenarioResult` from :func:`result_to_dict` output."""
    recon_doc = document["reconstruction"]
    reconstruction = None
    if recon_doc is not None:
        reconstruction = ReconstructionResult(
            reconstruction_time_ms=recon_doc["reconstruction_time_ms"],
            total_units=recon_doc["total_units"],
            swept_units=recon_doc["swept_units"],
            user_built_units=recon_doc["user_built_units"],
            resweeps=recon_doc["resweeps"],
            lost_units=recon_doc.get("lost_units", 0),
            cycles=[
                CycleRecord(
                    offset=offset,
                    start_ms=start_ms,
                    read_phase_ms=read_ms,
                    write_phase_ms=write_ms,
                )
                for offset, start_ms, read_ms, write_ms in recon_doc["cycles"]
            ],
        )
    return ScenarioResult(
        config=ScenarioConfig.from_key(document["config"]),
        response=ResponseSummary(**document["response"]),
        read_response=ResponseSummary(**document["read_response"]),
        write_response=ResponseSummary(**document["write_response"]),
        simulated_ms=document["simulated_ms"],
        requests_completed=document["requests_completed"],
        mapped_units_per_disk=document["mapped_units_per_disk"],
        disk_utilization=list(document["disk_utilization"]),
        reconstruction=reconstruction,
        integrity_errors=list(document["integrity_errors"]),
        fault_summary=document.get("fault_summary"),
        metrics=document.get("metrics"),
    )


class ResultCache:
    """On-disk scenario-result cache, content-addressed by config.

    Entries live two directory levels deep
    (``<dir>/<key[:2]>/<key>.json``) to keep directories small at
    million-scenario scale. Reads treat any unreadable, corrupt, or
    mismatched entry as a miss; writes are atomic (temp file +
    ``os.replace``), so concurrent sweeps sharing a cache directory
    cannot observe torn entries.

    A cache that cannot be written (read-only directory, full disk, a
    file squatting on the path) must not kill a sweep that spent
    minutes simulating: the first failed write warns once and disables
    further writes for this cache instance; reads (and the sweep)
    carry on uncached.
    """

    def __init__(
        self,
        directory: typing.Union[str, os.PathLike],
        version: str = __version__,
    ):
        self.directory = pathlib.Path(directory)
        self.version = version
        self._write_disabled = False

    def path_for(self, config: ScenarioConfig) -> pathlib.Path:
        key = config_cache_key(config, version=self.version)
        return self.directory / key[:2] / f"{key}.json"

    def get_dict(self, config: ScenarioConfig) -> typing.Optional[dict]:
        """The stored result document for ``config``, or None on a miss."""
        path = self.path_for(config)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if document["cache_format"] != CACHE_FORMAT_VERSION:
                return None
            return document["result"]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def get(self, config: ScenarioConfig) -> typing.Optional[ScenarioResult]:
        document = self.get_dict(config)
        return None if document is None else result_from_dict(document)

    def put_dict(self, config: ScenarioConfig, result: dict) -> None:
        if self._write_disabled:
            return
        try:
            self._write_entry(config, result)
        except OSError as error:
            self._write_disabled = True
            warnings.warn(
                f"sweep result cache at {self.directory} is not writable "
                f"({error}); continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )

    def _write_entry(self, config: ScenarioConfig, result: dict) -> None:
        # Atomic write-to-temp + os.replace (repro.atomicio): service
        # shards sharing one cache directory never observe torn JSON.
        atomic_write_json(
            self.path_for(config),
            {
                "cache_format": CACHE_FORMAT_VERSION,
                "package_version": self.version,
                "config": config.to_key(),
                "result": result,
            },
        )

    def put(self, config: ScenarioConfig, result: ScenarioResult) -> None:
        self.put_dict(config, result_to_dict(result))

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.directory.glob("*/*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
