"""Declarative sweep grids over scenario configs.

A :class:`SweepSpec` is the experiment layer's answer to "run this
figure's grid": ordered parameter axes crossed into
:class:`~repro.experiments.runner.ScenarioConfig` points. Enumeration
is row-major with the first axis slowest — the same order as the
nested loops the figure modules used to hand-roll — so a sweep's point
order, row order, and per-point seeds are a pure function of the spec.

Per-point seeds come in two flavours. By default every point carries
the spec's base seed (each point is an independent simulation with its
own environment, so reuse is harmless and keeps historical figure
outputs bit-identical). With ``vary_seed=True`` each point instead
gets a seed derived by :func:`point_seed` from the base seed and the
point's coordinates — deterministic across processes and runs (it
hashes with SHA-256, not Python's randomized ``hash``), so replicated
sweeps disagree only where they should.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import typing
from dataclasses import dataclass, field, fields as dataclass_fields

from repro.experiments.runner import ScenarioConfig

_CONFIG_FIELDS = tuple(f.name for f in dataclass_fields(ScenarioConfig))
_DEFAULT_SEED = ScenarioConfig.__dataclass_fields__["seed"].default


def point_seed(base_seed: int, coords: typing.Mapping[str, typing.Any]) -> int:
    """Deterministic seed for one grid point.

    Stable across processes, platforms, and ``PYTHONHASHSEED``: the
    coordinates are canonicalized to strings and digested with SHA-256.
    """
    payload = json.dumps(
        [int(base_seed), {name: str(value) for name, value in coords.items()}],
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class SweepPoint:
    """One enumerated grid point: its position, coordinates, and config."""

    index: int
    coords: typing.Dict[str, typing.Any]
    config: ScenarioConfig


@dataclass
class SweepSpec:
    """A parameter grid of scenario points.

    Parameters
    ----------
    axes:
        Ordered ``(field_name, values)`` pairs; the cross product is
        enumerated row-major (first axis slowest). Every name must be a
        ``ScenarioConfig`` field.
    base:
        Fixed ``ScenarioConfig`` fields shared by every point.
    vary_seed:
        Derive a distinct deterministic seed per point (see
        :func:`point_seed`) instead of reusing the base seed.
    """

    axes: typing.Sequence[typing.Tuple[str, typing.Sequence[typing.Any]]]
    base: typing.Mapping[str, typing.Any] = field(default_factory=dict)
    vary_seed: bool = False

    def __post_init__(self):
        self.axes = tuple((name, tuple(values)) for name, values in self.axes)
        self.base = dict(self.base)
        seen: typing.Set[str] = set()
        for name, values in self.axes:
            if name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"axis {name!r} is not a ScenarioConfig field; "
                    f"choose from {_CONFIG_FIELDS}"
                )
            if name in seen:
                raise ValueError(f"axis {name!r} appears twice")
            if name in self.base:
                raise ValueError(f"{name!r} is both an axis and a base field")
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            seen.add(name)
        for name in self.base:
            if name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"base field {name!r} is not a ScenarioConfig field"
                )
        if self.vary_seed and "seed" in seen:
            raise ValueError("vary_seed conflicts with an explicit seed axis")

    @property
    def size(self) -> int:
        n = 1
        for _name, values in self.axes:
            n *= len(values)
        return n

    def describe(self) -> str:
        """One-line human summary, e.g. ``stripe_size×4 · mode×2 = 8 points``."""
        parts = [f"{name}×{len(values)}" for name, values in self.axes]
        return f"{' · '.join(parts) or 'fixed point'} = {self.size} points"

    def points(self) -> typing.List[SweepPoint]:
        """Enumerate every grid point, in deterministic order."""
        names = [name for name, _values in self.axes]
        points = []
        for index, combo in enumerate(
            itertools.product(*(values for _name, values in self.axes))
        ):
            coords = dict(zip(names, combo))
            kwargs = {**self.base, **coords}
            if self.vary_seed:
                base_seed = kwargs.pop("seed", _DEFAULT_SEED)
                kwargs["seed"] = point_seed(base_seed, coords)
            points.append(
                SweepPoint(index=index, coords=coords, config=ScenarioConfig(**kwargs))
            )
        return points

    def configs(self) -> typing.List[ScenarioConfig]:
        return [point.config for point in self.points()]
