"""Sweep execution: process pool, retries, timeouts, serial fallback.

:func:`run_sweep` is the subsystem's front door. It resolves cache
hits, fans the remaining points out over a ``ProcessPoolExecutor``
(``jobs > 1``) or runs them in-process (``jobs == 1``, or whenever a
pool cannot be created), retries failed points within a bounded
budget, and returns results in point order plus a
:class:`~repro.sweep.progress.SweepSummary`.

Work crosses the process boundary as plain dicts — the config's
canonical key in, the serialized result out — so the worker payload is
picklable regardless of what objects (algorithm, scale preset) the
config holds, and the parallel path exercises exactly the
serialization the cache relies on: a cached rerun cannot differ from
the run that populated it.

Per-point timeouts are enforced only in pool mode. A busy worker
process cannot be preempted, so an expired point tears the pool down
(``cancel_futures``) and a fresh pool resumes the queue; the expired
point is charged a retry, innocent in-flight points are not.
"""

from __future__ import annotations

import collections
import concurrent.futures
import os
import time
import typing
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.array.faults import DataLossError
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.sweep.cache import ResultCache, result_from_dict, result_to_dict
from repro.sweep.grid import SweepPoint, SweepSpec
from repro.sweep.progress import ProgressReporter, SweepEvent, SweepSummary


class SweepError(RuntimeError):
    """A sweep point still failed after its retry budget was spent."""


class SweepCancelled(RuntimeError):
    """The sweep's cancel token was set before every point completed.

    Raised by :func:`run_sweep` when ``SweepOptions.cancel`` fires.
    Points that already completed were cached (when a cache is
    configured) and reported through ``on_event``; in-flight pool
    workers are discarded without waiting for them.
    """


class PointTimeout(Exception):
    """A point exceeded the per-point timeout and its worker was discarded."""


def execute_config_key(key: typing.Dict[str, typing.Any]) -> dict:
    """Worker entry point: canonical config key in, result dict out."""
    config = ScenarioConfig.from_key(key)
    return result_to_dict(run_scenario(config))


def _attach_scenario_key(
    error: BaseException, point: SweepPoint
) -> BaseException:
    """Tag ``error`` with the scenario that raised it.

    The sweep runs many points; an exception that escapes (or lands in
    the failure log) must say *which* config produced it, or the report
    is undebuggable. The key is attached once — retries of the same
    point reuse the tag.
    """
    if getattr(error, "scenario_key", None) is None:
        error.scenario_key = point.config.to_key()  # type: ignore[attr-defined]
    return error


@dataclass
class SweepOptions:
    """How a sweep runs, as opposed to what it runs.

    ``cache`` accepts a ready :class:`ResultCache`, a directory path,
    or None (caching off). ``retries`` is per point: a point is
    attempted at most ``1 + retries`` times. With ``strict`` (the
    default) a point that exhausts its budget raises
    :class:`SweepError`; otherwise its result slot is left None and the
    summary's failure count records it.

    ``on_event`` and ``cancel`` are the embeddable-engine surface: an
    ``on_event`` callable receives a
    :class:`~repro.sweep.progress.SweepEvent` for every cache hit,
    completed point (with its serialized result), failure, retry, and
    note, in the order they happen; ``cancel`` is any object with an
    ``is_set()`` method (e.g. ``threading.Event``) — once set,
    :func:`run_sweep` stops at the next point boundary and raises
    :class:`SweepCancelled`. A long-running single point is not
    preempted; cancellation granularity is one point.
    """

    jobs: int = 1
    cache: typing.Union[ResultCache, str, os.PathLike, None] = None
    timeout_s: typing.Optional[float] = None
    retries: int = 2
    strict: bool = True
    progress: bool = False
    stream: typing.Optional[typing.TextIO] = None
    on_event: typing.Optional[typing.Callable[[SweepEvent], None]] = None
    cancel: typing.Optional[typing.Any] = None

    def resolve_cache(self) -> typing.Optional[ResultCache]:
        if self.cache is None or isinstance(self.cache, ResultCache):
            return self.cache
        return ResultCache(self.cache)


@dataclass
class SweepOutcome:
    """Results in point order (None for non-strict failures) + accounting."""

    results: typing.List[typing.Optional[ScenarioResult]]
    summary: SweepSummary


def run_sweep(
    spec: typing.Union[SweepSpec, typing.Iterable[ScenarioConfig]],
    options: typing.Optional[SweepOptions] = None,
    *,
    execute: typing.Optional[typing.Callable[[dict], dict]] = None,
) -> SweepOutcome:
    """Run every point of ``spec`` — a :class:`SweepSpec` or an iterable
    of configs — honoring ``options``; see :class:`SweepOptions`.

    A custom ``execute`` (key dict → result dict) replaces the
    simulation itself; in pool mode it must be picklable (a module-level
    function).
    """
    options = options or SweepOptions()
    if options.jobs < 1:
        raise ValueError("jobs must be >= 1")
    execute = execute or execute_config_key
    if isinstance(spec, SweepSpec):
        points = spec.points()
    else:
        points = [
            SweepPoint(index=i, coords={}, config=config)
            for i, config in enumerate(spec)
        ]
    reporter = ProgressReporter(
        total=len(points), enabled=options.progress, stream=options.stream
    )
    cache = options.resolve_cache()
    results: typing.List[typing.Optional[ScenarioResult]] = [None] * len(points)
    failures: typing.List[typing.Tuple[SweepPoint, BaseException]] = []

    def emit(
        kind: str,
        point: typing.Optional[SweepPoint] = None,
        result: typing.Optional[dict] = None,
        message: typing.Optional[str] = None,
    ) -> None:
        if options.on_event is None:
            return
        summary = reporter.summary
        options.on_event(
            SweepEvent(
                kind=kind,
                index=None if point is None else point.index,
                config_key=None if point is None else point.config.to_key(),
                result=result,
                message=message,
                completed=summary.completed + summary.failures,
                total=len(points),
            )
        )

    to_run: typing.List[SweepPoint] = []
    for point in points:
        cached = cache.get_dict(point.config) if cache is not None else None
        if cached is not None:
            results[point.index] = result_from_dict(cached)
            reporter.cache_hit()
            emit("cache-hit", point, result=cached)
        else:
            to_run.append(point)

    def on_done(point: SweepPoint, result: dict) -> None:
        results[point.index] = result_from_dict(result)
        if cache is not None:
            cache.put_dict(point.config, result)
        reporter.executed()
        emit("executed", point, result=result)

    def on_fail(point: SweepPoint, error: BaseException) -> None:
        failures.append((point, error))
        reporter.failed()
        emit("failed", point, message=repr(error))

    if to_run:
        if options.jobs > 1:
            _pool_run(to_run, options, execute, reporter, emit, on_done, on_fail)
        else:
            _serial_run(to_run, options, execute, reporter, emit, on_done, on_fail)

    summary = reporter.finish()
    if failures and options.strict:
        point, error = failures[0]
        where = point.coords or point.config
        sweep_error = SweepError(
            f"sweep point #{point.index} ({where}) failed after "
            f"{options.retries} retries: {error!r}"
            + (f" (+{len(failures) - 1} more failed points)" if len(failures) > 1 else "")
        )
        sweep_error.scenario_key = (
            getattr(error, "scenario_key", None) or point.config.to_key()
        )
        raise sweep_error from error
    return SweepOutcome(results=results, summary=summary)


def _cancelled(options: SweepOptions) -> bool:
    return options.cancel is not None and options.cancel.is_set()


def _serial_run(points, options, execute, reporter, emit, on_done, on_fail) -> None:
    """In-process execution. Timeouts cannot preempt here; they are ignored."""
    for point in points:
        if _cancelled(options):
            raise SweepCancelled("sweep cancelled between points")
        key = point.config.to_key()
        error: typing.Optional[BaseException] = None
        for attempt in range(1 + options.retries):
            if attempt:
                reporter.retried()
                emit("retried", point)
            try:
                result = execute(key)
            except DataLossError as exc:
                # Data loss is a deterministic *result* of this config,
                # not a flake: retrying replays it bit-identically, so
                # fail the point immediately and keep the full context.
                error = _attach_scenario_key(exc, point)
                break
            except Exception as exc:
                error = _attach_scenario_key(exc, point)
            else:
                on_done(point, result)
                error = None
                break
        if error is not None:
            on_fail(point, error)


def _pool_run(points, options, execute, reporter, emit, on_done, on_fail) -> None:
    try:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=options.jobs)
    except (ImportError, NotImplementedError, OSError) as exc:
        reporter.note(f"process pool unavailable ({exc!r}); running serially")
        emit("note", message="process pool unavailable; running serially")
        _serial_run(points, options, execute, reporter, emit, on_done, on_fail)
        return

    # (point, attempts_remaining) queue; outstanding maps a future to
    # its point, remaining attempts, and absolute deadline.
    pending = collections.deque((point, options.retries) for point in points)
    outstanding: typing.Dict[
        concurrent.futures.Future,
        typing.Tuple[SweepPoint, int, typing.Optional[float]],
    ] = {}

    def charge(point: SweepPoint, budget: int, error: BaseException) -> None:
        if budget > 0:
            reporter.retried()
            emit("retried", point)
            pending.append((point, budget - 1))
        else:
            on_fail(point, error)

    def replace_pool():
        pool.shutdown(wait=False, cancel_futures=True)
        return concurrent.futures.ProcessPoolExecutor(max_workers=options.jobs)

    try:
        while pending or outstanding:
            if _cancelled(options):
                raise SweepCancelled(
                    "sweep cancelled; discarding in-flight points"
                )
            while pending and len(outstanding) < options.jobs:
                point, budget = pending.popleft()
                future = pool.submit(execute, point.config.to_key())
                deadline = (
                    # simlint: disable=DET001 (wall-clock bounds worker runtime, never feeds results)
                    time.monotonic() + options.timeout_s if options.timeout_s else None
                )
                outstanding[future] = (point, budget, deadline)

            deadlines = [d for _p, _b, d in outstanding.values() if d is not None]
            wait_s = (
                # simlint: disable=DET001 (wall-clock bounds worker runtime, never feeds results)
                max(0.0, min(deadlines) - time.monotonic()) if deadlines else None
            )
            if options.cancel is not None:
                # Wake up periodically so a cancellation set while every
                # worker is busy is noticed within a bounded delay.
                wait_s = 0.25 if wait_s is None else min(wait_s, 0.25)
            done, _not_done = concurrent.futures.wait(
                set(outstanding),
                timeout=wait_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )

            if done:
                broken = False
                for future in done:
                    point, budget, _deadline = outstanding.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        charge(point, budget, exc)
                    except DataLossError as exc:
                        # Deterministic result, not a flake: no retry
                        # budget is spent re-simulating the same loss.
                        on_fail(point, _attach_scenario_key(exc, point))
                    except Exception as exc:
                        charge(point, budget, _attach_scenario_key(exc, point))
                    else:
                        on_done(point, result)
                if broken:
                    # The pool died; everything still in flight is doomed.
                    # Requeue survivors without charging their budgets.
                    reporter.note("worker pool broke; restarting it")
                    emit("note", message="worker pool broke; restarting it")
                    for point, budget, _deadline in outstanding.values():
                        pending.appendleft((point, budget))
                    outstanding.clear()
                    pool = replace_pool()
                continue

            # Nothing finished within the nearest deadline: expire points.
            now = time.monotonic()  # simlint: disable=DET001 (wall-clock bounds worker runtime, never feeds results)
            expired = {
                future
                for future, (_p, _b, deadline) in outstanding.items()
                if deadline is not None and deadline <= now
            }
            if not expired:
                continue
            # A running worker cannot be interrupted, so discard the
            # whole pool: expired points are charged, the rest requeue.
            reporter.note(
                f"{len(expired)} point(s) exceeded the {options.timeout_s:.1f}s "
                "timeout; restarting the worker pool"
            )
            emit(
                "note",
                message=f"{len(expired)} point(s) timed out; pool restarted",
            )
            for future, (point, budget, _deadline) in outstanding.items():
                if future in expired:
                    charge(
                        point,
                        budget,
                        PointTimeout(
                            f"point exceeded per-point timeout of {options.timeout_s}s"
                        ),
                    )
                else:
                    pending.appendleft((point, budget))
            outstanding.clear()
            pool = replace_pool()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
