"""Progress reporting and per-sweep summaries.

The reporter is deliberately plain: per-point progress lines (count,
throughput, ETA) go to the stream only when it is a TTY — piped and
captured output stays clean — and the one-line end-of-sweep summary
prints whenever reporting is enabled, because the summary's cache-hit
and failure counts are how a caller verifies what actually ran.
"""

from __future__ import annotations

# simlint: disable-file=DET001 (progress/ETA display reads the wall clock; elapsed_s is measurement metadata, never part of a cached result)

import sys
import time
import typing
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SweepEvent:
    """One observable step of a running sweep.

    Emitted through ``SweepOptions.on_event`` so an embedding caller (a
    progress bar, the job service's streaming endpoint) can follow a
    sweep without polling. ``kind`` is one of ``"cache-hit"``,
    ``"executed"``, ``"failed"``, ``"retried"``, or ``"note"``.

    For completed points (``cache-hit``/``executed``) ``result`` holds
    the serialized result document — the same dict the cache stores —
    so a consumer can checkpoint or summarize each point as it lands
    without waiting for the whole sweep. ``completed``/``total`` give
    running progress including failures.
    """

    kind: str
    index: typing.Optional[int] = None
    config_key: typing.Optional[dict] = None
    result: typing.Optional[dict] = field(default=None, repr=False)
    message: typing.Optional[str] = None
    completed: int = 0
    total: int = 0


@dataclass
class SweepSummary:
    """What one sweep did: the accounting a repeated run is judged by."""

    total: int
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0
    retries: int = 0
    elapsed_s: float = 0.0

    @property
    def completed(self) -> int:
        return self.executed + self.cache_hits

    def format(self) -> str:
        parts = [
            f"{self.total} points",
            f"{self.executed} executed",
            f"{self.cache_hits} cache hits",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failures:
            parts.append(f"{self.failures} FAILED")
        line = f"sweep summary: {', '.join(parts)} in {self.elapsed_s:.1f}s"
        if self.executed and self.elapsed_s > 0:
            line += f" ({self.executed / self.elapsed_s:.1f} points/s simulated)"
        return line


class ProgressReporter:
    """Counts sweep events and narrates them to a stream.

    Parameters
    ----------
    total:
        Points in the sweep (for percentages and ETA).
    enabled:
        Print the end-of-sweep summary (and, on a TTY, per-point
        progress lines). Counting happens regardless, so the returned
        :class:`SweepSummary` is always accurate.
    stream:
        Defaults to ``sys.stderr``.
    """

    def __init__(
        self,
        total: int,
        enabled: bool = False,
        stream: typing.Optional[typing.TextIO] = None,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._show_points = enabled and getattr(self.stream, "isatty", lambda: False)()
        self._summary = SweepSummary(total=total)
        self._started = time.monotonic()

    @property
    def summary(self) -> SweepSummary:
        return self._summary

    def cache_hit(self) -> None:
        self._summary.cache_hits += 1
        self._point_line()

    def executed(self) -> None:
        self._summary.executed += 1
        self._point_line()

    def retried(self) -> None:
        self._summary.retries += 1

    def failed(self) -> None:
        self._summary.failures += 1
        self._point_line()

    def note(self, message: str) -> None:
        """An out-of-band event worth narrating (fallbacks, failures)."""
        if self.enabled:
            print(f"[sweep] {message}", file=self.stream)

    def progress_line(self) -> str:
        """E.g. ``[sweep] 3/12 points (1 cached) — 2.3 points/s — ETA 4s``."""
        s = self._summary
        done = s.completed + s.failures
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = done / elapsed
        line = f"[sweep] {done}/{s.total} points"
        if s.cache_hits:
            line += f" ({s.cache_hits} cached)"
        line += f" — {rate:.1f} points/s"
        if 0 < done < s.total:
            line += f" — ETA {(s.total - done) / rate:.0f}s"
        return line

    def _point_line(self) -> None:
        if self._show_points:
            print(self.progress_line(), file=self.stream)

    def finish(self) -> SweepSummary:
        """Freeze the elapsed time, print the summary line, return it."""
        self._summary.elapsed_s = time.monotonic() - self._started
        if self.enabled:
            print(f"[sweep] {self._summary.format()}", file=self.stream)
        return self._summary
