"""Synthetic workload generation (Table 5-1(a)).

The paper's workload is an open-loop stream of fixed-size (4 KB),
4 KB-aligned accesses, uniformly distributed over the array's data
space, arriving as a Poisson process at 105, 210, or 378 user accesses
per second, with a configurable read fraction (100 %, 0 %, or 50 %
depending on the experiment section).
"""

from repro.workload.base import WorkloadBase
from repro.workload.recorder import ResponseRecorder
from repro.workload.synthetic import SyntheticWorkload, WorkloadConfig
from repro.workload.patterns import phased, sequential_scan, zipf_hot_spot
from repro.workload.trace import TraceRecord, TraceWorkload, load_trace, save_trace

__all__ = [
    "ResponseRecorder",
    "SyntheticWorkload",
    "TraceRecord",
    "TraceWorkload",
    "WorkloadBase",
    "WorkloadConfig",
    "load_trace",
    "phased",
    "save_trace",
    "sequential_scan",
    "zipf_hot_spot",
]
